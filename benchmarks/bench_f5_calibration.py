"""F5 — Cost-model calibration from observed stage statistics.

Measures: mean relative cost-estimation error (|estimated − observed
wall| / observed wall, per DAG stage) of the seed cost model versus a
``CalibrationProfile`` fitted from the same run's ``StageStats``, on a
mixed workload (value restriction, stretch, spatial restriction,
coarsen, NDVI composition) with shared subplans. A second independent
run reports the cross-run generalization error. Emits
``BENCH_f5_calibration.json`` at the repo root; reduced-size mode via
``REPRO_BENCH_SMOKE=1``.
"""

from repro import obs
from repro.plan import canonicalize, estimate_plan
from repro.query import CalibrationProfile, optimize, parse_query
from repro.server import DSMSServer, StreamCatalog

from conftest import BENCH_SMOKE, make_imager, write_bench_snapshot

SECTOR = (48, 24) if BENCH_SMOKE else (96, 48)
N_FRAMES = 1 if BENCH_SMOKE else 2


def workload(imager) -> list[str]:
    """Five queries over diverse operator kinds, sharing the vis prefix."""
    box = imager.sector_lattice.bbox
    region = (
        f"bbox({box.xmin + box.width * 0.25!r}, {box.ymin + box.height * 0.25!r}, "
        f"{box.xmin + box.width * 0.75!r}, {box.ymin + box.height * 0.75!r}, "
        f"crs='geos:-135')"
    )
    return [
        "vrange(reflectance(goes.vis), 0.0, 0.4)",
        "stretch(reflectance(goes.vis), 'linear')",
        f"within(reflectance(goes.vis), {region})",
        "coarsen(reflectance(goes.nir), 2)",
        "stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)), 'linear')",
    ]


def run_workload(imager):
    """One observed scan of the full workload; returns (server, samples)."""
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    server = DSMSServer(catalog)
    for text in workload(imager):
        server.register(text)
    with obs.observe(stats=True) as ob:
        server.run()
        samples = list(server.calibration_samples(ob.stats))
    return server, samples


def mean_rel_error(samples, profile: CalibrationProfile) -> float:
    errs = [
        abs(profile.seconds(s.kind, s.work_units) - s.wall_s) / s.wall_s
        for s in samples
        if s.wall_s > 0
    ]
    return sum(errs) / len(errs) if errs else float("nan")


def test_calibration_reduces_estimation_error(
    benchmark, claims, scene, geos_crs, tmp_path
):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=N_FRAMES)
    server, samples = benchmark.pedantic(
        run_workload, args=(imager,), rounds=1, iterations=1
    )
    assert samples, "workload produced no calibration samples"

    uncalibrated = CalibrationProfile.uncalibrated()
    fitted = CalibrationProfile.fit(samples)
    err_uncal = mean_rel_error(samples, uncalibrated)
    err_cal = mean_rel_error(samples, fitted)
    claims.record(
        "F5",
        "mean relative cost error, calibrated vs seed",
        f"{err_cal:.3f} vs {err_uncal:.3f}",
        "calibrated strictly below seed",
        err_cal < err_uncal,
    )

    # The profile round-trips through JSON persistence unchanged.
    path = tmp_path / "calibration.json"
    fitted.save(path)
    reloaded = CalibrationProfile.load(path)
    claims.record(
        "F5",
        "calibration profile JSON round-trip",
        dict(reloaded.coefficients) == dict(fitted.coefficients),
        "coefficients identical after save/load",
        dict(reloaded.coefficients) == dict(fitted.coefficients),
    )

    # estimate_plan accepts the fitted profile and prices whole plans in
    # seconds (the optimizer-facing integration).
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    profiles = catalog.profiles()
    crs_of = dict(catalog.crs_of())
    plan_seconds = {}
    for text in workload(imager):
        node = optimize(parse_query(text), crs_of).node
        plan = canonicalize(node, crs_of=crs_of)
        est, _ = estimate_plan(plan, profiles, calibration=fitted)
        plan_seconds[text] = est.seconds
    claims.record(
        "F5",
        "estimate_plan prices calibrated plans in seconds",
        all(s is not None and s > 0 for s in plan_seconds.values()),
        "seconds set and positive for every query",
        all(s is not None and s > 0 for s in plan_seconds.values()),
    )

    # Cross-run generalization: fit on run A, evaluate on an independent
    # run B (reported in the snapshot; timing noise makes it advisory).
    _, samples_b = run_workload(imager)
    cross_uncal = mean_rel_error(samples_b, uncalibrated)
    cross_cal = mean_rel_error(samples_b, fitted)

    write_bench_snapshot(
        "f5_calibration",
        {
            "sector": list(SECTOR),
            "n_frames": N_FRAMES,
            "workload": workload(imager),
            "n_stages": len(server.plan_dag.order),
            "stages_shared": server.plan_dag.stages_shared,
            "coefficients": dict(fitted.coefficients),
            "default_coefficient": fitted.default_coefficient,
            "n_samples": fitted.n_samples,
            "mean_rel_error_uncalibrated": err_uncal,
            "mean_rel_error_calibrated": err_cal,
            "cross_run_mean_rel_error_uncalibrated": cross_uncal,
            "cross_run_mean_rel_error_calibrated": cross_cal,
            "plan_seconds": plan_seconds,
            "samples": [
                {"kind": s.kind, "work_units": s.work_units, "wall_s": s.wall_s}
                for s in samples
            ],
        },
    )


def test_stage_stats_overhead_wall_time(benchmark, scene, geos_crs):
    """Wall time of the analyzed run (stats collector on) — the cost of
    EXPLAIN ANALYZE relative to test_registration_scaling_wall_time in F4."""
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=N_FRAMES)
    benchmark.pedantic(run_workload, args=(imager,), rounds=3, iterations=1)
