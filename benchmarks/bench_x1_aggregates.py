"""X1 — Section 6 extension (ref [27]): spatio-temporal aggregates.

Measures: per-pixel temporal window aggregates hold ~window x frame
points of state; per-region aggregates hold no point data at all and run
at restriction-like throughput; sliding vs tumbling output rates.
"""

import pytest

from repro.geo import BoundingBox
from repro.operators import RegionAggregate, TemporalAggregate

from conftest import make_imager

SHAPE = (32, 64)


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize("window", [2, 3])
def test_temporal_aggregate_state(benchmark, claims, scene, geos_crs, window):
    imager = make_imager(scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=4)
    op = TemporalAggregate(window=window, func="max")
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    frame = SHAPE[0] * SHAPE[1]
    ok = window * frame <= op.stats.max_buffered_points <= (window + 1) * frame
    claims.record(
        "X1",
        f"temporal window={window} buffered points",
        op.stats.max_buffered_points,
        f"~{window}x frame ({window * frame})",
        ok,
    )


def test_sliding_vs_tumbling_output_rate(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=4)

    def run(mode):
        op = TemporalAggregate(window=2, func="mean", mode=mode)
        return len(imager.stream("vis").pipe(op).collect_frames())

    sliding = benchmark(run, "sliding")
    tumbling = run("tumbling")
    claims.record(
        "X1",
        "output frames: sliding vs tumbling (4 in, w=2)",
        f"{sliding} vs {tumbling}",
        "3 vs 2",
        (sliding, tumbling) == (3, 2),
    )


def test_region_aggregate_is_nonblocking(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=2)
    box = imager.sector_lattice.bbox
    regions = {
        f"r{i}": BoundingBox(
            box.xmin + box.width * (i / 8),
            box.ymin,
            box.xmin + box.width * ((i + 1) / 8),
            box.ymax,
            box.crs,
        )
        for i in range(8)
    }
    op = RegionAggregate(regions, "mean")
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "X1",
        "region aggregate buffered points (8 regions)",
        op.stats.max_buffered_points,
        "0 (O(#regions) scalars only)",
        op.stats.max_buffered_points == 0,
    )
