"""A3 — ablation: PNG delivery encoding (Section 4's delivery format).

Measures encode/decode throughput of the from-scratch codec on
satellite-like imagery and the compression effect of scanline filters —
smooth imagery (the satellite case) compresses markedly better with the
adaptive filter chooser.
"""

import numpy as np
import pytest

from repro.raster import decode_png, encode_png

from conftest import make_imager


@pytest.fixture(scope="module")
def satellite_image(scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=192, height=96, n_frames=1)
    frame = imager.stream("vis").collect_frames()[0]
    # 10-bit counts scaled into 8 bits, as the delivery path does.
    return (frame.values.astype(np.float64) / 1023.0 * 255.0).astype(np.uint8)


@pytest.mark.parametrize("strategy", ["none", "sub", "up", "paeth", "adaptive"])
def test_encode_throughput(benchmark, satellite_image, strategy):
    benchmark(encode_png, satellite_image, strategy)


def test_decode_throughput(benchmark, satellite_image):
    data = encode_png(satellite_image)
    out = benchmark(decode_png, data)
    assert (out == satellite_image).all()


def test_adaptive_filter_compresses_smooth_imagery(benchmark, claims, satellite_image):
    sizes = {
        strategy: len(encode_png(satellite_image, strategy))
        for strategy in ("none", "adaptive")
    }
    benchmark.pedantic(
        lambda: encode_png(satellite_image, "adaptive"), rounds=3, iterations=1
    )
    ratio = sizes["adaptive"] / sizes["none"]
    claims.record(
        "A3",
        "adaptive/unfiltered PNG size on satellite frame",
        f"{ratio:.2f}",
        "< 1.0 (filters help smooth data)",
        ratio < 1.0,
    )


def test_roundtrip_lossless_on_products(benchmark, claims, scene, geos_crs):
    """The delivery path must not corrupt data products."""
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    frame = imager.stream("vis").collect_frames()[0]

    def roundtrip():
        data = encode_png(frame.values.astype(np.uint16))
        return decode_png(data)

    out = benchmark(roundtrip)
    ok = bool((out == frame.values).all())
    claims.record(
        "A3",
        "PNG 16-bit round-trip lossless",
        ok,
        "bit-exact",
        ok,
    )
