"""E6 — Section 3.3: with measured-time stamps a multi-band composition
never produces output; with scan-sector identifiers it produces all of it.

Measures: output point counts under both timestamp policies (0 vs full),
and the tolerance-based recovery for row-interleaved scanning.
"""

from repro.engine import compose_streams
from repro.operators import StreamComposition

from conftest import make_imager

SHAPE = (32, 64)


def _count(imager, policy, tolerance=0.0):
    op = StreamComposition("-", timestamp_policy=policy, time_tolerance=tolerance)
    out = compose_streams(imager.stream("nir"), imager.stream("vis"), op)
    return sum(c.n_points for c in out.chunks())


def test_measured_policy_produces_nothing(benchmark, claims, scene, geos_crs):
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        band_interleave="band",
    )
    points = benchmark(_count, imager, "measured")
    claims.record(
        "E6",
        "measured-time composition output",
        points,
        "0 ('would never produce')",
        points == 0,
    )


def test_sector_policy_produces_everything(benchmark, claims, scene, geos_crs):
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        band_interleave="band",
    )
    full = SHAPE[0] * SHAPE[1]
    points = benchmark(_count, imager, "sector")
    claims.record(
        "E6",
        "scan-sector composition output",
        points,
        f"{full} (full frame)",
        points == full,
    )


def test_measured_with_detector_tolerance(benchmark, claims, scene, geos_crs):
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        band_interleave="row",
    )
    points = benchmark(_count, imager, "measured", imager.row_time)
    claims.record(
        "E6",
        "measured + row-time tolerance output",
        points,
        "> 0 (recovered matching)",
        points > 0,
    )
