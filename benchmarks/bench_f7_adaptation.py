"""F7 — Adaptive re-optimization under a stall-driven load shift.

Scenario: a sustained downlink stall storm. The DSMS's reflexive valve
(``AdaptiveLoadShedder.escalate`` on every detected stall) ratchets shed
pressure to its cap, the watermark freezes while stream time advances,
and the query's event-lag SLO breaches. The *static* server is stuck:
the storm keeps re-escalating the open-loop valve faster than the
healthy-streak relax can undo it, so the breach never clears. The
*adaptive* server (``DSMSServer.enable_adaptive``) watches the breach
persist, re-plans, and the epoch swap pins the shed rate to the managed
pressure the new plan supports — frames flow again and the SLO recovers
within a bounded number of chunks.

Measured claim: chunks from SLO breach to recovery — finite and bounded
for the adaptive server, never for the static one — plus the frame
deliveries behind it. Snapshot: ``BENCH_f7_adaptation.json``.
"""

from __future__ import annotations

import time

from repro.core import GeoStream
from repro.faults import FaultSpec, RecoveryContext, harden_catalog, recovering
from repro.obs.slo import SLOPolicy
from repro.operators import AdaptiveLoadShedder
from repro.query.adaptive import AdaptivePolicy
from repro.server import DSMSServer, StreamCatalog

from conftest import BENCH_SMOKE, make_imager, write_bench_snapshot

SECTOR = (48, 24) if BENCH_SMOKE else (96, 48)
N_FRAMES = 14 if BENCH_SMOKE else 16
QUERY = "reflectance(goes.vis)"
FRAME_PERIOD_S = 1800.0
SEED = 404

# The SLO: deliveries may trail the stream clock by 2.5 frame periods.
MAX_LAG_S = 2.5 * FRAME_PERIOD_S
# One chunk per scan row: the recovery layer reassembles a full frame
# before releasing its chunks, so all of a frame's stall sleeps surface
# as ONE clock jump at the frame edge — stall evidence arrives at frame
# granularity. A healthy-streak relax window of two frames means the
# open-loop valve compounds (2x per stalled frame, capped at 64x) and
# can never relax: streaks top out one chunk short of a single frame.
CHUNKS_PER_FRAME = SECTOR[1]
STALL_RELAX_AFTER = 2 * CHUNKS_PER_FRAME
# Recovery bound for the claim: the adaptive server must clear the breach
# within this many chunks of the breach's rising edge (the policy's
# hysteresis plus one frame period of catch-up, with slack).
RECOVERY_BOUND_FRAMES = 4


def recording_stream(stream: GeoStream, record) -> GeoStream:
    """Call ``record()`` after every yielded chunk (per-chunk SLO probe)."""

    def source():
        def gen():
            for chunk in stream.chunks():
                yield chunk
                record()

        return gen()

    return GeoStream(stream.metadata, source)


def run_under_stall_storm(imager, adaptive: bool) -> dict:
    """One full scan through a seeded stall storm; per-chunk breach trace.

    The probe samples ``SLOMonitor.is_breached`` once per scanned chunk
    (one chunk behind the server's observation — irrelevant at the
    frame-period scale the claim is about).
    """
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    spec = FaultSpec(seed=SEED, stall=0.5, stall_seconds=30.0)
    ctx = RecoveryContext(
        stall_threshold_s=10.0, stall_relax_after=STALL_RELAX_AFTER
    )
    hardened, injector, ctx = harden_catalog(catalog, spec, context=ctx)

    probes: list[bool] = []
    box = {}

    def record():
        box["server"] and probes.append(
            box["server"].slo_monitor.is_breached(box["rid"])
        )

    probed = StreamCatalog()
    for sid, stream in hardened.items():
        probed.register(recording_stream(stream, record), hardened.extent(sid))

    width, height = SECTOR
    shedder = AdaptiveLoadShedder(points_per_frame_budget=float(width * height))
    server = DSMSServer(
        probed,
        ingest_shedder=shedder,
        recovery=ctx,
        slo=SLOPolicy(max_lag_s=MAX_LAG_S),
    )
    session = server.register(QUERY, encode_png=False)
    box["server"] = server
    box["rid"] = server._session_to_reg[session.session_id]
    if adaptive:
        server.enable_adaptive(
            AdaptivePolicy(breach_chunks=8, cooldown_chunks=64, max_replans=2)
        )

    t0 = time.perf_counter()
    with recovering(ctx):
        server.run()
    wall_s = time.perf_counter() - t0

    breach_start = next((i for i, b in enumerate(probes) if b), None)
    # Recovery means SUSTAINED recovery: the breach clears and stays
    # cleared through the end of the scan. The static server's deficit
    # bucket occasionally repays enough credit to admit one straggler
    # frame — a momentary clearance the storm immediately re-freezes —
    # and that must not count as recovering the SLO.
    recovered_at = None
    if breach_start is not None and not probes[-1]:
        last_breached = max(i for i, b in enumerate(probes) if b)
        recovered_at = last_breached + 1
    return {
        "adaptive": adaptive,
        "chunks_scanned": len(probes),
        "stalls_injected": injector.counts["stall"],
        "frames_delivered": len(session.frames),
        "breach_start_chunk": breach_start,
        "recovered_at_chunk": recovered_at,
        "chunks_to_recovery": (
            recovered_at - breach_start if recovered_at is not None else None
        ),
        "breached_at_end": bool(probes) and probes[-1],
        "replans_committed": len(server.swap_log),
        "final_epoch": server.epoch_of(session),
        "final_shed_pressure": shedder.pressure,
        "shed_managed": shedder.managed,
        "wall_s": wall_s,
    }


def test_adaptive_replan_recovers_the_slo(claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=N_FRAMES)
    static = run_under_stall_storm(imager, adaptive=False)
    adaptive = run_under_stall_storm(imager, adaptive=True)
    chunks_per_frame = static["chunks_scanned"] // N_FRAMES

    # Both servers hit the same storm and breach the SLO.
    claims.record(
        "F7",
        "stall storm breaches the SLO (both modes)",
        (static["breach_start_chunk"], adaptive["breach_start_chunk"]),
        "a breach rising edge in each run",
        static["breach_start_chunk"] is not None
        and adaptive["breach_start_chunk"] is not None,
    )
    # The static server never recovers: the open-loop valve stays pinned
    # at max pressure, the watermark stays frozen, the breach persists.
    claims.record(
        "F7",
        "static server never recovers (breached at end)",
        f"recovery={static['chunks_to_recovery']}",
        "no falling edge before the scan ends",
        static["chunks_to_recovery"] is None and static["breached_at_end"],
    )
    # The adaptive server re-plans (a committed epoch swap that pins the
    # managed shed rate) and clears the breach within the bound.
    claims.record(
        "F7",
        "adaptive server re-plans and recovers",
        f"{adaptive['chunks_to_recovery']} chunks "
        f"({adaptive['replans_committed']} swap)",
        f"recovery within {RECOVERY_BOUND_FRAMES} frames of chunks",
        adaptive["replans_committed"] >= 1
        and adaptive["final_epoch"] >= 2
        and adaptive["chunks_to_recovery"] is not None
        and adaptive["chunks_to_recovery"]
        <= RECOVERY_BOUND_FRAMES * chunks_per_frame,
    )
    # Recovery is visible in delivery, not just in the breach flag.
    claims.record(
        "F7",
        "adaptive delivers more frames under the same storm",
        f"{adaptive['frames_delivered']} vs {static['frames_delivered']}"
        f" of {N_FRAMES}",
        "strictly more than static",
        adaptive["frames_delivered"] > static["frames_delivered"],
    )
    write_bench_snapshot(
        "f7_adaptation",
        {
            "sector": list(SECTOR),
            "n_frames": N_FRAMES,
            "query": QUERY,
            "seed": SEED,
            "max_lag_s": MAX_LAG_S,
            "chunks_per_frame": chunks_per_frame,
            "static": static,
            "adaptive": adaptive,
        },
    )
