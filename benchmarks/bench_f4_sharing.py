"""F4 — Subplan-level sharing across overlapping continuous queries.

Measures: per-query *marginal* chunks processed as N=1..32 overlapping
queries register, with the shared plan DAG on versus ``share=False``.
Every query computes the same ``reflectance(goes.vis)`` prefix before its
own value restriction, so with sharing the prefix runs once per chunk
regardless of N and the marginal cost per query approaches the cost of
the private suffix alone — the ROADMAP's "millions of users" scaling
argument made measurable. Snapshots dump via ``REPRO_OBS_SNAPSHOT``.
"""

import numpy as np
import pytest

from repro.server import DSMSServer, StreamCatalog

from conftest import BENCH_SMOKE, make_imager, write_bench_snapshot

# Reduced-size mode (REPRO_BENCH_SMOKE=1): smaller sector, fewer clients.
SECTOR = (48, 24) if BENCH_SMOKE else (96, 48)
QUERY_COUNTS = (1, 2, 4, 8) if BENCH_SMOKE else (1, 2, 4, 8, 16, 32)


def overlapping_queries(n: int) -> list[str]:
    """N distinct queries sharing the reflectance prefix."""
    return [
        f"vrange(reflectance(goes.vis), 0.0, {0.30 + 0.02 * i:.2f})"
        for i in range(n)
    ]


def run_server(imager, n_queries: int, share: bool):
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    server = DSMSServer(catalog, share_subplans=share)
    sessions = [server.register(text) for text in overlapping_queries(n_queries)]
    server.run()
    return server, sessions


def chunks_processed(server) -> int:
    """Total operator steps across the DAG (the work the server did)."""
    return sum(stage.op.stats.chunks_in for stage in server.plan_dag.order)


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("share", [True, False], ids=["shared", "unshared"])
def test_registration_scaling_wall_time(benchmark, n_queries, share, scene, geos_crs):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=1)
    benchmark.pedantic(
        run_server, args=(imager, n_queries, share), rounds=3, iterations=1
    )


def test_marginal_chunks_shrink_with_sharing(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=1)

    def sweep():
        rows = []
        for n in QUERY_COUNTS:
            shared_server, shared_sessions = run_server(imager, n, share=True)
            solo_server, solo_sessions = run_server(imager, n, share=False)
            rows.append(
                {
                    "n": n,
                    "shared_chunks": chunks_processed(shared_server),
                    "unshared_chunks": chunks_processed(solo_server),
                    "chunks_saved": shared_server.plan_stats.chunks_saved,
                    "stages_shared": shared_server.plan_dag.stages_shared,
                    "sessions": (shared_sessions, solo_sessions),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n_max = rows[-1]["n"]

    # Per-query marginal chunk count strictly below unshared for N >= 2.
    below = all(
        row["shared_chunks"] / row["n"] < row["unshared_chunks"] / row["n"]
        for row in rows
        if row["n"] >= 2
    )
    top = rows[-1]
    claims.record(
        "F4",
        f"marginal chunks/query, sharing vs unshared (N={n_max})",
        f"{top['shared_chunks'] / n_max:.1f} vs {top['unshared_chunks'] / n_max:.1f}",
        "strictly below unshared for N >= 2",
        below,
    )
    claims.record(
        "F4",
        f"operator steps saved by subplan sharing (N={n_max})",
        top["chunks_saved"],
        "> 0 (shared prefix runs once per chunk)",
        top["chunks_saved"] > 0,
    )
    # With sharing, total work grows sub-linearly: N queries cost far less
    # than N times one query (prefix amortized across all subscribers).
    n1, top_total = rows[0]["shared_chunks"], top["shared_chunks"]
    claims.record(
        "F4",
        f"total chunks at N={n_max} vs {n_max}x the N=1 cost (shared)",
        f"{top_total} vs {n_max * n1}",
        "sub-linear scaling",
        top_total < n_max * n1,
    )
    write_bench_snapshot(
        "f4_sharing",
        {
            "sector": list(SECTOR),
            "query_counts": list(QUERY_COUNTS),
            "rows": [
                {k: v for k, v in row.items() if k != "sessions"} for row in rows
            ],
        },
    )
    # Results are identical either way, for every query.
    identical = True
    for row in rows:
        shared_sessions, solo_sessions = row["sessions"]
        for a, b in zip(shared_sessions, solo_sessions):
            fa = [f.image.values for f in a.frames]
            fb = [f.image.values for f in b.frames]
            if len(fa) != len(fb) or not all(
                np.array_equal(x, y, equal_nan=True) for x, y in zip(fa, fb)
            ):
                identical = False
    claims.record(
        "F4",
        "frames bit-identical with sharing on vs off",
        identical,
        "True (sharing is invisible to clients)",
        identical,
    )
