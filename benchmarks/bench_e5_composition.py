"""E5 — Section 3.3: composition buffering follows the point organization.

"If the data is transmitted on an image-by-image basis, the operator has
to buffer a complete image whereas for a row-by-row organization, it only
has to buffer a single row of one stream."

Measures: composition buffer high-water mark under row-by-row vs
image-by-image chunking (same scene, same instrument), plus the
sequential-band-scan ablation where even row organization degrades to
frame-sized buffers.
"""


from repro.core import Organization
from repro.engine import compose_streams
from repro.operators import StreamComposition

from conftest import make_imager

SHAPE = (32, 64)  # (height, width)


def _run_composition(imager):
    op = StreamComposition("-")
    out = compose_streams(imager.stream("nir"), imager.stream("vis"), op)
    total = 0
    for chunk in out.chunks():
        total += chunk.n_points
    return op, total


def test_row_by_row_buffers_one_row(benchmark, claims, scene, geos_crs):
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        organization=Organization.ROW_BY_ROW,
    )
    op, _ = benchmark(_run_composition, imager)
    claims.record(
        "E5",
        "row-by-row composition buffer",
        op.stats.max_buffered_points,
        f"{SHAPE[1]} (a single row)",
        op.stats.max_buffered_points == SHAPE[1],
    )


def test_image_by_image_buffers_whole_image(benchmark, claims, scene, geos_crs):
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        organization=Organization.IMAGE_BY_IMAGE,
    )
    op, _ = benchmark(_run_composition, imager)
    frame = SHAPE[0] * SHAPE[1]
    claims.record(
        "E5",
        "image-by-image composition buffer",
        op.stats.max_buffered_points,
        f"{frame} (a complete image)",
        op.stats.max_buffered_points == frame,
    )


def test_wait_time_follows_interleaving(benchmark, claims, scene, geos_crs):
    """Buffering is also *stream-time latency*: under sequential band
    scanning the buffered band waits a full sweep for its partner."""

    def mean_wait(interleave):
        imager = make_imager(
            scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
            organization=Organization.ROW_BY_ROW, band_interleave=interleave,
        )
        op = StreamComposition("-")
        out = compose_streams(imager.stream("nir"), imager.stream("vis"), op)
        for _ in out.chunks():
            pass
        return op.stats.mean_wait_time, imager

    wait_row, imager = benchmark.pedantic(
        lambda: mean_wait("row"), rounds=1, iterations=1
    )
    wait_seq, imager_seq = mean_wait("band")
    band_duration = imager_seq.sector_lattice.height * imager_seq.row_time
    claims.record(
        "E5",
        "mean partner wait: row vs sequential scan (s)",
        f"{wait_row:.2f} vs {wait_seq:.0f}",
        f"detector offset vs ~band sweep ({band_duration:.0f}s)",
        wait_seq >= band_duration * 0.9 and wait_row < wait_seq / 10,
    )


def test_ablation_sequential_band_scan(benchmark, claims, scene, geos_crs):
    """Scan interleaving, not just chunking, dictates the buffer: when the
    imager sweeps the whole sector for one band before the next, even
    row-organized streams force a frame-sized composition buffer."""
    imager = make_imager(
        scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1,
        organization=Organization.ROW_BY_ROW, band_interleave="band",
    )
    op, _ = benchmark(_run_composition, imager)
    frame = SHAPE[0] * SHAPE[1]
    claims.record(
        "E5",
        "row-by-row + sequential band scan buffer",
        op.stats.max_buffered_points,
        f"{frame} (degenerates to a frame)",
        op.stats.max_buffered_points == frame,
    )
