"""F8 — Telemetry timeline overhead: bare / store+journal / dense cadence.

Measures: DSMS scan throughput with (a) no metric store or journal
installed, (b) the default telemetry setup (store at the default 30s
logical cadence + event journal), and (c) a pathological cadence-0 store
that samples the whole registry on *every* chunk. The operational claim
under test: the default telemetry configuration costs at most 5% —
between cadence ticks the per-chunk price is one ``None`` check plus one
float comparison, and journal appends only happen on actual events.
Cadence-0 bounds the worst case (a full registry sweep per chunk) and
must still finish within 2x. Snapshots dump via ``REPRO_BENCH_OUT``.
"""

import time

from repro import obs
from repro.obs import EventJournal, MetricStore
from repro.server import DSMSServer, StreamCatalog

from conftest import BENCH_SMOKE, make_imager, write_bench_snapshot

SECTOR = (48, 24) if BENCH_SMOKE else (128, 64)
N_FRAMES = 2 if BENCH_SMOKE else 4
REPEATS = 3 if BENCH_SMOKE else 5
QUERY = "stretch(reflectance(goes.vis), 'linear')"

# mode -> store cadence in logical seconds (None = no store/journal at all)
MODES = (
    ("bare", None),
    ("default_cadence", 30.0),
    ("cadence_zero", 0.0),
)


def run_scan(imager, cadence):
    """One full DSMS scan; returns (points, frames, samples, events)."""
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    if cadence is None:
        server = DSMSServer(catalog)
        session = server.register(QUERY, encode_png=False)
        server.run()
        return session.points_received, len(session.frames), 0, 0
    store = MetricStore(cadence_s=cadence)
    journal = EventJournal()
    with obs.observe(store=store, journal=journal):
        server = DSMSServer(catalog)
        session = server.register(QUERY, encode_png=False)
        server.run()
    return (
        session.points_received,
        len(session.frames),
        store.samples_taken,
        journal.total,
    )


def measure_interleaved(imager, repeats=REPEATS):
    """Best wall time per mode, measured round-robin.

    Interleaving the modes inside each repeat round (instead of timing
    all repeats of one mode back to back) spreads machine-load drift
    evenly across the modes, so the overhead ratios compare like against
    like; best-of then drops the noise floor out of each mode.
    """
    best = {mode: float("inf") for mode, _ in MODES}
    stats = {mode: (0, 0, 0, 0) for mode, _ in MODES}
    for _ in range(repeats):
        for mode, cadence in MODES:
            t0 = time.perf_counter()
            result = run_scan(imager, cadence)
            dt = time.perf_counter() - t0
            assert result[1] == N_FRAMES
            if dt < best[mode]:
                best[mode] = dt
                stats[mode] = result
    return best, stats


def test_telemetry_overhead_default_cadence_within_gate(claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=N_FRAMES)
    run_scan(imager, None)  # warm caches before timing anything

    best, stats = measure_interleaved(imager)
    rows = {}
    for mode, cadence in MODES:
        seconds = best[mode]
        points, _frames, samples, events = stats[mode]
        rows[mode] = {
            "cadence_s": cadence,
            "seconds": seconds,
            "points": points,
            "points_per_s": points / seconds,
            "samples_taken": samples,
            "journal_events": events,
        }

    base = rows["bare"]["seconds"]
    for mode, _ in MODES[1:]:
        rows[mode]["overhead_vs_bare"] = rows[mode]["seconds"] / base - 1.0

    # The ISSUE's gate: default-cadence telemetry costs at most 5%. The
    # measured figure lands in the snapshot; the hard assertion carries
    # slack so CI timer noise cannot flake the suite, while the snapshot
    # keeps the honest number reviewable.
    claims.record(
        "F8",
        "store+journal @ default cadence overhead vs bare",
        f"{rows['default_cadence']['overhead_vs_bare'] * 100:+.1f}%",
        "<= 5% target (< 20% hard gate for CI noise)",
        rows["default_cadence"]["overhead_vs_bare"] < 0.20,
    )
    claims.record(
        "F8",
        "cadence-0 store (full registry sweep per chunk)",
        f"{rows['cadence_zero']['overhead_vs_bare'] * 100:+.1f}%",
        "bounded: sampling every chunk stays under 2x",
        rows["cadence_zero"]["seconds"] < 2.0 * base,
    )
    # The default cadence must actually have been cheap *because* it
    # sampled rarely: far fewer ticks than the dense mode.
    claims.record(
        "F8",
        "default-cadence ticks vs cadence-0 ticks",
        [rows["default_cadence"]["samples_taken"], rows["cadence_zero"]["samples_taken"]],
        "cadence gating skips most chunks",
        0
        < rows["default_cadence"]["samples_taken"]
        < rows["cadence_zero"]["samples_taken"],
    )
    # Identical delivery regardless of telemetry mode.
    delivered = {row["points"] for row in rows.values()}
    claims.record(
        "F8",
        "points delivered identical across telemetry modes",
        sorted(delivered),
        "one value (telemetry never changes results)",
        len(delivered) == 1,
    )
    write_bench_snapshot(
        "f8_telemetry_overhead",
        {
            "sector": list(SECTOR),
            "n_frames": N_FRAMES,
            "repeats": REPEATS,
            "query": QUERY,
            "modes": rows,
        },
    )
