"""A2 — ablation: load shedding under overload.

The paper's introduction situates GeoStreams within DSMS techniques
including load shedding. This bench measures the frame-shedding policies:
shed fraction tracks the budget deficit, output stays frame-complete, and
shedding itself never buffers point data.
"""

import pytest

from repro.operators import AdaptiveLoadShedder, FrameSubsampler

from conftest import make_imager


def _drain_frames(stream):
    return len(stream.collect_frames())


def test_subsampler_halves_output(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=4)
    op = FrameSubsampler(2)
    frames = benchmark(_drain_frames, imager.stream("vis").pipe(op))
    claims.record(
        "A2",
        "keep-every-2 subsampler output frames (4 in)",
        frames,
        "2 (whole frames only)",
        frames == 2,
    )
    claims.record(
        "A2",
        "subsampler buffered points",
        op.stats.max_buffered_points,
        "0 (gate, not buffer)",
        op.stats.max_buffered_points == 0,
    )


@pytest.mark.parametrize("budget_fraction,expected_shed", [(1.0, 0.0), (0.5, 0.5)])
def test_adaptive_shed_fraction_tracks_budget(
    benchmark, claims, scene, geos_crs, budget_fraction, expected_shed
):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=8)
    frame_points = imager.sector_lattice.n_points

    def run():
        op = AdaptiveLoadShedder(points_per_frame_budget=frame_points * budget_fraction)
        imager.stream("vis").pipe(op).collect_frames()
        return op.shed_fraction

    shed = benchmark(run)
    claims.record(
        "A2",
        f"adaptive shed fraction @ budget={budget_fraction:.0%} of downlink",
        f"{shed:.2f}",
        f"~{expected_shed:.2f} (1 - budget/rate)",
        abs(shed - expected_shed) <= 0.15,
    )


def test_shed_frames_are_complete(benchmark, claims, scene, geos_crs):
    """Shedding drops whole frames; survivors reassemble perfectly."""
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=4)
    frame_points = imager.sector_lattice.n_points

    def run():
        op = AdaptiveLoadShedder(points_per_frame_budget=frame_points * 0.5)
        frames = imager.stream("vis").pipe(op).collect_frames()
        return all(f.n_points == frame_points for f in frames), len(frames)

    complete, kept = benchmark(run)
    claims.record(
        "A2",
        "surviving frames are complete",
        f"{kept} kept, complete={complete}",
        "no partial frames",
        complete and kept >= 1,
    )
