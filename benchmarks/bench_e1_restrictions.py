"""E1 — Section 3.1: restrictions are non-blocking with constant per-point
cost independent of stream size.

Measures: throughput of each restriction operator; buffer high-water mark
(must be 0); per-point cost across a 4x spread of stream sizes (must be
flat within noise).
"""

import time

import pytest

from repro.core import TimeInterval
from repro.geo import BoundingBox
from repro.operators import SpatialRestriction, TemporalRestriction, ValueRestriction

from conftest import make_imager


def subbox(imager, f0, f1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * f0,
        box.ymin + box.height * f0,
        box.xmin + box.width * f1,
        box.ymin + box.height * f1,
        box.crs,
    )


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize(
    "make_op",
    [
        pytest.param(lambda im: SpatialRestriction(subbox(im, 0.25, 0.75)), id="spatial"),
        pytest.param(lambda im: TemporalRestriction(TimeInterval(0.0, 1e12)), id="temporal"),
        pytest.param(lambda im: ValueRestriction(lo=50.0, hi=900.0), id="value"),
    ],
)
def test_restriction_throughput_and_zero_buffer(benchmark, claims, scene, geos_crs, make_op):
    imager = make_imager(scene, geos_crs)
    op = make_op(imager)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E1",
        f"{op.name}: max buffered points",
        op.stats.max_buffered_points,
        "0 (non-blocking)",
        op.stats.max_buffered_points == 0,
    )


def test_per_point_cost_independent_of_stream_size(benchmark, claims, scene, geos_crs):
    def measure(n_frames: int) -> float:
        imager = make_imager(scene, geos_crs, n_frames=n_frames)
        op = SpatialRestriction(subbox(imager, 0.25, 0.75))
        # Pre-materialize the source so only the operator is timed.
        chunks = imager.stream("vis").collect_chunks()
        op.reset()
        start = time.perf_counter()
        for chunk in chunks:
            for _ in op.process(chunk):
                pass
        elapsed = time.perf_counter() - start
        return elapsed / op.stats.points_in * 1e9  # ns per point

    cost_small = benchmark(measure, 1)
    cost_large = measure(4)
    ratio = cost_large / cost_small
    claims.record(
        "E1",
        "per-point cost ratio (4 frames / 1 frame)",
        f"{ratio:.2f}",
        "~1.0 (size-independent)",
        0.5 < ratio < 2.0,
    )
