"""E3 — Fig. 2a: magnification needs no neighbours (zero buffer); a 1/k
resolution decrease buffers a k-row band (k x k neighbourhood per output
point).

Measures: buffer high-water marks as k sweeps; throughput of both
directions; full-frame rotation as the frame-buffered extreme.
"""

import pytest

from repro.operators import Coarsen, Magnify, Rotate

from conftest import BENCH_SMOKE, columnar_speedup, make_imager, write_bench_snapshot

# Columnar-speedup workload (see bench_e2): many small row chunks.
SPEEDUP_SECTOR = (48, 64) if BENCH_SMOKE else (64, 256)
SPEEDUP_FRAMES = 2 if BENCH_SMOKE else 6
SPEEDUP_REPEATS = 3 if BENCH_SMOKE else 5
SPEEDUP_GATE = 1.0 if BENCH_SMOKE else 5.0


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize("k", [2, 3])
def test_magnify_zero_buffer(benchmark, claims, scene, geos_crs, k):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = Magnify(k)
    stream = imager.stream("vis").pipe(op)
    points = benchmark(_drain, stream)
    claims.record(
        "E3",
        f"magnify k={k} buffer",
        op.stats.max_buffered_points,
        "0 (no neighbours needed)",
        op.stats.max_buffered_points == 0,
    )
    claims.record(
        "E3",
        f"magnify k={k} output points",
        points,
        f"{64 * 32 * k * k} (k^2 x input)",
        points == 64 * 32 * k * k,
    )


@pytest.mark.parametrize("k", [2, 4, 8])
def test_coarsen_buffers_k_rows(benchmark, claims, scene, geos_crs, k):
    width, height = 64, 32
    imager = make_imager(scene, geos_crs, width=width, height=height, n_frames=1)
    op = Coarsen(k)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E3",
        f"coarsen k={k} buffer (rows of {width})",
        op.stats.max_buffered_points,
        f"{k * width} (k-row band)",
        op.stats.max_buffered_points == k * width,
    )


def test_rotation_buffers_full_frame(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = Rotate(30.0)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E3",
        "rotate 30deg buffer",
        op.stats.max_buffered_points,
        f"{64 * 32} (whole frame)",
        op.stats.max_buffered_points == 64 * 32,
    )


def test_columnar_coarsen_speedup(claims, scene, geos_crs):
    """Columnar band-batched reduction vs the per-point oracle on a
    row-chunked 1/4-resolution decrease."""
    imager = make_imager(scene, geos_crs, *SPEEDUP_SECTOR, n_frames=SPEEDUP_FRAMES)
    coarsen = columnar_speedup(imager, "vis", lambda: [Coarsen(4)], SPEEDUP_REPEATS)
    magnify = columnar_speedup(imager, "vis", lambda: [Magnify(2)], SPEEDUP_REPEATS)
    claims.record(
        "E3",
        "columnar coarsen k=4 speedup",
        f"{coarsen['speedup']:.2f}x",
        f">= {SPEEDUP_GATE:g}x (vectorized kernels)",
        coarsen["speedup"] >= SPEEDUP_GATE,
    )
    write_bench_snapshot(
        "e3_spatial_transforms",
        {
            "sector": list(SPEEDUP_SECTOR),
            "n_frames": SPEEDUP_FRAMES,
            "repeats": SPEEDUP_REPEATS,
            "speedup_gate": SPEEDUP_GATE,
            "pipelines": {
                "coarsen_4": coarsen,
                "magnify_2": magnify,
            },
        },
    )
