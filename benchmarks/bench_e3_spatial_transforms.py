"""E3 — Fig. 2a: magnification needs no neighbours (zero buffer); a 1/k
resolution decrease buffers a k-row band (k x k neighbourhood per output
point).

Measures: buffer high-water marks as k sweeps; throughput of both
directions; full-frame rotation as the frame-buffered extreme.
"""

import pytest

from repro.operators import Coarsen, Magnify, Rotate

from conftest import make_imager


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize("k", [2, 3])
def test_magnify_zero_buffer(benchmark, claims, scene, geos_crs, k):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = Magnify(k)
    stream = imager.stream("vis").pipe(op)
    points = benchmark(_drain, stream)
    claims.record(
        "E3",
        f"magnify k={k} buffer",
        op.stats.max_buffered_points,
        "0 (no neighbours needed)",
        op.stats.max_buffered_points == 0,
    )
    claims.record(
        "E3",
        f"magnify k={k} output points",
        points,
        f"{64 * 32 * k * k} (k^2 x input)",
        points == 64 * 32 * k * k,
    )


@pytest.mark.parametrize("k", [2, 4, 8])
def test_coarsen_buffers_k_rows(benchmark, claims, scene, geos_crs, k):
    width, height = 64, 32
    imager = make_imager(scene, geos_crs, width=width, height=height, n_frames=1)
    op = Coarsen(k)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E3",
        f"coarsen k={k} buffer (rows of {width})",
        op.stats.max_buffered_points,
        f"{k * width} (k-row band)",
        op.stats.max_buffered_points == k * width,
    )


def test_rotation_buffers_full_frame(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = Rotate(30.0)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E3",
        "rotate 30deg buffer",
        op.stats.max_buffered_points,
        f"{64 * 32} (whole frame)",
        op.stats.max_buffered_points == 64 * 32,
    )
