"""E2 — Section 3.2: stretch transforms buffer a whole frame (cost set by
the largest frame); pointwise value transforms buffer nothing.

Measures: stretch buffer high-water mark across growing frame sizes
(must equal the frame's point count); pointwise transform buffer (0);
throughput of both.
"""

import pytest

from repro.operators import CountsToReflectance, FrameStretch

from conftest import make_imager


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize("shape", [(16, 32), (32, 64), (48, 96)], ids=lambda s: f"{s[0]}x{s[1]}")
def test_stretch_buffer_equals_frame(benchmark, claims, scene, geos_crs, shape):
    h, w = shape
    imager = make_imager(scene, geos_crs, width=w, height=h, n_frames=1)
    op = FrameStretch("linear")
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E2",
        f"stretch buffer @ {h}x{w} frame",
        op.stats.max_buffered_points,
        f"{h * w} (one frame)",
        op.stats.max_buffered_points == h * w,
    )


def test_pointwise_transform_zero_buffer(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, n_frames=1)
    op = CountsToReflectance(bits=10)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E2",
        "pointwise f_val buffer",
        op.stats.max_buffered_points,
        "0 (point-by-point)",
        op.stats.max_buffered_points == 0,
    )


@pytest.mark.parametrize("kind", ["linear", "equalize", "gaussian"])
def test_stretch_kinds_throughput(benchmark, claims, scene, geos_crs, kind):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = FrameStretch(kind)
    stream = imager.stream("vis").pipe(op)
    points = benchmark(_drain, stream)
    claims.record(
        "E2",
        f"{kind} stretch output points",
        points,
        f"{64 * 32} (frame preserved)",
        points == 64 * 32,
    )
