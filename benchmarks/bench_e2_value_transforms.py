"""E2 — Section 3.2: stretch transforms buffer a whole frame (cost set by
the largest frame); pointwise value transforms buffer nothing.

Measures: stretch buffer high-water mark across growing frame sizes
(must equal the frame's point count); pointwise transform buffer (0);
throughput of both.
"""

import pytest

from repro.operators import CountsToReflectance, FrameStretch

from conftest import BENCH_SMOKE, columnar_speedup, make_imager, write_bench_snapshot

# Columnar-speedup workload: a narrow, tall, multi-frame sector delivered
# row by row — the many-small-chunks regime whose per-chunk dispatch cost
# the columnar kernels exist to eliminate.
SPEEDUP_SECTOR = (48, 64) if BENCH_SMOKE else (64, 256)
SPEEDUP_FRAMES = 2 if BENCH_SMOKE else 6
SPEEDUP_REPEATS = 3 if BENCH_SMOKE else 5
SPEEDUP_GATE = 1.0 if BENCH_SMOKE else 5.0


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize("shape", [(16, 32), (32, 64), (48, 96)], ids=lambda s: f"{s[0]}x{s[1]}")
def test_stretch_buffer_equals_frame(benchmark, claims, scene, geos_crs, shape):
    h, w = shape
    imager = make_imager(scene, geos_crs, width=w, height=h, n_frames=1)
    op = FrameStretch("linear")
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E2",
        f"stretch buffer @ {h}x{w} frame",
        op.stats.max_buffered_points,
        f"{h * w} (one frame)",
        op.stats.max_buffered_points == h * w,
    )


def test_pointwise_transform_zero_buffer(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, n_frames=1)
    op = CountsToReflectance(bits=10)
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    claims.record(
        "E2",
        "pointwise f_val buffer",
        op.stats.max_buffered_points,
        "0 (point-by-point)",
        op.stats.max_buffered_points == 0,
    )


@pytest.mark.parametrize("kind", ["linear", "equalize", "gaussian"])
def test_stretch_kinds_throughput(benchmark, claims, scene, geos_crs, kind):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    op = FrameStretch(kind)
    stream = imager.stream("vis").pipe(op)
    points = benchmark(_drain, stream)
    claims.record(
        "E2",
        f"{kind} stretch output points",
        points,
        f"{64 * 32} (frame preserved)",
        points == 64 * 32,
    )


def test_columnar_pointwise_speedup(claims, scene, geos_crs):
    """Columnar batch kernels vs the per-point oracle on a row-chunked
    radiometric calibration (the archetypal pointwise value transform)."""
    imager = make_imager(scene, geos_crs, *SPEEDUP_SECTOR, n_frames=SPEEDUP_FRAMES)
    pointwise = columnar_speedup(
        imager, "vis", lambda: [CountsToReflectance(bits=10)], SPEEDUP_REPEATS
    )
    stretch = columnar_speedup(
        imager, "vis", lambda: [FrameStretch("linear")], SPEEDUP_REPEATS
    )
    claims.record(
        "E2",
        "columnar pointwise-transform speedup",
        f"{pointwise['speedup']:.2f}x",
        f">= {SPEEDUP_GATE:g}x (vectorized kernels)",
        pointwise["speedup"] >= SPEEDUP_GATE,
    )
    write_bench_snapshot(
        "e2_value_transforms",
        {
            "sector": list(SPEEDUP_SECTOR),
            "n_frames": SPEEDUP_FRAMES,
            "repeats": SPEEDUP_REPEATS,
            "speedup_gate": SPEEDUP_GATE,
            "pipelines": {
                "counts_to_reflectance": pointwise,
                "stretch_linear": stretch,
            },
        },
    )
