"""F6 — Frame-tracing overhead: untraced / sampled / fully traced.

Measures: DSMS scan throughput with (a) no frame tracer installed, (b) a
tracer installed but sampling 0% (the always-on production setting),
(c) 25% head sampling, and (d) every chunk traced. The zero-cost claim
under test: an *installed but sampling-out* tracer adds only a per-chunk
``chunk.trace is None`` check to the hot path — no ``perf_counter``
calls, no allocation — so (b) must sit within noise of (a). Full tracing
pays for hop recording and trace assembly, bounded by the flight
recorder's rings. Snapshots dump via ``REPRO_BENCH_OUT``.
"""

import time

from repro import obs
from repro.server import DSMSServer, StreamCatalog

from conftest import BENCH_SMOKE, make_imager, write_bench_snapshot

SECTOR = (48, 24) if BENCH_SMOKE else (128, 64)
N_FRAMES = 2 if BENCH_SMOKE else 4
REPEATS = 3 if BENCH_SMOKE else 5
QUERY = "stretch(reflectance(goes.vis), 'linear')"

# mode -> head-sampling rate (None = no tracer installed at all)
MODES = (
    ("untraced", None),
    ("installed_rate0", 0.0),
    ("sampled_25", 0.25),
    ("traced_full", 1.0),
)


def run_scan(imager, rate):
    """One full DSMS scan; returns (points delivered, frames delivered)."""
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    if rate is not None:
        obs.enable_frame_tracing(sample_rate=rate)
    try:
        server = DSMSServer(catalog)
        session = server.register(QUERY, encode_png=False)
        server.run()
        return session.points_received, len(session.frames)
    finally:
        if rate is not None:
            obs.disable_frame_tracing()


def best_of(imager, rate, repeats=REPEATS):
    """Best wall time across repeats (noise floor, not the mean)."""
    best, points = float("inf"), 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        points, frames = run_scan(imager, rate)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        assert frames == N_FRAMES
    return best, points


def test_trace_overhead_untraced_within_noise(claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, *SECTOR, n_frames=N_FRAMES)
    run_scan(imager, None)  # warm caches before timing anything

    rows = {}
    for mode, rate in MODES:
        seconds, points = best_of(imager, rate)
        rows[mode] = {
            "rate": rate,
            "seconds": seconds,
            "points": points,
            "points_per_s": points / seconds,
        }

    base = rows["untraced"]["seconds"]
    overhead = {
        mode: rows[mode]["seconds"] / base - 1.0 for mode, _ in MODES[1:]
    }
    for mode in overhead:
        rows[mode]["overhead_vs_untraced"] = overhead[mode]

    # The production-relevant claim: an installed-but-idle tracer is free.
    # The measured number (typically well under 2%) goes into the snapshot;
    # the hard gate is lenient so CI noise cannot flake the suite.
    claims.record(
        "F6",
        "installed tracer @ rate 0 overhead vs no tracer",
        f"{overhead['installed_rate0'] * 100:+.1f}%",
        "within noise of untraced (< 20% hard gate, ~2% typical)",
        overhead["installed_rate0"] < 0.20,
    )
    claims.record(
        "F6",
        "full tracing overhead vs no tracer",
        f"{overhead['traced_full'] * 100:+.1f}%",
        "bounded: tracing every chunk stays under 3x",
        rows["traced_full"]["seconds"] < 3.0 * base,
    )
    # Sampling must interpolate: 25% costs no more than full tracing
    # (small slack for timer noise on fast runs).
    claims.record(
        "F6",
        "25% sampling cost vs full tracing",
        f"{rows['sampled_25']['seconds'] / rows['traced_full']['seconds']:.2f}x",
        "<= full tracing (plus noise)",
        rows["sampled_25"]["seconds"] <= rows["traced_full"]["seconds"] * 1.25,
    )
    # Identical delivery regardless of tracing mode.
    delivered = {row["points"] for row in rows.values()}
    claims.record(
        "F6",
        "points delivered identical across tracing modes",
        sorted(delivered),
        "one value (tracing never changes results)",
        len(delivered) == 1,
    )
    write_bench_snapshot(
        "f6_trace_overhead",
        {
            "sector": list(SECTOR),
            "n_frames": N_FRAMES,
            "repeats": REPEATS,
            "query": QUERY,
            "modes": rows,
        },
    )
