"""Benchmark harness support: the per-experiment claims table.

Each benchmark measures timing through pytest-benchmark *and* records the
paper-claim metrics (buffer high-water marks, point counts, speedups) in
a session-wide table printed in the terminal summary — that table is what
EXPERIMENTS.md's measured columns are transcribed from.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field

import pytest

from repro.core import GeoStream
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector

DAY_T0 = 72_000.0

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Reduced-size mode for CI's bench-smoke job: set REPRO_BENCH_SMOKE=1 and
# benchmarks shrink their workloads (fewer queries, smaller sectors) while
# still exercising the full measurement + snapshot path.
BENCH_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def write_bench_snapshot(name: str, payload: dict) -> pathlib.Path:
    """Write a ``BENCH_<name>.json`` perf snapshot (repo root by default).

    The committed snapshots record the perf trajectory across PRs; CI's
    bench-smoke job regenerates them in reduced-size mode and uploads the
    result as a workflow artifact (override the directory with
    ``REPRO_BENCH_OUT``).
    """
    out_dir = pathlib.Path(os.environ.get("REPRO_BENCH_OUT", REPO_ROOT))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    record = {"experiment": name, "smoke": BENCH_SMOKE, "time_unix": time.time()}
    record.update(payload)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path

# Opt-in observability: set REPRO_OBS_SNAPSHOT=/path/to/file.jsonl and every
# benchmark runs with metrics + tracing enabled, appending one snapshot
# (meta/span/metric records labelled with the test id) per benchmark. E.g.
#   REPRO_OBS_SNAPSHOT=bench.jsonl pytest benchmarks/ --benchmark-only
_OBS_SNAPSHOT_ENV = "REPRO_OBS_SNAPSHOT"


@pytest.fixture(autouse=True)
def _obs_snapshot(request):
    path = os.environ.get(_OBS_SNAPSHOT_ENV)
    if not path:
        yield
        return
    from repro import obs

    with obs.observe(trace=True) as ob:
        yield
        lines = obs.snapshot_lines(
            tracer=ob.tracer, registry=ob.registry, label=request.node.nodeid
        )
    obs.write_jsonl(path, lines, append=True)


@dataclass
class ClaimRow:
    experiment: str
    metric: str
    value: str
    expectation: str
    ok: bool


@dataclass
class ClaimTable:
    rows: list[ClaimRow] = field(default_factory=list)

    def record(
        self, experiment: str, metric: str, value: object, expectation: str, ok: bool
    ) -> None:
        self.rows.append(ClaimRow(experiment, metric, str(value), expectation, ok))
        assert ok, f"{experiment} / {metric}: got {value}, expected {expectation}"


_TABLE = ClaimTable()


@pytest.fixture(scope="session")
def claims() -> ClaimTable:
    return _TABLE


@pytest.fixture(scope="session")
def scene() -> SyntheticEarth:
    return SyntheticEarth(seed=7)


@pytest.fixture(scope="session")
def geos_crs():
    return goes_geostationary(-135.0)


def make_imager(scene, geos_crs, width=96, height=48, n_frames=2, **kw) -> GOESImager:
    sector = western_us_sector(geos_crs, width=width, height=height)
    kw.setdefault("t0", DAY_T0)
    return GOESImager(scene=scene, sector_lattice=sector, n_frames=n_frames, **kw)


@pytest.fixture(scope="session")
def bench_imager(scene, geos_crs) -> GOESImager:
    return make_imager(scene, geos_crs)


# Columnar-vs-oracle speedup harness (experiments E2-E4). The stream is
# materialized once so both execution modes time *operator* cost, not the
# synthetic imager; best-of-N wall time is the noise floor, as in F6.
# Differential tests (tests/test_columnar_differential.py) already pin the
# two modes to bit-identical outputs and stats, so the benchmark only has
# to sanity-check the chunk count.
def columnar_speedup(imager, band: str, make_ops, repeats: int) -> dict:
    base = imager.stream(band)
    chunks = base.collect_chunks()
    meta = base.metadata
    seconds = {}
    chunks_out = {}
    for columnar in (False, True):
        best = float("inf")
        count = 0
        for _ in range(repeats):
            stream = GeoStream.from_chunks(meta, chunks).pipe(
                *make_ops(), columnar=columnar
            )
            t0 = time.perf_counter()
            count = len(stream.collect_chunks())
            best = min(best, time.perf_counter() - t0)
        seconds[columnar] = best
        chunks_out[columnar] = count
    assert chunks_out[False] == chunks_out[True]
    return {
        "chunks_in": len(chunks),
        "chunks_out": chunks_out[True],
        "oracle_s": seconds[False],
        "columnar_s": seconds[True],
        "speedup": seconds[False] / seconds[True],
    }


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _TABLE.rows:
        return
    tr = terminalreporter
    tr.section("paper-claim measurements (transcribed into EXPERIMENTS.md)")
    header = f"{'exp':<5} {'metric':<46} {'measured':>16} {'expected':<28} ok"
    tr.write_line(header)
    tr.write_line("-" * len(header))
    for row in _TABLE.rows:
        tr.write_line(
            f"{row.experiment:<5} {row.metric:<46.46} {row.value:>16.16} "
            f"{row.expectation:<28.28} {'Y' if row.ok else 'N'}"
        )
