"""E8 — Section 4 / ref [10]: a shared cascade-tree restriction stage
evaluates many concurrent query regions far faster than per-query
filtering, with the gap growing in the number of registered queries.

Measures: stab and window-query throughput of cascade tree vs uniform
grid vs naive scan at increasing query counts; dynamic insert/remove
cost; end-to-end DSMS prune effect.
"""

import random
import time

import pytest

from repro.geo import BoundingBox
from repro.index import CascadeTree, GridRegionIndex, NaiveRegionIndex

DOMAIN = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


def build_index(kind: str, n: int, seed: int = 7):
    rng = random.Random(seed)
    if kind == "naive":
        index = NaiveRegionIndex()
    elif kind == "grid":
        index = GridRegionIndex(DOMAIN, 32, 32)
    else:
        index = CascadeTree()
    for i in range(n):
        x, y = rng.uniform(0, 950), rng.uniform(0, 950)
        w, h = rng.uniform(5, 50), rng.uniform(5, 50)
        index.insert(i, BoundingBox(x, y, x + w, y + h))
    return index


def make_probes(count: int, seed: int = 11):
    rng = random.Random(seed)
    return [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(count)]


@pytest.mark.parametrize("n", [100, 800])
@pytest.mark.parametrize("kind", ["naive", "grid", "cascade"])
def test_stab_throughput(benchmark, kind, n):
    index = build_index(kind, n)
    probes = make_probes(500)

    def stab_all():
        hits = 0
        for x, y in probes:
            hits += len(index.stab(x, y))
        return hits

    benchmark(stab_all)


def test_cascade_beats_naive_and_gap_grows(benchmark, claims):
    probes = make_probes(400)

    def timed_stabs(index):
        start = time.perf_counter()
        for x, y in probes:
            index.stab(x, y)
        return time.perf_counter() - start

    speedups = {}
    for n in (200, 2000):
        naive = build_index("naive", n)
        cascade = build_index("cascade", n)
        t_naive = timed_stabs(naive)
        t_cascade = timed_stabs(cascade)
        speedups[n] = t_naive / t_cascade
    benchmark.pedantic(lambda: timed_stabs(build_index("cascade", 2000)), rounds=1, iterations=1)
    claims.record(
        "E8",
        "cascade speedup over naive @200 queries",
        f"{speedups[200]:.1f}x",
        "> 1x",
        speedups[200] > 1.0,
    )
    claims.record(
        "E8",
        "cascade speedup over naive @2000 queries",
        f"{speedups[2000]:.1f}x",
        "larger than @200 (gap grows)",
        speedups[2000] > speedups[200],
    )


@pytest.mark.parametrize("kind", ["naive", "grid", "cascade"])
def test_window_query_throughput(benchmark, kind):
    index = build_index(kind, 800)
    rng = random.Random(3)
    windows = [
        BoundingBox(x, y, x + 40.0, y + 40.0)
        for x, y in ((rng.uniform(0, 950), rng.uniform(0, 950)) for _ in range(200))
    ]

    def query_all():
        hits = 0
        for w in windows:
            hits += len(index.overlapping(w))
        return hits

    benchmark(query_all)


def test_dynamic_registration_churn(benchmark, claims):
    """Continuous queries come and go; the tree must stay correct and fast."""

    def churn():
        rng = random.Random(5)
        index = CascadeTree()
        live = []
        for i in range(2000):
            if live and rng.random() < 0.4:
                index.remove(live.pop(rng.randrange(len(live))))
            else:
                x, y = rng.uniform(0, 950), rng.uniform(0, 950)
                index.insert(i, BoundingBox(x, y, x + 20.0, y + 20.0))
                live.append(i)
        return len(index)

    size = benchmark(churn)
    claims.record(
        "E8",
        "cascade tree survives insert/remove churn",
        f"{size} live",
        "> 0, no corruption",
        size > 0,
    )
