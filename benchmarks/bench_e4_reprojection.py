"""E4 — Section 3.2 / Fig. 2b: re-projection may require arbitrarily many
input points per output point, but scan-sector metadata bounds the buffer
to a row band and enables boundary interpolation instead of blocking.

Measures: buffer fraction (row band / frame) for two target CRSs;
interpolation-method cost spread; the blocking hazard without metadata.
"""

import pytest

from repro.errors import BlockingHazardError
from repro.geo import plate_carree, utm
from repro.operators import Reproject

from conftest import BENCH_SMOKE, columnar_speedup, make_imager, write_bench_snapshot

# Columnar-speedup workload (see bench_e2): many small row chunks.
SPEEDUP_SECTOR = (48, 64) if BENCH_SMOKE else (64, 256)
SPEEDUP_FRAMES = 2 if BENCH_SMOKE else 6
SPEEDUP_REPEATS = 3 if BENCH_SMOKE else 5
SPEEDUP_GATE = 1.0 if BENCH_SMOKE else 5.0


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


@pytest.mark.parametrize(
    "crs_name,crs_factory",
    [("plate_carree", plate_carree), ("utm10", lambda: utm(10))],
)
def test_reprojection_buffer_is_row_band(benchmark, claims, scene, geos_crs, crs_name, crs_factory):
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    op = Reproject(crs_factory())
    stream = imager.stream("vis").pipe(op)
    benchmark(_drain, stream)
    frame_points = imager.sector_lattice.n_points
    fraction = op.stats.max_buffered_points / frame_points
    claims.record(
        "E4",
        f"geos->{crs_name} buffer fraction of frame",
        f"{fraction:.3f}",
        "< 0.5 (row band, not frame)",
        0.0 < fraction < 0.5,
    )


@pytest.mark.parametrize("method", ["nearest", "bilinear", "bicubic"])
def test_interpolation_method_cost(benchmark, scene, geos_crs, method):
    imager = make_imager(scene, geos_crs, width=64, height=32, n_frames=1)
    stream = imager.stream("vis").pipe(Reproject(plate_carree(), method=method))
    benchmark(_drain, stream)


def test_blocking_hazard_without_metadata(benchmark, claims, scene, geos_crs):
    from dataclasses import replace

    from repro.core import GeoStream

    imager = make_imager(scene, geos_crs, width=32, height=16, n_frames=1)
    base = imager.stream("vis")
    stripped = GeoStream(
        base.metadata,
        lambda: (replace(c, frame=None, last_in_frame=False) for c in base.chunks()),
    )

    def attempt():
        try:
            stripped.pipe(Reproject(plate_carree())).collect_chunks()
            return False
        except BlockingHazardError:
            return True

    raised = benchmark(attempt)
    claims.record(
        "E4",
        "no scan metadata -> blocking hazard surfaced",
        raised,
        "True ('could block forever')",
        raised,
    )


def test_columnar_reprojection_speedup(claims, scene, geos_crs):
    """Columnar deferred batched sampling vs the per-row oracle on a
    row-chunked geostationary -> UTM re-projection. The frame navigation
    (inverse-projected coordinates) is cached across identical frames in
    columnar mode, so multi-frame streams amortize it away."""
    imager = make_imager(scene, geos_crs, *SPEEDUP_SECTOR, n_frames=SPEEDUP_FRAMES)
    to_utm = columnar_speedup(
        imager, "vis", lambda: [Reproject(utm(10))], SPEEDUP_REPEATS
    )
    to_pc = columnar_speedup(
        imager, "vis", lambda: [Reproject(plate_carree())], SPEEDUP_REPEATS
    )
    claims.record(
        "E4",
        "columnar geos->utm10 reprojection speedup",
        f"{to_utm['speedup']:.2f}x",
        f">= {SPEEDUP_GATE:g}x (vectorized kernels)",
        to_utm["speedup"] >= SPEEDUP_GATE,
    )
    write_bench_snapshot(
        "e4_reprojection",
        {
            "sector": list(SPEEDUP_SECTOR),
            "n_frames": SPEEDUP_FRAMES,
            "repeats": SPEEDUP_REPEATS,
            "speedup_gate": SPEEDUP_GATE,
            "pipelines": {
                "reproject_utm10": to_utm,
                "reproject_plate_carree": to_pc,
            },
        },
    )
