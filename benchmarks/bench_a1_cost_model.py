"""A1 — ablation: cost-model predictions vs measured operator buffers.

The planner's cost model (Section 3's analysis, quantified in
repro.query.cost) predicts each operator's buffered points from frame
geometry alone. This bench executes representative plans and compares
predicted vs measured high-water marks — validating that the paper's
complexity analysis is the right planning signal.
"""

import pytest

from repro.engine import pipeline_report
from repro.query import ast as q, estimate_query, plan_query
from repro.query.cost import StreamProfile

from conftest import make_imager

SHAPE = (48, 96)


@pytest.fixture(scope="module")
def setup(scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=SHAPE[1], height=SHAPE[0], n_frames=1)
    sources = {"goes.vis": imager.stream("vis"), "goes.nir": imager.stream("nir")}
    profiles = {
        sid: StreamProfile.from_metadata(s.metadata, imager.sector_lattice.bbox)
        for sid, s in sources.items()
    }
    return imager, sources, profiles


CASES = {
    "stretch": (
        q.Stretch(q.StreamRef("goes.vis"), "linear"),
        "frame-stretch",
    ),
    "coarsen4": (
        q.Coarsen(q.StreamRef("goes.vis"), 4),
        "coarsen",
    ),
    "compose": (
        q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-"),
        "composition",
    ),
    "rotate": (
        q.Rotate(q.StreamRef("goes.vis"), 25.0),
        "rotate",
    ),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_predicted_vs_measured_buffer(benchmark, claims, setup, case):
    imager, sources, profiles = setup
    tree, op_name = CASES[case]

    predicted, breakdown = estimate_query(tree, profiles)
    predicted_buffer = max(b.op_buffer for b in breakdown)

    def run():
        plan = plan_query(tree, sources)
        plan.collect_frames()
        reports = pipeline_report(plan)
        return [r for r in reports if r.name == op_name][0].max_buffered_points

    measured = benchmark(run)
    if predicted_buffer == 0:
        ok = measured == 0
        ratio_text = "0 == 0"
    else:
        ratio = measured / predicted_buffer
        ok = 0.3 <= ratio <= 3.0
        ratio_text = f"{ratio:.2f}"
    claims.record(
        "A1",
        f"{case}: measured/predicted buffer",
        ratio_text,
        "within 3x of the model",
        ok,
    )


def test_reprojection_band_fraction_calibration(benchmark, claims, setup):
    """The model's 20% band-fraction constant should bound the geos->
    plate-carree measurement (which is row-aligned, hence cheaper)."""
    from repro.geo import plate_carree

    imager, sources, profiles = setup
    tree = q.Reproject(q.StreamRef("goes.vis"), plate_carree())
    _, breakdown = estimate_query(tree, profiles)
    predicted = max(b.op_buffer for b in breakdown)

    def run():
        plan = plan_query(tree, sources)
        plan.collect_frames()
        return [r for r in pipeline_report(plan) if r.name == "reproject"][0].max_buffered_points

    measured = benchmark(run)
    claims.record(
        "A1",
        "reproject: measured <= predicted band",
        f"{measured} <= {predicted:.0f}",
        "model is a safe upper bound",
        measured <= predicted,
    )
