"""F3 — Fig. 3 / Section 4: the end-to-end DSMS.

Measures: full parse -> register -> optimize -> route -> execute ->
PNG-delivery wall time for a mixed client population; scan throughput in
points/second; the real-time margin against the simulated scan rate; and
the shared-restriction prune fraction.
"""

import pytest

from repro.server import DSMSServer, StreamCatalog, format_query_request

from conftest import make_imager


def bbox_text(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return (
        f"bbox({box.xmin + box.width * fx0!r}, {box.ymin + box.height * fy0!r}, "
        f"{box.xmin + box.width * fx1!r}, {box.ymin + box.height * fy1!r}, "
        f"crs='geos:-135')"
    )


def client_queries(imager, n_clients: int) -> list[str]:
    queries = []
    for i in range(n_clients):
        f = i / max(n_clients, 1) * 0.7
        region = bbox_text(imager, f, f, f + 0.25, f + 0.25)
        if i % 3 == 0:
            queries.append(
                "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
                f" 'linear'), {region})"
            )
        elif i % 3 == 1:
            queries.append(f"within(reflectance(goes.vis), {region})")
        else:
            queries.append(f"ragg(reflectance(goes.nir), 'mean', 'roi{i}', {region})")
    return queries


def run_server(imager, n_clients: int, encode_png: bool = True):
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    server = DSMSServer(catalog)
    sessions = [
        server.handle_request(format_query_request(text, "png" if encode_png else "raw"))
        for text in client_queries(imager, n_clients)
    ]
    stats = server.run()
    return server, sessions, stats


@pytest.mark.parametrize("n_clients", [2, 8])
def test_end_to_end_wall_time(benchmark, n_clients, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=2)
    benchmark(run_server, imager, n_clients)


def test_realtime_margin_and_delivery(benchmark, claims, scene, geos_crs):
    import time

    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=2)

    def run():
        start = time.perf_counter()
        _, sessions, stats = run_server(imager, 6)
        return time.perf_counter() - start, sessions, stats

    elapsed, sessions, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    simulated_span = imager.n_frames * imager.frame_period
    margin = simulated_span / elapsed
    claims.record(
        "F3",
        "real-time margin (simulated scan span / wall)",
        f"{margin:.0f}x",
        "> 1x (keeps up with downlink)",
        margin > 1.0,
    )
    raster_sessions = [s for s in sessions if s.frames]
    claims.record(
        "F3",
        "PNG frames delivered to raster clients",
        sum(len(s.frames) for s in raster_sessions),
        f"{2 * len(raster_sessions)} (one per sector each)",
        all(len(s.frames) == 2 for s in raster_sessions),
    )
    claims.record(
        "F3",
        "shared-restriction prune fraction",
        f"{stats.prune_fraction:.2f}",
        "> 0.3 (routing saves work)",
        stats.prune_fraction > 0.3,
    )
    claims.record(
        "F3",
        "queries rewritten at registration",
        sum(1 for s in sessions if s.applied_rules),
        "> 0 (optimizer engaged)",
        any(s.applied_rules for s in sessions),
    )


def test_png_encoding_overhead(benchmark, scene, geos_crs):
    """Delivery cost ablation: PNG encoding on vs off."""
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    benchmark(run_server, imager, 4, True)


def test_identical_query_sharing(benchmark, claims, scene, geos_crs):
    """Intro: 'processes are often duplicated ... for the same type of
    applications' — identical registered queries share one push network."""
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    text = (
        "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), "
        f"{bbox_text(imager, 0.2, 0.2, 0.7, 0.7)})"
    )

    def run(n_dupes):
        catalog = StreamCatalog()
        catalog.register_imager(imager)
        server = DSMSServer(catalog)
        sessions = [server.register(text) for _ in range(n_dupes)]
        stats = server.run()
        return server, sessions, stats

    server, sessions, stats = benchmark(run, 6)
    claims.record(
        "F3",
        "push networks for 6 identical queries",
        server.shared_network_count,
        "1 (duplication collapsed)",
        server.shared_network_count == 1,
    )
    claims.record(
        "F3",
        "all duplicate subscribers served",
        sum(1 for s in sessions if len(s.frames) == 1),
        "6 of 6",
        all(len(s.frames) == 1 for s in sessions),
    )
