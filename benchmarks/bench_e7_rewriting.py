"""E7 — Section 3.4: pushing the spatial restriction inward (with the
region mapped from UTM to the source CRS) yields the most significant
space and time gains, growing as the region of interest shrinks.

Measures: wall time and downstream points processed for the paper's NDVI
query, naive vs optimized, across region sizes; the stretch operator's
buffer reduction.
"""

import pytest

from repro.engine import pipeline_report
from repro.geo import BoundingBox, utm
from repro.query import ast as q, optimize, plan_query

from conftest import make_imager


def paper_query(region: BoundingBox) -> q.QueryNode:
    """((f_val((G1-G2)/(G2+G1))) f_UTM)|R with f_val = linear stretch."""
    return q.SpatialRestrict(
        q.Reproject(
            q.Stretch(
                q.Compose(
                    q.ValueMap(q.StreamRef("goes.nir"), "reflectance", (("bits", 10.0),)),
                    q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
                    "ndvi",
                ),
                "linear",
            ),
            region.crs,
        ),
        region,
    )


def utm_region(fraction: float) -> BoundingBox:
    """A UTM-10 box covering ~`fraction` of the sector's lon/lat span."""
    utm10 = utm(10)
    lon0, lat0 = -122.5, 37.5
    lon1 = lon0 + 10.0 * fraction
    lat1 = lat0 + 8.0 * fraction
    x0, y0 = (float(v) for v in utm10.from_lonlat(lon0, lat0))
    x1, y1 = (float(v) for v in utm10.from_lonlat(lon1, lat1))
    return BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1), utm10)


def _execute(tree, sources):
    plan = plan_query(tree, sources)
    frames = plan.collect_frames()
    reports = pipeline_report(plan)
    stretch = [r for r in reports if r.name == "frame-stretch"][0]
    return frames, stretch


@pytest.fixture(scope="module")
def sources(scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    return {"goes.vis": imager.stream("vis"), "goes.nir": imager.stream("nir")}


@pytest.fixture(scope="module")
def crs_of(sources):
    return {sid: s.crs for sid, s in sources.items()}


@pytest.mark.parametrize("fraction", [0.1, 0.3])
@pytest.mark.parametrize("mode", ["naive", "optimized"])
def test_paper_query_timing(benchmark, mode, fraction, sources, crs_of):
    tree = paper_query(utm_region(fraction))
    if mode == "optimized":
        tree = optimize(tree, crs_of).node
    benchmark(_execute, tree, sources)


@pytest.mark.parametrize("fraction", [0.1, 0.3])
def test_pushdown_gain(benchmark, claims, fraction, sources, crs_of):
    tree = paper_query(utm_region(fraction))
    optimized = optimize(tree, crs_of).node

    _, naive_stretch = _execute(tree, sources)
    _, opt_stretch = benchmark(_execute, optimized, sources)

    point_gain = naive_stretch.points_in / max(opt_stretch.points_in, 1)
    buffer_gain = naive_stretch.max_buffered_points / max(opt_stretch.max_buffered_points, 1)
    claims.record(
        "E7",
        f"points into stretch, naive/opt @ {fraction:.0%} region",
        f"{point_gain:.0f}x",
        "> 3x, growing as region shrinks",
        point_gain > 3.0,
    )
    claims.record(
        "E7",
        f"stretch buffer, naive/opt @ {fraction:.0%} region",
        f"{buffer_gain:.0f}x",
        "> 3x (space gain)",
        buffer_gain > 3.0,
    )


def test_gain_grows_as_region_shrinks(benchmark, claims, sources, crs_of):
    def sweep():
        gains = {}
        for fraction in (0.1, 0.5):
            tree = paper_query(utm_region(fraction))
            optimized = optimize(tree, crs_of).node
            _, naive_stretch = _execute(tree, sources)
            _, opt_stretch = _execute(optimized, sources)
            gains[fraction] = naive_stretch.points_in / max(opt_stretch.points_in, 1)
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    claims.record(
        "E7",
        "gain(10% region) vs gain(50% region)",
        f"{gains[0.1]:.0f}x vs {gains[0.5]:.0f}x",
        "smaller region => larger gain",
        gains[0.1] > gains[0.5],
    )
