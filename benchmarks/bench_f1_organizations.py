"""F1 — Fig. 1: the three instrument point organizations, their generation
throughput, and the spatial-proximity property of consecutive points.

Measures: points/second produced by each simulated instrument; the ratio
between the cross-frame jump and the within-frame step for the airborne
camera (the paper's "only close temporal proximity" case).
"""

import numpy as np

from repro.geo import haversine_m
from repro.ingest import AirborneCamera, LidarScanner

from conftest import make_imager


def _drain(stream):
    total = 0
    for chunk in stream.chunks():
        total += chunk.n_points
    return total


def test_goes_row_by_row_throughput(benchmark, claims, scene, geos_crs):
    imager = make_imager(scene, geos_crs, width=96, height=48, n_frames=1)
    points = benchmark(_drain, imager.stream("vis"))
    claims.record(
        "F1", "GOES rows emitted as chunks", points, f"{96 * 48} points", points == 96 * 48
    )


def test_airborne_image_by_image_throughput(benchmark, scene):
    cam = AirborneCamera(scene=scene, n_frames=6, frame_width=48, frame_height=32)
    benchmark(_drain, cam.stream())


def test_lidar_point_by_point_throughput(benchmark, scene):
    lidar = LidarScanner(scene=scene, n_points=5_000, points_per_chunk=500)
    benchmark(_drain, lidar.stream())


def test_frame_boundary_proximity_jump(benchmark, claims, scene):
    """Consecutive points are spatially close except across frame
    boundaries (Fig. 1a) — quantified as a jump ratio."""
    cam = AirborneCamera(
        scene=scene, n_frames=3, frame_width=24, frame_height=18, frame_spacing_deg=0.5
    )

    def measure():
        chunks = cam.stream().collect_chunks()
        lon0, lat0 = chunks[0].flat_coords()
        within = float(np.median(haversine_m(lon0[:-1], lat0[:-1], lon0[1:], lat0[1:])))
        lon1, lat1 = chunks[1].flat_coords()
        between = float(haversine_m(lon0[-1], lat0[-1], lon1[0], lat1[0]))
        return between / within

    ratio = benchmark(measure)
    claims.record(
        "F1",
        "airborne frame-boundary jump / in-frame step",
        f"{ratio:.0f}x",
        ">> 1 (only temporal proximity)",
        ratio > 10.0,
    )


def test_lidar_has_no_regular_lattice(benchmark, claims, scene):
    lidar = LidarScanner(scene=scene, n_points=2_000, points_per_chunk=500)

    def spacing_cv():
        chunks = lidar.stream().collect_chunks()
        x = np.concatenate([c.x for c in chunks])
        y = np.concatenate([c.y for c in chunks])
        d = haversine_m(x[:-1], y[:-1], x[1:], y[1:])
        return float(np.std(d) / np.mean(d))

    cv = benchmark(spacing_cv)
    claims.record(
        "F1",
        "LIDAR consecutive-spacing coefficient of variation",
        f"{cv:.3f}",
        "> 0 (non-uniform lattice)",
        cv > 0.01,
    )
