"""Repository tooling (custom lint passes); not part of the library."""
