"""Custom AST lint enforcing repo invariants generic linters can't.

Run as ``python -m tools.repro_lint [paths...]`` (defaults to
``src/repro``). Exit code 0 when clean, 1 when any violation is found.
Used as a hard gate in CI next to ruff and mypy.

Rules:

* **RL001 — no timing calls on the untraced fast path.** The
  observability acceptance bar is that disabled tracing costs nothing;
  ``time.perf_counter``/``time.monotonic``/``time.time`` may only be
  referenced from the modules that are *allowed* to time things (obs,
  engine, plan/stages, operators/delivery, faults, server, cli). A
  timing call creeping into e.g. ``repro.core`` or an operator kernel
  silently taxes every chunk.
* **RL002 — no cross-package underscore imports.** ``from ..pkg import
  _private`` couples packages to names that are free to change; private
  helpers may only be imported within their own package.
* **RL003 — fingerprinted nodes stay frozen.** Every dataclass in
  ``repro/plan/nodes.py`` and ``repro/query/ast.py`` must declare
  ``frozen=True``: plan sharing keys on structural fingerprints cached
  per node, so a mutable node would silently corrupt the shared DAG.
* **RL004 — obs registry mutations only under its lock.** Inside
  ``MetricsRegistry``, any statement that mutates ``self._metrics``
  must be lexically within a ``with self._lock:`` block.
* **RL005 — no unseeded random in repro.faults.** The chaos layer's
  determinism contract requires every random decision to flow from a
  seeded ``random.Random`` instance; module-level ``random.*`` functions
  (and ``numpy.random``'s global state) are forbidden there.
* **RL006 — stage-table mutation only inside EpochTransition.** The
  shared ``PlanDAG``'s membership tables (``order``, ``_by_fingerprint``,
  ``taps``, per-stage ``outputs``/``subscribers``/``epochs``) change
  transactionally through ``repro.plan.epoch.EpochTransition`` — the only
  code allowed to wire, graft, or retire stages. Anywhere else under
  ``src/repro``, mutating those tables (mutator method calls, subscript
  assignment/deletion, or rebinding outside ``__init__``) would bypass
  epoch bookkeeping and corrupt hot swaps.
* **RL007 — no wall clocks in the telemetry timeline.** Stricter than
  RL001 (which whitelists all of ``repro.obs``):
  ``src/repro/obs/timeline.py`` may not reference the ``time`` or
  ``datetime`` modules *at all*. Its determinism contract — bit-identical
  event journals for traced and untraced chaos runs, sample timestamps
  that tests can assert exactly — only holds if every timestamp is a
  logical time passed in by the caller (DSMS stream clock or fault-layer
  ``SimClock``).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = ["Violation", "lint_file", "lint_paths", "main"]

TIMING_NAMES = frozenset({"perf_counter", "monotonic", "perf_counter_ns", "monotonic_ns"})
TIMING_TIME_ATTRS = TIMING_NAMES | {"time"}

# Modules allowed to reference wall clocks: the observability layer, the
# instrumented engine/DAG executors, fault recovery (op timeouts), the
# server, and the CLI. Everything else under src/repro is fast path.
TIMING_ALLOWED = (
    "src/repro/obs/",
    "src/repro/engine/",
    "src/repro/faults/",
    "src/repro/server/",
    "src/repro/cli.py",
    "src/repro/plan/stages.py",
    "src/repro/operators/delivery.py",
)

FROZEN_NODE_FILES = ("src/repro/plan/nodes.py", "src/repro/query/ast.py")

RANDOM_FORBIDDEN_PREFIX = "src/repro/faults/"

REGISTRY_FILE = "src/repro/obs/registry.py"
REGISTRY_MUTATORS = frozenset(
    {"clear", "pop", "popitem", "setdefault", "update", "__setitem__", "__delitem__"}
)


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _norm(path: Path) -> str:
    return path.as_posix()


def _rel(path: Path, root: Path) -> str:
    try:
        return _norm(path.relative_to(root))
    except ValueError:
        return _norm(path)


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# -- RL001: timing on the fast path -----------------------------------------------


def _check_timing(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if not rel.startswith("src/repro/"):
        return
    if any(
        rel.startswith(allowed) or rel == allowed.rstrip("/")
        for allowed in TIMING_ALLOWED
    ):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in TIMING_TIME_ATTRS:
                    yield Violation(
                        rel,
                        node.lineno,
                        node.col_offset,
                        "RL001",
                        f"timing call time.{alias.name} imported on the untraced "
                        "fast path (see docs/observability.md)",
                    )
        elif isinstance(node, ast.Attribute) and node.attr in TIMING_TIME_ATTRS:
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("time", "_time"):
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL001",
                    f"timing call time.{node.attr} referenced on the untraced "
                    "fast path (see docs/observability.md)",
                )


# -- RL002: cross-package underscore imports --------------------------------------


def _check_private_imports(rel: str, tree: ast.AST) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        module = node.module or ""
        crosses = False
        if node.level >= 2:
            crosses = True  # `from ..pkg import x` leaves the current package
        elif node.level == 0 and (module == "repro" or module.startswith("repro.")):
            crosses = True
        if not crosses:
            continue
        for alias in node.names:
            name = alias.name
            if name.startswith("_") and not name.startswith("__"):
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL002",
                    f"cross-package import of private name {name!r} from "
                    f"{'.' * node.level}{module}",
                )


# -- RL003: fingerprinted nodes must be frozen dataclasses ------------------------


def _dataclass_frozen(decorator: ast.expr) -> bool | None:
    """True/False when `decorator` is a dataclass decorator; None otherwise."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    if name != "dataclass":
        return None
    if isinstance(decorator, ast.Call):
        for kw in decorator.keywords:
            if kw.arg == "frozen":
                return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False  # bare @dataclass (or no frozen kwarg) defaults to mutable


def _check_frozen_nodes(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if rel not in FROZEN_NODE_FILES:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            frozen = _dataclass_frozen(decorator)
            if frozen is None:
                continue
            if not frozen:
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL003",
                    f"plan/AST node {node.name} must be @dataclass(frozen=True): "
                    "fingerprints are cached per node and sharing keys on them",
                )


# -- RL004: registry mutations under the lock -------------------------------------


def _is_self_metrics(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "_metrics"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _with_holds_lock(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr == "_lock":
            return True
    return False


def _under_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    cursor: ast.AST | None = node
    while cursor is not None:
        if isinstance(cursor, ast.With) and _with_holds_lock(cursor):
            return True
        cursor = parents.get(cursor)
    return False


def _metrics_mutations(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_self_metrics(target.value):
                    yield node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_self_metrics(target.value):
                    yield node
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in REGISTRY_MUTATORS
                and _is_self_metrics(func.value)
            ):
                yield node


def _check_registry_lock(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if rel != REGISTRY_FILE:
        return
    parents = _parents(tree)
    for node in _metrics_mutations(tree):
        if not _under_lock(node, parents):
            yield Violation(
                rel,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                "RL004",
                "mutation of MetricsRegistry._metrics outside `with self._lock:`",
            )


# -- RL005: unseeded random in repro.faults ---------------------------------------


def _check_seeded_random(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if not rel.startswith(RANDOM_FORBIDDEN_PREFIX):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    yield Violation(
                        rel,
                        node.lineno,
                        node.col_offset,
                        "RL005",
                        f"import of module-level random.{alias.name}; fault "
                        "decisions must come from a seeded random.Random",
                    )
        elif isinstance(node, ast.Attribute):
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id == "random"
                and node.attr != "Random"
            ):
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL005",
                    f"module-level random.{node.attr} in repro.faults; use a "
                    "seeded random.Random instance",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL005",
                    "numpy.random global state in repro.faults; use a seeded "
                    "Generator or random.Random",
                )


# -- RL006: DAG stage tables mutate only inside EpochTransition -------------------

EPOCH_EXEMPT_FILE = "src/repro/plan/epoch.py"
STAGE_TABLES = frozenset(
    {"order", "_by_fingerprint", "taps", "outputs", "subscribers", "epochs"}
)
TABLE_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _table_attr(node: ast.expr) -> str | None:
    """The stage-table name when `node` is `<expr>.<table>`, else None."""
    if isinstance(node, ast.Attribute) and node.attr in STAGE_TABLES:
        return node.attr
    return None


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.AST | None:
    cursor: ast.AST | None = parents.get(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = parents.get(cursor)
    return None


def _check_stage_table_mutation(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if not rel.startswith("src/repro/") or rel == EPOCH_EXEMPT_FILE:
        return
    parents = _parents(tree)

    def violation(node: ast.AST, table: str, how: str) -> Violation:
        return Violation(
            rel,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            "RL006",
            f"{how} of DAG stage table .{table} outside "
            "plan.epoch.EpochTransition (stage membership is transactional)",
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in TABLE_MUTATORS:
                table = _table_attr(func.value)
                if table is not None:
                    yield violation(node, table, f"mutating call .{func.attr}()")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    table = _table_attr(target.value)
                    if table is not None:
                        yield violation(node, table, "subscript assignment")
                else:
                    table = _table_attr(target)
                    if table is None:
                        continue
                    # Plain `self.<table> = ...` in __init__ constructs the
                    # empty tables; anywhere else, rebinding swaps state out
                    # from under the epoch bookkeeping.
                    fn = _enclosing_function(node, parents)
                    in_ctor = (
                        isinstance(fn, ast.FunctionDef)
                        and fn.name == "__init__"
                        and isinstance(target.value, ast.Name)  # type: ignore[union-attr]
                        and target.value.id == "self"  # type: ignore[union-attr]
                    )
                    if not in_ctor:
                        yield violation(node, table, "rebinding")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    table = _table_attr(target.value)
                    if table is not None:
                        yield violation(node, table, "subscript deletion")
                else:
                    table = _table_attr(target)
                    if table is not None:
                        yield violation(node, table, "deletion")


# -- RL007: the telemetry timeline is logical-clock only --------------------------

TIMELINE_FILE = "src/repro/obs/timeline.py"
WALL_CLOCK_MODULES = frozenset({"time", "datetime"})


def _check_timeline_clock(rel: str, tree: ast.AST) -> Iterator[Violation]:
    if rel != TIMELINE_FILE:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in WALL_CLOCK_MODULES:
                    yield Violation(
                        rel,
                        node.lineno,
                        node.col_offset,
                        "RL007",
                        f"import of {alias.name!r} in the telemetry timeline; "
                        "timeline timestamps are logical clocks only",
                    )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if node.level == 0 and top in WALL_CLOCK_MODULES:
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL007",
                    f"import from {node.module!r} in the telemetry timeline; "
                    "timeline timestamps are logical clocks only",
                )
        elif isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id in (
                "time",
                "_time",
                "datetime",
            ):
                yield Violation(
                    rel,
                    node.lineno,
                    node.col_offset,
                    "RL007",
                    f"wall-clock reference {value.id}.{node.attr} in the "
                    "telemetry timeline; pass logical times in from the caller",
                )


_CHECKS = (
    _check_timing,
    _check_private_imports,
    _check_frozen_nodes,
    _check_registry_lock,
    _check_seeded_random,
    _check_stage_table_mutation,
    _check_timeline_clock,
)


def lint_file(path: Path, root: Path) -> list[Violation]:
    rel = _rel(path, root)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(rel, exc.lineno or 0, exc.offset or 0, "RL000", f"syntax error: {exc.msg}")
        ]
    out: list[Violation] = []
    for check in _CHECKS:
        out.extend(check(rel, tree))
    return out


def _iter_files(paths: Sequence[str], root: Path) -> Iterable[Path]:
    for raw in paths:
        path = (root / raw) if not Path(raw).is_absolute() else Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str], root: Path | None = None) -> list[Violation]:
    root = root if root is not None else Path.cwd()
    violations: list[Violation] = []
    for path in _iter_files(paths, root):
        violations.extend(lint_file(path, root))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or ["src/repro"]
    violations = lint_paths(paths)
    for violation in sorted(violations, key=lambda v: (v.path, v.line, v.col)):
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"repro_lint: {', '.join(paths)} clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
