"""Command-line interface.

A small operational front door over the library, driving the built-in
simulated GOES catalog::

    geostreams streams
    geostreams explain "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), \\
                        bbox(-124, 36, -119, 41, crs='latlon'))"
    geostreams query   "stretch(reflectance(goes.vis), 'linear')" --frames 2 --out ./png
    geostreams query   "..." --metrics-out run.jsonl   # traced run via the DSMS
    geostreams serve-demo --clients 4
    geostreams metrics                                 # demo workload -> Prometheus text

(Also runnable as ``python -m repro.cli ...``.) Regions given in
``latlon`` are transformed onto the satellite's fixed grid automatically
by the planner's safety net, so queries can be written in plain
geographic coordinates.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time
from typing import TYPE_CHECKING, Sequence

from . import obs
from .engine import format_report, pipeline_report
from .errors import GeoStreamsError
from .ingest import GOESImager, SyntheticEarth
from .plan import canonicalize
from .query import estimate_query, optimize, parse_query, plan_query
from .server import DSMSServer, StreamCatalog, format_query_request

if TYPE_CHECKING:
    from .faults import FaultInjector, RecoveryContext
    from .obs import StatsCollector
    from .query import CalibrationProfile

__all__ = ["main", "build_demo_catalog"]


def build_demo_catalog(
    seed: int = 7, n_frames: int = 2, width: int = 192, height: int = 96
) -> tuple[GOESImager, StreamCatalog]:
    """The demo environment: one GOES-West-like imager, both bands."""
    from .geo import goes_geostationary
    from .ingest import western_us_sector

    crs = goes_geostationary(-135.0)
    sector = western_us_sector(crs, width=width, height=height)
    imager = GOESImager(
        scene=SyntheticEarth(seed=seed),
        sector_lattice=sector,
        n_frames=n_frames,
        t0=72_000.0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return imager, catalog


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="scene seed (default 7)")
    parser.add_argument("--frames", type=int, default=2, help="scan frames to simulate")
    parser.add_argument(
        "--sector", type=int, nargs=2, metavar=("WIDTH", "HEIGHT"), default=(192, 96),
        help="scan sector size in pixels (default 192 96)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-operator execution spans (see docs/observability.md)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSON-lines observability snapshot of the run to PATH",
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", False) or getattr(args, "metrics_out", None))


def _add_analyze(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: execute the plan DAG with stage statistics on "
             "and print observed vs estimated cost per stage",
    )
    parser.add_argument(
        "--calibration", default=None, metavar="PATH",
        help="load a fitted cost-calibration profile (JSON) for the estimates",
    )
    parser.add_argument(
        "--fit-calibration", default=None, metavar="PATH",
        help="after the analyzed run, fit a calibration profile from the "
             "observed stage statistics and save it to PATH",
    )


def _load_calibration(args: argparse.Namespace) -> "CalibrationProfile | None":
    path = getattr(args, "calibration", None)
    if not path:
        return None
    from .query import CalibrationProfile

    profile = CalibrationProfile.load(path)
    print(
        f"loaded calibration profile from {path} "
        f"({len(profile.coefficients)} operator kinds, {profile.n_samples} samples, "
        f"kind fingerprint {profile.kind_fingerprint})"
    )
    return profile


def _maybe_fit_calibration(
    server: DSMSServer, collector: "StatsCollector | None", args: argparse.Namespace
) -> None:
    path = getattr(args, "fit_calibration", None)
    if not path:
        return
    from .query import CalibrationProfile

    samples = list(server.calibration_samples(collector))
    profile = CalibrationProfile.fit(samples)
    profile.save(path)
    print(
        f"fitted calibration profile ({len(profile.coefficients)} operator kinds, "
        f"{profile.n_samples} samples) -> {path}"
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="chaos drill: inject seeded faults into every source and run the "
             "recovery stack (grammar in docs/faults.md; e.g. 'default' or "
             "'drop=0.05,disconnect=1,seed=42')",
    )


def _maybe_harden(
    catalog: StreamCatalog, args: argparse.Namespace
) -> "tuple[StreamCatalog, RecoveryContext | None, FaultInjector | None]":
    """Apply ``--inject-faults``: (catalog', recovery ctx | None, injector | None)."""
    spec_text = getattr(args, "inject_faults", None)
    if not spec_text:
        return catalog, None, None
    from .faults import FaultSpec, harden_catalog

    hardened, injector, ctx = harden_catalog(catalog, FaultSpec.parse(spec_text))
    return hardened, ctx, injector


def _fault_scope(ctx: "RecoveryContext | None") -> "contextlib.AbstractContextManager[object]":
    """Install the recovery context for the run (no-op without faults)."""
    if ctx is None:
        return contextlib.nullcontext()
    from .faults import recovering

    return recovering(ctx)


def _print_fault_summary(injector: "FaultInjector", ctx: "RecoveryContext") -> None:
    injected = {k: v for k, v in injector.counts.items() if v}
    dl = ctx.dead_letter
    print(f"\nfaults injected: {injected or 'none'}")
    print(
        f"recovery: {ctx.retries} reconnect(s), {dl.total} item(s) quarantined "
        f"{dict(dl.by_reason)}, {ctx.stalls_observed} stall(s) observed, "
        f"sim clock advanced {getattr(ctx.clock, 'total_slept', 0.0):g}s"
    )


def _run_observed_query(
    catalog: StreamCatalog,
    query_text: str,
    args: argparse.Namespace,
    out_dir: str | None,
) -> int:
    """Execute one query through the DSMS under full observability.

    The DSMS path is used (rather than the pull planner) so the snapshot
    includes the routing counters and chunk-to-delivery latency histograms
    the server publishes — plus per-operator spans from the push network
    and the source-scan merge.
    """
    with obs.observe(trace=True) as ob:
        server = DSMSServer(catalog, optimize_queries=not args.no_optimize)
        session = server.register(query_text)
        start = time.perf_counter()
        server.run()
        elapsed = time.perf_counter() - start
        reports = server.operator_reports()
    frames = [f.image for f in session.frames]
    print(f"{len(frames)} frames in {elapsed:.3f}s (via DSMS, traced)")
    print(format_report(reports, ob.registry))
    spans = ob.tracer.to_dicts() if ob.tracer is not None else []
    op_spans = [s for s in spans if s["kind"] != "scheduler"]
    print(
        f"observability: {len(spans)} spans ({len(op_spans)} operator), "
        f"{len(ob.registry)} metrics"
    )
    if args.metrics_out is not None:
        lines = obs.snapshot_lines(
            reports, tracer=ob.tracer, registry=ob.registry, label=query_text
        )
        n = obs.write_jsonl(args.metrics_out, lines)
        print(f"wrote {n} snapshot records to {args.metrics_out}")
    if out_dir is not None:
        target = pathlib.Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        for i, frame in enumerate(session.frames):
            (target / f"frame_{i:03d}.png").write_bytes(frame.png)
        print(f"wrote {len(session.frames)} PNGs to {target}")
    return 0


def cmd_streams(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    for sid in catalog.ids():
        stream = catalog.get(sid)
        meta = stream.metadata
        print(
            f"{sid:<12} band={meta.band:<4} crs={meta.crs.name:<12} "
            f"org={meta.organization.value:<14} frame={meta.max_frame_shape}"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    tree = parse_query(args.query)
    print("parsed:")
    print(tree.pretty(indent=1))
    result = optimize(tree, dict(catalog.crs_of()))
    print("\noptimized (rules: " + (", ".join(result.applied) or "none") + "):")
    print(result.node.pretty(indent=1))
    plan = canonicalize(result.node, crs_of=dict(catalog.crs_of()))
    print("\nphysical plan (canonical, subplan fingerprints):")
    print(plan.pretty(indent=1, fingerprints=True))
    profiles = catalog.profiles()
    try:
        before, _ = estimate_query(tree, profiles)
        after, _ = estimate_query(result.node, profiles)
        print(
            f"\nestimated per-frame work: {before.work:,.0f} -> {after.work:,.0f} "
            f"point-touches; buffered points: {before.buffer:,.0f} -> {after.buffer:,.0f}"
        )
    except GeoStreamsError as exc:
        print(f"\n(cost estimate unavailable: {exc})")
    if args.analyze:
        calibration = _load_calibration(args)
        with obs.observe(stats=True) as ob:
            server = DSMSServer(catalog)
            server.register(args.query)
            server.run()
            print("\nEXPLAIN ANALYZE (one observed demo scan):")
            print(server.explain_analyze(collector=ob.stats, calibration=calibration))
            _maybe_fit_calibration(server, ob.stats, args)
    if args.check:
        from .analysis import analyze

        report = analyze(args.query, catalog)
        print("\nstatic analysis:")
        print(report.render())
        return report.exit_code()
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: static analysis as a pre-commit/CI gate.

    Exit code 0 when the query analyzes clean, 1 on error-level
    diagnostics (with ``--strict``: warnings too), 2 on internal errors
    — mirroring the conventions of compilers and linters.
    """
    from .analysis import analyze

    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    calibration = _load_calibration(args)
    report = analyze(
        args.query, catalog, slo=args.slo, calibration=calibration
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def cmd_query(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    catalog, fctx, finj = _maybe_harden(catalog, args)
    if _obs_requested(args):
        with _fault_scope(fctx):
            code = _run_observed_query(catalog, args.query, args, args.out)
        if finj is not None:
            _print_fault_summary(finj, fctx)
        return code
    tree = parse_query(args.query)
    if not args.no_optimize:
        tree = optimize(tree, dict(catalog.crs_of())).node
    sources = {sid: catalog.get(sid) for sid in catalog.ids()}
    plan = plan_query(tree, sources)
    start = time.perf_counter()
    with _fault_scope(fctx):
        frames = plan.collect_frames()
    elapsed = time.perf_counter() - start
    print(f"{len(frames)} frames in {elapsed:.3f}s")
    print(format_report(pipeline_report(plan)))
    if finj is not None:
        _print_fault_summary(finj, fctx)
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for i, frame in enumerate(frames):
            path = out_dir / f"frame_{i:03d}.png"
            path.write_bytes(frame.to_png_bytes())
        print(f"wrote {len(frames)} PNGs to {out_dir}")
    return 0


def _serve_demo_once(args: argparse.Namespace) -> tuple[DSMSServer, list, float]:
    """Register the demo clients and run the scan (shared by serve-demo/metrics)."""
    imager, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    catalog, fctx, finj = _maybe_harden(catalog, args)
    args._fault_ctx, args._fault_injector = fctx, finj
    server = DSMSServer(catalog, recovery=fctx)
    box = imager.sector_lattice.bbox
    sessions = []
    for i in range(args.clients):
        f0 = 0.7 * i / max(args.clients, 1)
        region = (
            f"bbox({box.xmin + box.width * f0!r}, {box.ymin + box.height * f0!r}, "
            f"{box.xmin + box.width * (f0 + 0.25)!r}, "
            f"{box.ymin + box.height * (f0 + 0.25)!r}, crs='geos:-135')"
        )
        text = (
            "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
            f" 'linear'), {region})"
            if i % 2 == 0
            else f"within(reflectance(goes.vis), {region})"
        )
        session = server.handle_request(format_query_request(text))
        sessions.append(session)
        print(f"client {i}: session #{session.session_id}, "
              f"rewrites: {', '.join(sorted(set(session.applied_rules))) or 'none'}")
    start = time.perf_counter()
    with _fault_scope(fctx):
        server.run()
    elapsed = time.perf_counter() - start
    return server, sessions, elapsed


def cmd_serve_demo(args: argparse.Namespace) -> int:
    analyzed = None
    if _obs_requested(args) or args.analyze:
        with obs.observe(trace=args.trace, stats=args.analyze) as ob:
            server, sessions, elapsed = _serve_demo_once(args)
            reports = server.operator_reports()
            if args.analyze:
                calibration = _load_calibration(args)
                analyzed = server.explain_analyze(
                    collector=ob.stats, calibration=calibration
                )
                _maybe_fit_calibration(server, ob.stats, args)
        if args.metrics_out is not None:
            lines = obs.snapshot_lines(
                reports, tracer=ob.tracer, registry=ob.registry, label="serve-demo"
            )
            n = obs.write_jsonl(args.metrics_out, lines)
            print(f"wrote {n} snapshot records to {args.metrics_out}")
    else:
        server, sessions, elapsed = _serve_demo_once(args)
    if args.explain:
        print(server.explain_dag())
    if analyzed is not None:
        print(analyzed)
    stats = server.router_stats
    plan_stats = server.plan_stats
    print(
        f"\nscan: {stats.chunks_scanned} chunks in {elapsed:.2f}s; routing pruned "
        f"{stats.prune_fraction:.0%} of (chunk, query) pairs; subplan sharing "
        f"saved {plan_stats.chunks_saved} operator steps "
        f"({server.plan_dag.stages_shared}/{server.plan_dag.stages_total} stages shared)"
    )
    for session in sessions:
        print(
            f"session #{session.session_id}: {len(session.frames)} frames, "
            f"{len(session.records)} records, {session.points_received} points"
        )
    if getattr(args, "_fault_injector", None) is not None:
        _print_fault_summary(args._fault_injector, args._fault_ctx)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced demo scan and render frame waterfalls.

    Registers ``query`` on the DSMS with a frame tracer + flight recorder
    installed, runs the scan, and prints the ASCII waterfall of the most
    recent (or pinned) frame traces. ``--export-chrome`` /
    ``--export-otlp`` additionally write the rendered traces as Chrome
    trace-event JSON / OTLP-shaped JSON.
    """
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    catalog, fctx, finj = _maybe_harden(catalog, args)
    with obs.observe(stats=True):
        ftracer = obs.enable_frame_tracing(
            sample_rate=args.sample_rate, capacity=args.keep
        )
        try:
            slo = obs.SLOPolicy(max_lag_s=args.slo) if args.slo is not None else None
            server = DSMSServer(catalog, recovery=fctx, slo=slo)
            session = server.register(args.query)
            with _fault_scope(fctx):
                server.run()
            if args.pinned_only:
                traces = list(ftracer.recorder.pinned)
            else:
                traces = server.recent_traces(session)[-args.last :]
                traces += [
                    t for t in ftracer.recorder.pinned if t not in traces
                ]
            if not traces:
                print(
                    "no frame traces recorded"
                    + (" (no pinned traces)" if args.pinned_only else "")
                    + f"; sample rate was {args.sample_rate:g}"
                )
                return 1
            for trace in traces:
                print(obs.render_waterfall(trace))
                print()
            print(
                f"flight recorder: {ftracer.recorder.recorded} recorded, "
                f"{ftracer.recorder.evictions} evicted, "
                f"{len(ftracer.recorder.pinned)} pinned; "
                f"{ftracer.chunks_traced} chunks traced, "
                f"{ftracer.chunks_sampled_out} sampled out"
            )
            if args.export_chrome is not None:
                doc = obs.traces_to_chrome(traces)
                pathlib.Path(args.export_chrome).write_text(
                    json.dumps(doc, indent=1), encoding="utf-8"
                )
                print(
                    f"wrote {len(doc['traceEvents'])} Chrome trace events "
                    f"to {args.export_chrome} (open in chrome://tracing)"
                )
            if args.export_otlp is not None:
                doc = obs.traces_to_otlp(traces)
                pathlib.Path(args.export_otlp).write_text(
                    json.dumps(doc, indent=1), encoding="utf-8"
                )
                print(f"wrote {len(traces)} OTLP resource spans to {args.export_otlp}")
        finally:
            obs.disable_frame_tracing()
    if finj is not None:
        _print_fault_summary(finj, fctx)
    return 0


def _metrics_self_test() -> int:
    """Exercise the observability layer's invariants end to end.

    Returns 0 on success and 1 on any failed invariant (distinct from the
    argparse/usage exit code 2), so CI can gate on it directly.
    """
    try:
        _metrics_self_test_body()
    except AssertionError as exc:
        print(f"metrics self-test: FAILED ({exc})", file=sys.stderr)
        return 1
    print(
        "metrics self-test: ok (registry, histograms, escaping, spans, "
        "frame traces, flight recorder, timeline store, journal, health, "
        "zero-cost)"
    )
    return 0


def _metrics_self_test_body() -> None:
    from .obs.export import to_prometheus
    from .obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    counter = registry.counter("demo_events_total", kind="a")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3, "counter arithmetic"
    gauge = registry.gauge("demo_depth")
    gauge.set(5)
    gauge.dec(2)
    assert gauge.value == 3, "gauge arithmetic"
    hist = registry.histogram("demo_seconds", buckets=(0.1, 1.0))
    for v in (0.1, 0.5, 100.0):  # boundary lands in its own bucket (le)
        hist.observe(v)
    assert hist.counts == (1, 1, 1), f"bucket boundaries: {hist.counts}"
    text = to_prometheus(registry)
    assert 'demo_seconds_bucket{le="+Inf"} 3' in text, "prometheus histogram"
    weird = registry.counter("escaped_total", path='a"b\\c\nd')
    weird.inc()
    assert r'path="a\"b\\c\nd"' in to_prometheus(registry), "label escaping"

    # Snapshot must survive a JSON round-trip unchanged.
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap, "snapshot JSON round-trip"

    # Tracing a real (tiny) run produces operator spans with throughput;
    # with observability off the same run must leave the registry empty.
    from .operators import Rescale

    imager, _ = build_demo_catalog(n_frames=1, width=32, height=16)
    with obs.observe(trace=True) as ob:
        imager.stream("vis").pipe(Rescale(2.0), Rescale(0.5)).count_points()
    spans = ob.tracer.to_dicts()
    assert len(spans) == 2 and spans[1]["parent_id"] == spans[0]["span_id"], "span DAG"
    assert all(s["points_in"] > 0 and s["wall_time_s"] > 0 for s in spans), "span data"

    # Histogram quantiles: interpolated estimates stay inside the observed
    # value range and the exporter renders them as companion series.
    qh = registry.histogram("demo_quantile_seconds", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        qh.observe(v)
    p50 = qh.quantile(0.5)
    assert p50 is not None and 1.0 <= p50 <= 2.0, f"p50 interpolation: {p50}"
    assert 'demo_quantile_seconds{quantile="0.95"}' in to_prometheus(registry), (
        "prometheus quantile series"
    )

    # Frame tracer + flight recorder invariants: every delivered frame of
    # a fully-sampled run carries a complete trace (its stage hops exactly
    # match the query's plan-DAG stages), and the recorder never grows
    # past its bound (a capacity-1 ring must evict, not accumulate).
    _, catalog = build_demo_catalog(n_frames=2, width=32, height=16)
    ftracer = obs.enable_frame_tracing(capacity=1)
    try:
        server = DSMSServer(catalog)
        session = server.register("reflectance(goes.vis)")
        server.run()
        traces = session.frame_traces()
        assert traces and all(t is not None for t in traces), "frames missing traces"
        rid = server._session_to_reg[session.session_id]
        dag_fps = set(server.plan_dag.stage_fingerprints(rid))
        for trace in traces:
            assert trace.stage_fingerprints() == dag_fps, "trace/DAG stage mismatch"
            assert trace.hop_by_key("delivery") is not None, "trace missing delivery"
        assert ftracer.recorder.within_bounds(), "flight recorder exceeded its bound"
        assert ftracer.recorder.evictions >= 1, "capacity-1 ring never evicted"
        assert len(server.recent_traces(session)) == 1, "ring kept more than capacity"
    finally:
        obs.disable_frame_tracing()

    # Sampling: rate 0.0 must trace nothing (and record nothing).
    ftracer = obs.enable_frame_tracing(sample_rate=0.0)
    try:
        server = DSMSServer(catalog)
        session = server.register("reflectance(goes.vis)")
        server.run()
        assert all(t is None for t in session.frame_traces()), "rate-0 run traced"
        assert ftracer.recorder.recorded == 0, "rate-0 run recorded traces"
        assert ftracer.chunks_sampled_out > 0, "rate-0 run saw no chunks"
    finally:
        obs.disable_frame_tracing()

    # Timeline store invariants: ring capacity bound, strictly monotone
    # sample timestamps, rollup consistent with the raw ring contents,
    # and a logical-clock regression resetting (not corrupting) the rings.
    from .obs.timeline import EventJournal, HealthModel, MetricStore

    reg2 = MetricsRegistry()
    walker = reg2.counter("walk_total")
    store = MetricStore(capacity=8, cadence_s=10.0)
    for step in range(40):
        walker.inc(step)
        store.maybe_sample(float(step), registry=reg2)  # cadence gates to every 10th
    store.sample(1000.0, registry=reg2)
    points = store.series("walk_total")
    assert len(points) <= store.capacity, "store ring exceeded its capacity"
    times = [t for t, _ in points]
    assert times == sorted(times) and len(set(times)) == len(times), (
        "sample timestamps not strictly monotone"
    )
    assert store.samples_taken == 5, f"cadence gating broke: {store.samples_taken}"
    roll = store.rollup("walk_total", window=4)
    raw = [v for _, v in points][-4:]
    assert roll is not None and roll.vmin == min(raw) and roll.vmax == max(raw), (
        "rollup disagrees with the raw ring"
    )
    assert abs(roll.mean - sum(raw) / len(raw)) < 1e-9, "rollup mean mismatch"
    assert roll.delta == raw[-1] - raw[0], "rollup delta mismatch"
    store.sample(0.0, registry=reg2)  # clock regression: a new run began
    assert store.resets == 1 and len(store.series("walk_total")) == 1, (
        "clock regression must reset the rings"
    )

    # Journal invariants: capacity bound, strictly increasing seq (stable
    # across eviction), filtered reads, and schema-stable JSON.
    journal = EventJournal(capacity=4)
    for i in range(10):
        journal.set_time(float(i))
        journal.append("fault" if i % 2 else "slo-breach", query=i % 3, reason=f"r{i}")
    assert len(journal) == 4 and journal.total == 10, "journal capacity bound"
    seqs = [e.seq for e in journal]
    assert seqs == sorted(seqs) and seqs[-1] == 10, "journal seq not increasing"
    ts = [e.t for e in journal]
    assert ts == sorted(ts), "journal event ordering"
    assert all(e.kind == "fault" for e in journal.events(kind="fault")), "kind filter"
    dicts = journal.to_dicts()
    assert json.loads(json.dumps(dicts)) == dicts, "journal JSON round-trip"
    assert all(
        set(d) == {"seq", "t", "kind", "query", "epoch", "reason", "link"}
        for d in dicts
    ), "journal schema drift"

    # Health folds: pure-core verdicts behave monotonically.
    model = HealthModel()
    ok, _ = model.query_verdict(breached=False, lag_s=1.0, max_lag_s=60.0)
    warn, why = model.query_verdict(breached=False, lag_s=45.0, max_lag_s=60.0)
    bad, _ = model.query_verdict(breached=True, lag_s=90.0, max_lag_s=60.0)
    assert (ok, warn, bad) == ("healthy", "degraded", "unhealthy"), "query verdicts"
    assert why, "degraded verdict must carry a reason"
    worst, why = model.server_verdict(["healthy", "degraded"], dead_letters=100)
    assert worst == "unhealthy" and any("dead-letter" in r for r in why), (
        "server verdict must explain dead-letter escalation"
    )

    obs.get_registry().reset()
    imager.stream("vis").pipe(Rescale(2.0)).count_points()
    assert len(obs.get_registry()) == 0, "disabled runs must not touch the registry"
    assert obs.current_frame_tracer() is None, "frame tracer leaked out of self-test"
    assert obs.current_metric_store() is None, "metric store leaked out of self-test"
    assert obs.current_journal() is None, "journal leaked out of self-test"


def cmd_metrics(args: argparse.Namespace) -> int:
    if args.self_test:
        return _metrics_self_test()
    with obs.observe(trace=True) as ob:
        server, _, _ = _serve_demo_once(args)
        reports = server.operator_reports()
    if args.format == "jsonl":
        lines = obs.snapshot_lines(
            reports, tracer=ob.tracer, registry=ob.registry, label="metrics"
        )
        text = "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"
    else:
        text = obs.to_prometheus(ob.registry)
    if args.out is not None:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote metrics to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_serve_telemetry(args: argparse.Namespace) -> int:
    """Run the demo workload with the full telemetry timeline installed.

    Serves ``/metrics``, ``/health``, ``/timeseries``, ``/events``, and
    ``/traces/<id>`` over HTTP while (and after) the scan runs. With
    ``--snapshot-out`` the health and events payloads are fetched back
    through the real HTTP endpoint and written as JSON files; with
    ``--linger`` the endpoint stays up for live inspection
    (``repro top --url ...``).
    """
    from .obs import MetricStore
    from .server.telemetry import fetch_json

    imager, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    catalog, fctx, finj = _maybe_harden(catalog, args)
    store = MetricStore(cadence_s=args.cadence)
    with obs.observe(store=store, journal=True, frame_trace=bool(args.trace)):
        slo = obs.SLOPolicy(max_lag_s=args.slo) if args.slo is not None else None
        server = DSMSServer(catalog, recovery=fctx, slo=slo)
        box = imager.sector_lattice.bbox
        for i in range(args.clients):
            f0 = 0.7 * i / max(args.clients, 1)
            region = (
                f"bbox({box.xmin + box.width * f0!r}, {box.ymin + box.height * f0!r}, "
                f"{box.xmin + box.width * (f0 + 0.25)!r}, "
                f"{box.ymin + box.height * (f0 + 0.25)!r}, crs='geos:-135')"
            )
            text = (
                "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
                f" 'linear'), {region})"
                if i % 2 == 0
                else f"within(reflectance(goes.vis), {region})"
            )
            server.register(text)
        with server.serve_telemetry(port=args.port) as endpoint:
            print(f"telemetry endpoint: {endpoint.url}")
            print(f"  try: python -m repro.cli top --url {endpoint.url}")
            start = time.perf_counter()
            with _fault_scope(fctx):
                server.run()
            elapsed = time.perf_counter() - start
            print(
                f"scan: {server.router_stats.chunks_scanned} chunks in {elapsed:.2f}s; "
                f"{store.samples_taken} timeline samples, "
                f"{len(obs.current_journal() or ())} journal events"
            )
            if args.snapshot_out is not None:
                out_dir = pathlib.Path(args.snapshot_out)
                out_dir.mkdir(parents=True, exist_ok=True)
                # Round-trip through the real HTTP endpoint on purpose:
                # the snapshot is what a scraper would actually see.
                for name in ("health", "events"):
                    payload = fetch_json(f"{endpoint.url}/{name}")
                    path = out_dir / f"{name}.json"
                    path.write_text(
                        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
                    )
                    print(f"wrote {path}")
            if args.linger > 0:
                print(f"serving for another {args.linger:g}s (ctrl-c to stop)...")
                try:
                    time.sleep(args.linger)
                except KeyboardInterrupt:
                    pass
    if finj is not None and fctx is not None:
        _print_fault_summary(finj, fctx)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live ANSI operator console over the telemetry endpoints.

    With ``--url`` it polls a running ``serve-telemetry`` endpoint; with
    no url it runs one in-process demo scan and renders its final state
    (same payloads, same renderer).
    """
    from .server.telemetry import (
        events_payload,
        fetch_json,
        health_payload,
        render_top,
        timeseries_payload,
    )

    color = not args.no_color
    if args.url is not None:
        url = args.url.rstrip("/")
        iteration = 0
        while True:
            iteration += 1
            health = fetch_json(f"{url}/health")
            ts = fetch_json(f"{url}/timeseries?window={args.window}")
            ev = fetch_json(f"{url}/events?limit={args.events}")
            screen = render_top(
                health, ts, ev["events"], color=color, source=url
            )
            if args.iterations != 1 and color:
                print("\x1b[2J\x1b[H", end="")
            print(screen)
            if args.iterations and iteration >= args.iterations:
                return 0
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0

    from .obs import MetricStore

    store = MetricStore(cadence_s=args.cadence)
    with obs.observe(store=store, journal=True) as ob:
        slo = obs.SLOPolicy(max_lag_s=args.slo) if args.slo is not None else None
        _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
        server = DSMSServer(catalog, slo=slo)
        server.register("stretch(reflectance(goes.vis), 'linear')")
        server.register("reflectance(goes.nir)")
        server.run()
        health = health_payload(server, store=ob.store, journal=ob.journal)
        ts = timeseries_payload(ob.store, window=args.window)
        ev = events_payload(ob.journal, limit=args.events)
    print(render_top(health, ts, ev["events"], color=color, source="in-process demo"))
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    from .io import write_archive

    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for sid in catalog.ids():
        path = out_dir / f"{sid.replace('.', '_')}.gsar"
        chunks = write_archive(catalog.get(sid), path)
        print(f"{sid}: {chunks} chunks -> {path} ({path.stat().st_size / 1024:,.0f} KiB)")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .server import StreamCatalog

    catalog = StreamCatalog()
    for path in args.archives:
        stream = catalog.register_archive(path)
        print(f"registered {stream.stream_id!r} from {path}")
    catalog, fctx, finj = _maybe_harden(catalog, args)
    if _obs_requested(args):
        with _fault_scope(fctx):
            code = _run_observed_query(catalog, args.query, args, args.out)
        if finj is not None:
            _print_fault_summary(finj, fctx)
        return code
    tree = parse_query(args.query)
    if not args.no_optimize:
        tree = optimize(tree, dict(catalog.crs_of())).node
    sources = {sid: catalog.get(sid) for sid in catalog.ids()}
    plan = plan_query(tree, sources)
    with _fault_scope(fctx):
        frames = plan.collect_frames()
    print(f"{len(frames)} frames replayed")
    print(format_report(pipeline_report(plan)))
    if finj is not None:
        _print_fault_summary(finj, fctx)
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for i, frame in enumerate(frames):
            (out_dir / f"replay_{i:03d}.png").write_bytes(frame.to_png_bytes())
        print(f"wrote {len(frames)} PNGs to {out_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="geostreams",
        description="GeoStreams demo CLI (EDBT 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("streams", help="list the demo catalog")
    _add_common(p)
    p.set_defaults(func=cmd_streams)

    p = sub.add_parser("explain", help="parse, optimize, and cost a query")
    p.add_argument("query", help="query text (see repro.query.parser)")
    p.add_argument(
        "--check", action="store_true",
        help="also run the static analyzer and print its diagnostics "
             "(exit 1 on error-level findings)",
    )
    _add_common(p)
    _add_analyze(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "check",
        help="statically analyze a query against the demo catalog "
             "(see docs/static-analysis.md)",
    )
    p.add_argument("query", help="query text to analyze")
    p.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit non-zero on any finding)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the diagnostics as JSON"
    )
    p.add_argument(
        "--slo", type=float, default=None, metavar="MAX_LAG_S",
        help="also check the cost estimate against this SLO lag budget",
    )
    p.add_argument(
        "--calibration", default=None, metavar="PATH",
        help="price the SLO-budget check with a fitted calibration profile",
    )
    _add_common(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("query", help="execute a query and optionally write PNGs")
    p.add_argument("query", help="query text")
    p.add_argument("--out", default=None, help="directory for PNG output")
    p.add_argument("--no-optimize", action="store_true", help="skip query rewriting")
    _add_common(p)
    _add_obs(p)
    _add_faults(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("serve-demo", help="run the multi-client DSMS demo")
    p.add_argument("--clients", type=int, default=4, help="number of demo clients")
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the shared operator DAG (stages, subscribers, fan-out)",
    )
    _add_common(p)
    _add_obs(p)
    _add_analyze(p)
    _add_faults(p)
    p.set_defaults(func=cmd_serve_demo)

    p = sub.add_parser(
        "trace",
        help="run one query traced and render delivered-frame waterfalls "
             "(see docs/observability.md)",
    )
    p.add_argument(
        "query", nargs="?", default="reflectance(goes.vis)",
        help="query text (default: reflectance(goes.vis))",
    )
    p.add_argument(
        "--sample-rate", type=float, default=1.0, metavar="RATE",
        help="head-sampling rate 0..1 (breached queries are always traced)",
    )
    p.add_argument(
        "--last", type=int, default=1, metavar="N",
        help="render the N most recent frame traces (default 1)",
    )
    p.add_argument(
        "--keep", type=int, default=16, metavar="N",
        help="flight recorder ring capacity per query (default 16)",
    )
    p.add_argument(
        "--pinned-only", action="store_true",
        help="render only auto-pinned traces (SLO breaches, faults, dead letters)",
    )
    p.add_argument(
        "--slo", type=float, default=None, metavar="MAX_LAG_S",
        help="install a delivery-lag SLO; breaches auto-pin the breaching frame",
    )
    p.add_argument(
        "--export-chrome", default=None, metavar="PATH",
        help="write the rendered traces as Chrome trace-event JSON",
    )
    p.add_argument(
        "--export-otlp", default=None, metavar="PATH",
        help="write the rendered traces as OTLP-shaped JSON",
    )
    _add_common(p)
    _add_faults(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics", help="run the demo workload observed and export its metrics"
    )
    p.add_argument(
        "--self-test", action="store_true",
        help="verify the observability layer's invariants and exit",
    )
    p.add_argument(
        "--format", choices=("prom", "jsonl"), default="prom",
        help="export format: Prometheus text (default) or JSON lines",
    )
    p.add_argument("--out", default=None, help="write the export to a file")
    p.add_argument("--clients", type=int, default=2, help="number of demo clients")
    _add_common(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "serve-telemetry",
        help="run the demo workload with the telemetry timeline and serve "
             "/metrics /health /timeseries /events /traces over HTTP",
    )
    p.add_argument("--port", type=int, default=0, help="HTTP port (default: ephemeral)")
    p.add_argument("--clients", type=int, default=4, help="number of demo clients")
    p.add_argument(
        "--slo", type=float, default=None, metavar="MAX_LAG_S",
        help="install a delivery-lag SLO so /health folds breach state",
    )
    p.add_argument(
        "--cadence", type=float, default=30.0, metavar="SECONDS",
        help="timeline sampling cadence in logical stream seconds (default 30)",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="also install the frame tracer so /traces/<id> serves captures",
    )
    p.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the endpoint up this long after the scan (for repro top)",
    )
    p.add_argument(
        "--snapshot-out", default=None, metavar="DIR",
        help="fetch /health and /events over HTTP and write them to DIR",
    )
    _add_common(p)
    _add_faults(p)
    p.set_defaults(func=cmd_serve_telemetry)

    p = sub.add_parser(
        "top",
        help="live ANSI health/lag/journal console against a telemetry "
             "endpoint (or one in-process demo run)",
    )
    p.add_argument(
        "--url", default=None, metavar="URL",
        help="telemetry endpoint base URL (from serve-telemetry); omit to "
             "render one in-process demo scan",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval when polling a URL (default 2s)",
    )
    p.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default 0: until interrupted)",
    )
    p.add_argument(
        "--window", type=int, default=20, metavar="N",
        help="rollup window in timeline samples (default 20)",
    )
    p.add_argument(
        "--events", type=int, default=8, metavar="N",
        help="journal tail length to show (default 8)",
    )
    p.add_argument(
        "--slo", type=float, default=None, metavar="MAX_LAG_S",
        help="in-process mode: install a delivery-lag SLO",
    )
    p.add_argument(
        "--cadence", type=float, default=30.0, metavar="SECONDS",
        help="in-process mode: timeline sampling cadence (default 30)",
    )
    p.add_argument("--no-color", action="store_true", help="plain-text output")
    _add_common(p)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("archive", help="capture the demo downlink to .gsar files")
    p.add_argument("--out", default="./archives", help="output directory")
    _add_common(p)
    p.set_defaults(func=cmd_archive)

    p = sub.add_parser("replay", help="run a query against archived streams")
    p.add_argument("archives", nargs="+", help=".gsar files to register")
    p.add_argument("query", help="query text over the archived stream ids")
    p.add_argument("--out", default=None, help="directory for PNG output")
    p.add_argument("--no-optimize", action="store_true", help="skip query rewriting")
    _add_obs(p)
    _add_faults(p)
    p.set_defaults(func=cmd_replay)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GeoStreamsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
