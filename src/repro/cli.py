"""Command-line interface.

A small operational front door over the library, driving the built-in
simulated GOES catalog::

    geostreams streams
    geostreams explain "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), \\
                        bbox(-124, 36, -119, 41, crs='latlon'))"
    geostreams query   "stretch(reflectance(goes.vis), 'linear')" --frames 2 --out ./png
    geostreams serve-demo --clients 4

(Also runnable as ``python -m repro.cli ...``.) Regions given in
``latlon`` are transformed onto the satellite's fixed grid automatically
by the planner's safety net, so queries can be written in plain
geographic coordinates.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Sequence

from .engine import format_report, pipeline_report
from .errors import GeoStreamsError
from .ingest import GOESImager, SyntheticEarth
from .query import estimate_query, optimize, parse_query, plan_query
from .server import DSMSServer, StreamCatalog, format_query_request

__all__ = ["main", "build_demo_catalog"]


def build_demo_catalog(
    seed: int = 7, n_frames: int = 2, width: int = 192, height: int = 96
) -> tuple[GOESImager, StreamCatalog]:
    """The demo environment: one GOES-West-like imager, both bands."""
    from .geo import goes_geostationary
    from .ingest import western_us_sector

    crs = goes_geostationary(-135.0)
    sector = western_us_sector(crs, width=width, height=height)
    imager = GOESImager(
        scene=SyntheticEarth(seed=seed),
        sector_lattice=sector,
        n_frames=n_frames,
        t0=72_000.0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return imager, catalog


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="scene seed (default 7)")
    parser.add_argument("--frames", type=int, default=2, help="scan frames to simulate")
    parser.add_argument(
        "--sector", type=int, nargs=2, metavar=("WIDTH", "HEIGHT"), default=(192, 96),
        help="scan sector size in pixels (default 192 96)",
    )


def cmd_streams(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    for sid in catalog.ids():
        stream = catalog.get(sid)
        meta = stream.metadata
        print(
            f"{sid:<12} band={meta.band:<4} crs={meta.crs.name:<12} "
            f"org={meta.organization.value:<14} frame={meta.max_frame_shape}"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    tree = parse_query(args.query)
    print("parsed:")
    print(tree.pretty(indent=1))
    result = optimize(tree, dict(catalog.crs_of()))
    print("\noptimized (rules: " + (", ".join(result.applied) or "none") + "):")
    print(result.node.pretty(indent=1))
    profiles = catalog.profiles()
    try:
        before, _ = estimate_query(tree, profiles)
        after, _ = estimate_query(result.node, profiles)
        print(
            f"\nestimated per-frame work: {before.work:,.0f} -> {after.work:,.0f} "
            f"point-touches; buffered points: {before.buffer:,.0f} -> {after.buffer:,.0f}"
        )
    except GeoStreamsError as exc:
        print(f"\n(cost estimate unavailable: {exc})")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    tree = parse_query(args.query)
    if not args.no_optimize:
        tree = optimize(tree, dict(catalog.crs_of())).node
    sources = {sid: catalog.get(sid) for sid in catalog.ids()}
    plan = plan_query(tree, sources)
    start = time.perf_counter()
    frames = plan.collect_frames()
    elapsed = time.perf_counter() - start
    print(f"{len(frames)} frames in {elapsed:.3f}s")
    print(format_report(pipeline_report(plan)))
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for i, frame in enumerate(frames):
            path = out_dir / f"frame_{i:03d}.png"
            path.write_bytes(frame.to_png_bytes())
        print(f"wrote {len(frames)} PNGs to {out_dir}")
    return 0


def cmd_serve_demo(args: argparse.Namespace) -> int:
    imager, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    server = DSMSServer(catalog)
    box = imager.sector_lattice.bbox
    sessions = []
    for i in range(args.clients):
        f0 = 0.7 * i / max(args.clients, 1)
        region = (
            f"bbox({box.xmin + box.width * f0!r}, {box.ymin + box.height * f0!r}, "
            f"{box.xmin + box.width * (f0 + 0.25)!r}, "
            f"{box.ymin + box.height * (f0 + 0.25)!r}, crs='geos:-135')"
        )
        text = (
            "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
            f" 'linear'), {region})"
            if i % 2 == 0
            else f"within(reflectance(goes.vis), {region})"
        )
        session = server.handle_request(format_query_request(text))
        sessions.append(session)
        print(f"client {i}: session #{session.session_id}, "
              f"rewrites: {', '.join(sorted(set(session.applied_rules))) or 'none'}")
    start = time.perf_counter()
    stats = server.run()
    elapsed = time.perf_counter() - start
    print(
        f"\nscan: {stats.chunks_scanned} chunks in {elapsed:.2f}s; routing pruned "
        f"{stats.prune_fraction:.0%} of (chunk, query) pairs"
    )
    for session in sessions:
        print(
            f"session #{session.session_id}: {len(session.frames)} frames, "
            f"{len(session.records)} records, {session.points_received} points"
        )
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    from .io import write_archive

    _, catalog = build_demo_catalog(args.seed, args.frames, *args.sector)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for sid in catalog.ids():
        path = out_dir / f"{sid.replace('.', '_')}.gsar"
        chunks = write_archive(catalog.get(sid), path)
        print(f"{sid}: {chunks} chunks -> {path} ({path.stat().st_size / 1024:,.0f} KiB)")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .server import StreamCatalog

    catalog = StreamCatalog()
    for path in args.archives:
        stream = catalog.register_archive(path)
        print(f"registered {stream.stream_id!r} from {path}")
    tree = parse_query(args.query)
    if not args.no_optimize:
        tree = optimize(tree, dict(catalog.crs_of())).node
    sources = {sid: catalog.get(sid) for sid in catalog.ids()}
    plan = plan_query(tree, sources)
    frames = plan.collect_frames()
    print(f"{len(frames)} frames replayed")
    print(format_report(pipeline_report(plan)))
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for i, frame in enumerate(frames):
            (out_dir / f"replay_{i:03d}.png").write_bytes(frame.to_png_bytes())
        print(f"wrote {len(frames)} PNGs to {out_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="geostreams",
        description="GeoStreams demo CLI (EDBT 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("streams", help="list the demo catalog")
    _add_common(p)
    p.set_defaults(func=cmd_streams)

    p = sub.add_parser("explain", help="parse, optimize, and cost a query")
    p.add_argument("query", help="query text (see repro.query.parser)")
    _add_common(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("query", help="execute a query and optionally write PNGs")
    p.add_argument("query", help="query text")
    p.add_argument("--out", default=None, help="directory for PNG output")
    p.add_argument("--no-optimize", action="store_true", help="skip query rewriting")
    _add_common(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("serve-demo", help="run the multi-client DSMS demo")
    p.add_argument("--clients", type=int, default=4, help="number of demo clients")
    _add_common(p)
    p.set_defaults(func=cmd_serve_demo)

    p = sub.add_parser("archive", help="capture the demo downlink to .gsar files")
    p.add_argument("--out", default="./archives", help="output directory")
    _add_common(p)
    p.set_defaults(func=cmd_archive)

    p = sub.add_parser("replay", help="run a query against archived streams")
    p.add_argument("archives", nargs="+", help=".gsar files to register")
    p.add_argument("query", help="query text over the archived stream ids")
    p.add_argument("--out", default=None, help="directory for PNG output")
    p.add_argument("--no-optimize", action="store_true", help="skip query rewriting")
    p.set_defaults(func=cmd_replay)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GeoStreamsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
