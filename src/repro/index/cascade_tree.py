"""Dynamic cascade tree for indexing continuous-query regions.

Stand-in for the structure of Hart, Gertz & Zhang, "Evaluation of a
Dynamic Tree Structure for Indexing Query Regions on Streaming Geospatial
Data" (SSTD 2005, the paper's ref [10]), which the prototype uses as "a
single spatial restriction operator" over all registered queries.

Structure: a dynamic interval tree over the regions' **x** extents whose
nodes *cascade* into secondary interval trees over the **y** extents of
the rectangles stored there. A stab descends one x-path (O(log n) nodes)
and stabs each node's y-tree, giving O(log^2 n + k) point queries and the
analogous bound for window overlap — versus O(n) for the naive scan.
Insertions and deletions are O(log n) amortized (lazy deletion plus
median rebuilds, inherited from :class:`~repro.index.interval_tree.
IntervalTree`).
"""

from __future__ import annotations

from ..errors import IndexError_
from ..geo.region import BoundingBox
from .base import RegionIndex
from .interval_tree import IntervalTree

__all__ = ["CascadeTree"]


class _XNode:
    """One level-1 node: x-center plus a cascaded y-interval tree."""

    __slots__ = ("center", "left", "right", "ytree", "x_of")

    def __init__(self, center: float) -> None:
        self.center = center
        self.left: "_XNode | None" = None
        self.right: "_XNode | None" = None
        self.ytree = IntervalTree()
        self.x_of: dict[object, tuple[float, float]] = {}


class CascadeTree(RegionIndex):
    """Two-level dynamic interval tree over query rectangles."""

    def __init__(self) -> None:
        self._root: _XNode | None = None
        self._node_of: dict[object, _XNode] = {}
        self._boxes: dict[object, BoundingBox] = {}
        self._ops = 0

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, query_id: object) -> bool:
        return query_id in self._boxes

    def box_of(self, query_id: object) -> BoundingBox:
        try:
            return self._boxes[query_id]
        except KeyError:
            raise IndexError_(f"unknown query id {query_id!r}") from None

    # -- updates --------------------------------------------------------------

    def insert(self, query_id: object, box: BoundingBox) -> None:
        if query_id in self._boxes:
            raise IndexError_(f"duplicate query id {query_id!r}")
        self._boxes[query_id] = box
        self._insert_entry(query_id, box)
        self._maybe_rebuild()

    def _insert_entry(self, query_id: object, box: BoundingBox) -> None:
        if self._root is None:
            self._root = _XNode((box.xmin + box.xmax) / 2.0)
        node = self._root
        while True:
            if box.xmax < node.center:
                if node.left is None:
                    node.left = _XNode((box.xmin + box.xmax) / 2.0)
                node = node.left
            elif box.xmin > node.center:
                if node.right is None:
                    node.right = _XNode((box.xmin + box.xmax) / 2.0)
                node = node.right
            else:
                node.ytree.insert(query_id, box.ymin, box.ymax)
                node.x_of[query_id] = (box.xmin, box.xmax)
                self._node_of[query_id] = node
                return

    def remove(self, query_id: object) -> None:
        node = self._node_of.pop(query_id, None)
        if node is None:
            raise IndexError_(f"unknown query id {query_id!r}")
        node.ytree.remove(query_id)
        del node.x_of[query_id]
        del self._boxes[query_id]
        self._maybe_rebuild()

    # -- queries -----------------------------------------------------------------

    def stab(self, x: float, y: float) -> list[object]:
        out: list[object] = []
        node = self._root
        while node is not None:
            # Every rectangle at this node spans node.center in x; cascade
            # into its y-tree, then confirm x containment per candidate.
            if node.x_of:
                for qid in node.ytree.stab(y):
                    xlo, xhi = node.x_of[qid]
                    if xlo <= x <= xhi:
                        out.append(qid)
            node = node.left if x < node.center else (node.right if x > node.center else None)
        return out

    def overlapping(self, box: BoundingBox) -> list[object]:
        out: list[object] = []
        self._overlap(self._root, box, out)
        return out

    def _overlap(self, node: _XNode | None, box: BoundingBox, out: list[object]) -> None:
        if node is None:
            return
        if node.center < box.xmin:
            self._check_node(node, box, out, need_xhi_ge=box.xmin)
            self._overlap(node.right, box, out)
        elif node.center > box.xmax:
            self._check_node(node, box, out, need_xlo_le=box.xmax)
            self._overlap(node.left, box, out)
        else:
            self._check_node(node, box, out)
            self._overlap(node.left, box, out)
            self._overlap(node.right, box, out)

    def _check_node(
        self,
        node: _XNode,
        box: BoundingBox,
        out: list[object],
        need_xhi_ge: float | None = None,
        need_xlo_le: float | None = None,
    ) -> None:
        if not node.x_of:
            return
        for qid in node.ytree.overlapping(box.ymin, box.ymax):
            xlo, xhi = node.x_of[qid]
            if need_xhi_ge is not None and xhi < need_xhi_ge:
                continue
            if need_xlo_le is not None and xlo > need_xlo_le:
                continue
            out.append(qid)

    # -- maintenance ------------------------------------------------------------

    def _maybe_rebuild(self) -> None:
        self._ops += 1
        if self._ops > 4 * max(16, len(self._boxes)):
            self._rebuild()

    def _rebuild(self) -> None:
        """Median rebuild of the x-level (y-trees rebuild themselves)."""
        entries = list(self._boxes.items())
        self._root = None
        self._node_of.clear()
        self._ops = 0
        self._root = self._build(entries)

    def _build(self, entries: list[tuple[object, BoundingBox]]) -> _XNode | None:
        if not entries:
            return None
        endpoints = sorted(e for _, b in entries for e in (b.xmin, b.xmax))
        center = endpoints[len(endpoints) // 2]
        node = _XNode(center)
        left: list[tuple[object, BoundingBox]] = []
        right: list[tuple[object, BoundingBox]] = []
        for qid, box in entries:
            if box.xmax < center:
                left.append((qid, box))
            elif box.xmin > center:
                right.append((qid, box))
            else:
                node.ytree.insert(qid, box.ymin, box.ymax)
                node.x_of[qid] = (box.xmin, box.xmax)
                self._node_of[qid] = node
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    # -- introspection ------------------------------------------------------------

    def depth(self) -> int:
        """Height of the x-level tree (for balance diagnostics)."""

        def _d(node: _XNode | None) -> int:
            if node is None:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        return _d(self._root)
