"""Region-index interface for the shared spatial restriction stage.

Section 4: "Multiple queries against a single GeoStream are optimized
using a dynamic cascade tree structure, which acts as a single spatial
restriction operator and efficiently streams only the point data of
interest to current continuous queries." A region index holds the
rectangles of all registered continuous queries and answers, for incoming
data, *which queries want it* — by stabbing point or by window overlap.
"""

from __future__ import annotations

from ..geo.region import BoundingBox

__all__ = ["RegionIndex"]


class RegionIndex:
    """Dynamic set of named rectangles with stabbing and window queries."""

    def insert(self, query_id: object, box: BoundingBox) -> None:
        """Register a query's region rectangle."""
        raise NotImplementedError

    def remove(self, query_id: object) -> None:
        """Deregister a query."""
        raise NotImplementedError

    def stab(self, x: float, y: float) -> list[object]:
        """Ids of all regions containing the point (x, y)."""
        raise NotImplementedError

    def overlapping(self, box: BoundingBox) -> list[object]:
        """Ids of all regions intersecting the window ``box``."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, query_id: object) -> bool:
        raise NotImplementedError
