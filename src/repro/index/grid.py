"""Uniform grid region index: the mid-tier baseline.

Bucketizes rectangle ids into fixed grid cells over a declared domain.
Fast when regions are small relative to the domain and evenly spread;
degrades when regions cluster in a few cells — which is where the cascade
tree keeps its logarithmic behaviour (experiment E8 sweeps both regimes).
"""

from __future__ import annotations

from ..errors import IndexError_
from ..geo.region import BoundingBox
from .base import RegionIndex

__all__ = ["GridRegionIndex"]


class GridRegionIndex(RegionIndex):
    """Fixed uniform grid over a domain bounding box."""

    def __init__(self, domain: BoundingBox, cells_x: int = 32, cells_y: int = 32) -> None:
        if cells_x < 1 or cells_y < 1:
            raise IndexError_("grid index needs at least one cell per axis")
        if domain.is_degenerate:
            raise IndexError_("grid index domain must have positive area")
        self.domain = domain
        self.cells_x = cells_x
        self.cells_y = cells_y
        self._cells: dict[tuple[int, int], set[object]] = {}
        self._boxes: dict[object, BoundingBox] = {}

    # -- cell mapping ----------------------------------------------------------

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        cx = int((x - self.domain.xmin) / self.domain.width * self.cells_x)
        cy = int((y - self.domain.ymin) / self.domain.height * self.cells_y)
        return (
            min(max(cx, 0), self.cells_x - 1),
            min(max(cy, 0), self.cells_y - 1),
        )

    def _cells_of_box(self, box: BoundingBox) -> list[tuple[int, int]]:
        c0x, c0y = self._cell_of(box.xmin, box.ymin)
        c1x, c1y = self._cell_of(box.xmax, box.ymax)
        return [(i, j) for i in range(c0x, c1x + 1) for j in range(c0y, c1y + 1)]

    # -- RegionIndex API -----------------------------------------------------------

    def insert(self, query_id: object, box: BoundingBox) -> None:
        if query_id in self._boxes:
            raise IndexError_(f"duplicate query id {query_id!r}")
        self._boxes[query_id] = box
        for cell in self._cells_of_box(box):
            self._cells.setdefault(cell, set()).add(query_id)

    def remove(self, query_id: object) -> None:
        box = self._boxes.pop(query_id, None)
        if box is None:
            raise IndexError_(f"unknown query id {query_id!r}")
        for cell in self._cells_of_box(box):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(query_id)
                if not bucket:
                    del self._cells[cell]

    def stab(self, x: float, y: float) -> list[object]:
        bucket = self._cells.get(self._cell_of(x, y), ())
        return [
            qid
            for qid in bucket
            if (b := self._boxes[qid]).xmin <= x <= b.xmax and b.ymin <= y <= b.ymax
        ]

    def overlapping(self, box: BoundingBox) -> list[object]:
        seen: set[object] = set()
        out: list[object] = []
        for cell in self._cells_of_box(box):
            for qid in self._cells.get(cell, ()):
                if qid not in seen and self._boxes[qid].intersects(box):
                    seen.add(qid)
                    out.append(qid)
        return out

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, query_id: object) -> bool:
        return query_id in self._boxes
