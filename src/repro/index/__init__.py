"""Spatial indexes over continuous-query regions (Section 4 / ref [10])."""

from .base import RegionIndex
from .cascade_tree import CascadeTree
from .grid import GridRegionIndex
from .interval_tree import IntervalTree
from .naive import NaiveRegionIndex

__all__ = [
    "RegionIndex",
    "CascadeTree",
    "GridRegionIndex",
    "IntervalTree",
    "NaiveRegionIndex",
]
