"""Dynamic 1-D interval tree (building block of the cascade tree).

A centered interval tree: every node has a center value and stores the
intervals containing it, in two endpoint-sorted lists; intervals entirely
left/right of the center live in the corresponding subtree. Supports

* ``insert`` / ``remove`` by payload id (lazy deletion with tombstones),
* ``stab(v)`` — all intervals containing v,
* ``overlapping(a, b)`` — all intervals intersecting [a, b],

with automatic rebuilds (median-of-endpoints) when the structure drifts
too far from balance or accumulates too many tombstones, giving amortized
O(log n) updates and O(log n + k) queries.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..errors import IndexError_

__all__ = ["IntervalTree"]


class _Node:
    __slots__ = ("center", "left", "right", "by_lo", "by_hi", "size")

    def __init__(self, center: float) -> None:
        self.center = center
        self.left: _Node | None = None
        self.right: _Node | None = None
        # (endpoint, id) tuples; ids are unique so tuples sort stably.
        self.by_lo: list[tuple[float, object]] = []
        self.by_hi: list[tuple[float, object]] = []
        self.size = 0  # live items in this subtree


class IntervalTree:
    """Dynamic set of closed intervals keyed by a unique payload id."""

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._items: dict[object, tuple[float, float]] = {}
        self._dead: set[object] = set()
        self._ops_since_rebuild = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._items

    def interval_of(self, item_id: object) -> tuple[float, float]:
        try:
            return self._items[item_id]
        except KeyError:
            raise IndexError_(f"unknown interval id {item_id!r}") from None

    # -- updates -----------------------------------------------------------

    def insert(self, item_id: object, lo: float, hi: float) -> None:
        if lo > hi:
            raise IndexError_(f"degenerate interval [{lo}, {hi}]")
        if item_id in self._items:
            raise IndexError_(f"duplicate interval id {item_id!r}")
        if item_id in self._dead:
            # Re-inserting a tombstoned id would corrupt lazy deletion;
            # purge it eagerly.
            self._rebuild()
        self._items[item_id] = (lo, hi)
        if self._root is None:
            self._root = _Node((lo + hi) / 2.0)
        node = self._root
        while True:
            node.size += 1
            if hi < node.center:
                if node.left is None:
                    node.left = _Node((lo + hi) / 2.0)
                node = node.left
            elif lo > node.center:
                if node.right is None:
                    node.right = _Node((lo + hi) / 2.0)
                node = node.right
            else:
                # Endpoint lists hold (endpoint, orderable-key, id) so that
                # heterogeneous ids never hit Python's cross-type compare.
                bisect.insort(node.by_lo, (lo, _key(item_id), item_id))
                bisect.insort(node.by_hi, (-hi, _key(item_id), item_id))
                break
        self._maybe_rebuild()

    def remove(self, item_id: object) -> None:
        if item_id not in self._items:
            raise IndexError_(f"unknown interval id {item_id!r}")
        del self._items[item_id]
        self._dead.add(item_id)
        self._maybe_rebuild()

    # -- queries --------------------------------------------------------------

    def stab(self, v: float) -> list[object]:
        """Ids of all live intervals containing ``v``."""
        out: list[object] = []
        node = self._root
        while node is not None:
            if v < node.center:
                for lo, _, item_id in node.by_lo:
                    if lo > v:
                        break
                    if item_id not in self._dead:
                        out.append(item_id)
                node = node.left
            elif v > node.center:
                for neg_hi, _, item_id in node.by_hi:
                    if -neg_hi < v:
                        break
                    if item_id not in self._dead:
                        out.append(item_id)
                node = node.right
            else:
                for lo, _, item_id in node.by_lo:
                    if item_id not in self._dead:
                        out.append(item_id)
                break
        return out

    def overlapping(self, a: float, b: float) -> list[object]:
        """Ids of all live intervals intersecting [a, b]."""
        if a > b:
            raise IndexError_(f"degenerate query interval [{a}, {b}]")
        out: list[object] = []
        self._overlap(self._root, a, b, out)
        return out

    def _overlap(self, node: _Node | None, a: float, b: float, out: list[object]) -> None:
        if node is None:
            return
        if node.center < a:
            # Only intervals reaching right to >= a qualify at this node,
            # and only the right subtree can contain further matches.
            for neg_hi, _, item_id in node.by_hi:
                if -neg_hi < a:
                    break
                if item_id not in self._dead:
                    out.append(item_id)
            self._overlap(node.right, a, b, out)
        elif node.center > b:
            for lo, _, item_id in node.by_lo:
                if lo > b:
                    break
                if item_id not in self._dead:
                    out.append(item_id)
            self._overlap(node.left, a, b, out)
        else:
            for lo, _, item_id in node.by_lo:
                if item_id not in self._dead:
                    out.append(item_id)
            self._overlap(node.left, a, b, out)
            self._overlap(node.right, a, b, out)

    def items(self) -> Iterator[tuple[object, float, float]]:
        for item_id, (lo, hi) in self._items.items():
            yield item_id, lo, hi

    # -- maintenance ----------------------------------------------------------

    def _maybe_rebuild(self) -> None:
        self._ops_since_rebuild += 1
        dead = len(self._dead)
        live = len(self._items)
        if dead > 16 and dead > live:
            self._rebuild()
        elif self._ops_since_rebuild > 4 * max(16, live):
            # Periodic rebalance against adversarial insertion orders.
            self._rebuild()

    def _rebuild(self) -> None:
        items = list(self._items.items())
        self._root = None
        self._dead.clear()
        self._ops_since_rebuild = 0
        self._root = self._build([(iid, lo, hi) for iid, (lo, hi) in items])

    def _build(self, items: list[tuple[object, float, float]]) -> _Node | None:
        if not items:
            return None
        endpoints = sorted(e for _, lo, hi in items for e in (lo, hi))
        center = endpoints[len(endpoints) // 2]
        node = _Node(center)
        node.size = len(items)
        here: list[tuple[object, float, float]] = []
        left: list[tuple[object, float, float]] = []
        right: list[tuple[object, float, float]] = []
        for iid, lo, hi in items:
            if hi < center:
                left.append((iid, lo, hi))
            elif lo > center:
                right.append((iid, lo, hi))
            else:
                here.append((iid, lo, hi))
        node.by_lo = sorted((lo, _key(iid), iid) for iid, lo, hi in here)
        node.by_hi = sorted((-hi, _key(iid), iid) for iid, lo, hi in here)
        node.left = self._build(left)
        node.right = self._build(right)
        return node


def _key(item_id: object) -> str:
    """A total order for heterogeneous ids inside sorted endpoint lists."""
    return f"{type(item_id).__name__}:{item_id!r}"
