"""Naive per-query scan: the baseline the cascade tree is measured against.

Evaluating every registered query's region independently against incoming
data is exactly what the paper's shared restriction stage avoids; this
index is that strawman — O(n) per stab/overlap.
"""

from __future__ import annotations

from ..errors import IndexError_
from ..geo.region import BoundingBox
from .base import RegionIndex

__all__ = ["NaiveRegionIndex"]


class NaiveRegionIndex(RegionIndex):
    """Linear scan over all registered rectangles."""

    def __init__(self) -> None:
        self._boxes: dict[object, BoundingBox] = {}

    def insert(self, query_id: object, box: BoundingBox) -> None:
        if query_id in self._boxes:
            raise IndexError_(f"duplicate query id {query_id!r}")
        self._boxes[query_id] = box

    def remove(self, query_id: object) -> None:
        if query_id not in self._boxes:
            raise IndexError_(f"unknown query id {query_id!r}")
        del self._boxes[query_id]

    def stab(self, x: float, y: float) -> list[object]:
        return [
            qid
            for qid, b in self._boxes.items()
            if b.xmin <= x <= b.xmax and b.ymin <= y <= b.ymax
        ]

    def overlapping(self, box: BoundingBox) -> list[object]:
        return [qid for qid, b in self._boxes.items() if b.intersects(box)]

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, query_id: object) -> bool:
        return query_id in self._boxes
