"""Client sessions: where continuous-query results land.

Raster results are assembled into frames and encoded as PNG (Section 4's
delivery path); point results (region aggregates) are collected as
records. Sessions are the terminal sinks of compiled push networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.chunk import Chunk, PointChunk
from ..engine.pipeline import chunk_time
from ..obs.registry import LATENCY_BUCKETS, get_registry, metrics_enabled
from ..operators.delivery import CollectingSink, DeliveredFrame, Delivery
from ..query import ast as q

if TYPE_CHECKING:
    from ..obs.registry import Counter, Histogram
    from ..obs.trace import FrameTrace

__all__ = ["AggregateRecord", "ClientSession", "SessionCheckpoint"]


@dataclass(frozen=True)
class AggregateRecord:
    """One delivered scalar result (from a region aggregate)."""

    x: float
    y: float
    value: float
    t: float
    band: str
    sector: int | None


@dataclass(frozen=True)
class SessionCheckpoint:
    """Resumable delivery position of one continuous-query session.

    Captures how far results had been delivered when a client dropped;
    :meth:`repro.server.dsms.DSMSServer.restore_session` re-registers the
    query and the new session silently discards everything at or before
    the checkpointed stream time — the reconnecting client sees no
    duplicates and resumes at the next frame.
    """

    query_text: str
    frames_delivered: int
    last_frame_t: float
    records_delivered: int
    last_record_t: float
    encode_png: bool = True


class ClientSession:
    """One registered continuous query and its delivered results."""

    def __init__(
        self,
        session_id: int,
        query_text: str,
        tree: q.QueryNode,
        optimized: q.QueryNode,
        applied_rules: list[str],
        encode_png: bool = True,
    ) -> None:
        self.session_id = session_id
        self.query_text = query_text
        self.tree = tree
        self.optimized = optimized
        self.applied_rules = applied_rules
        self._delivery = Delivery(sink=CollectingSink(), encode=encode_png)
        self.records: list[AggregateRecord] = []
        self.chunks_received = 0
        self.points_received = 0
        self.closed = False
        # Stream-time delivery lag per frame: how far the source scan had
        # progressed (server clock) beyond the frame's own timestamp when
        # the frame completed. Buffering operators (compositions under
        # sequential band scans, stretches, warps) show up here directly.
        self.latencies: list[float] = []
        # Event-time watermark: newest frame/record time delivered so far.
        # SLO monitoring compares it against the server's stream clock.
        self.watermark = float("-inf")
        self._clock = None
        self._obs = None  # lazily-fetched registry handles (see _obs_handles)
        # Checkpoint/restore: everything at or before these stream times was
        # already delivered to the client in a previous session.
        self._resume_frame_t = float("-inf")
        self._resume_record_t = float("-inf")
        self.resumed_skips = 0

    def set_clock(self, clock: "Callable[[], float]") -> None:
        """Install the server's stream-time clock (for latency metrics)."""
        self._clock = clock

    def bind_trace(self, query_key: object) -> None:
        """Key this session's frame traces in the flight recorder.

        The DSMS passes its registration id, so sessions sharing one
        canonical plan, the SLO monitor's breach callbacks, and
        ``DSMSServer.recent_traces`` all agree on the ring key.
        """
        self._delivery.trace_query = query_key

    def bind_epoch(self, epoch: int) -> None:
        """Stamp subsequently delivered frames with this plan epoch.

        The DSMS calls this at registration (epoch 1) and again at each
        committed hot swap; the cutover happens at a frame boundary, so
        every frame is produced wholly within one epoch.
        """
        self._delivery.epoch = epoch

    @property
    def current_epoch(self) -> int:
        """Plan epoch of the query currently feeding this session."""
        return self._delivery.epoch

    def frame_traces(self) -> "list[FrameTrace | None]":
        """Traces of this session's delivered frames (None when untraced)."""
        return [frame.trace for frame in self.frames]

    def _obs_handles(self) -> "tuple[Counter, Counter, Histogram] | tuple[Counter, ...]":
        """Registry instruments for this session, fetched on first use."""
        if self._obs is None:
            registry = get_registry()
            sid = str(self.session_id)
            self._obs = (
                registry.counter("dsms_session_chunks_total", session=sid),
                registry.counter("dsms_session_points_total", session=sid),
                registry.gauge("dsms_session_pending_frames", session=sid),
                registry.histogram(
                    "dsms_delivery_lag_seconds",
                    buckets=LATENCY_BUCKETS,
                    session=sid,
                ),
            )
        return self._obs

    # -- sink interface (called by the push network) ----------------------------

    def receive(self, chunk: Chunk) -> None:
        if isinstance(chunk, PointChunk):
            if self._resume_record_t > float("-inf"):
                keep = chunk.t > self._resume_record_t
                if not np.all(keep):
                    self.resumed_skips += int(np.sum(~keep))
                    if not np.any(keep):
                        return
                    chunk = chunk.select(keep)
        elif chunk_time(chunk) <= self._resume_frame_t:
            # Replayed data the previous session already delivered.
            self.resumed_skips += 1
            return
        self.chunks_received += 1
        self.points_received += chunk.n_points
        if metrics_enabled():
            chunks_c, points_c, _, _ = self._obs_handles()
            chunks_c.inc()
            points_c.inc(chunk.n_points)
        if isinstance(chunk, PointChunk):
            values = np.asarray(chunk.values, dtype=float)
            for i in range(chunk.n_points):
                self.records.append(
                    AggregateRecord(
                        x=float(chunk.x[i]),
                        y=float(chunk.y[i]),
                        value=float(values[i]),
                        t=float(chunk.t[i]),
                        band=chunk.band,
                        sector=chunk.sector,
                    )
                )
            if chunk.n_points:
                self.watermark = max(self.watermark, float(np.max(chunk.t)))
            return
        # Delivery passes chunks through; we only want its PNG side effect.
        before = len(self.frames)
        for _ in self._delivery.process(chunk):
            pass
        self._note_latencies(before)

    def _note_latencies(self, before: int) -> None:
        for frame in self.frames[before:]:
            self.watermark = max(self.watermark, frame.image.t)
        if self._clock is None:
            return
        now = self._clock()
        new_lags = [now - frame.image.t for frame in self.frames[before:]]
        self.latencies.extend(new_lags)
        if metrics_enabled():
            _, _, frames_g, lag_h = self._obs_handles()
            frames_g.set(len(self.frames))
            for lag in new_lags:
                lag_h.observe(lag)

    # -- checkpoint / restore ---------------------------------------------------

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the delivery position (for reconnect-and-resume)."""
        return SessionCheckpoint(
            query_text=self.query_text,
            frames_delivered=len(self.frames),
            last_frame_t=self.frames[-1].image.t if self.frames else float("-inf"),
            records_delivered=len(self.records),
            last_record_t=self.records[-1].t if self.records else float("-inf"),
            encode_png=self._delivery.encode,
        )

    def resume_from(self, checkpoint: SessionCheckpoint) -> None:
        """Skip everything a previous session already delivered.

        Sources replay deterministically from the start (GeoStreams are
        re-openable), so resuming means suppressing the replayed prefix:
        grid chunks at or before the checkpointed frame time and aggregate
        records at or before the checkpointed record time are discarded
        before they reach the sink.
        """
        self._resume_frame_t = checkpoint.last_frame_t
        self._resume_record_t = checkpoint.last_record_t

    def close(self) -> None:
        if not self.closed:
            before = len(self.frames)
            for _ in self._delivery.flush():
                pass
            self._note_latencies(before)
            self.closed = True

    @property
    def mean_latency(self) -> float:
        """Mean stream-time delivery lag in seconds (NaN before delivery)."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else float("nan")

    # -- results --------------------------------------------------------------------

    @property
    def frames(self) -> list[DeliveredFrame]:
        return self._delivery.sink.frames  # type: ignore[union-attr]

    def __repr__(self) -> str:
        return (
            f"ClientSession(#{self.session_id}, frames={len(self.frames)}, "
            f"records={len(self.records)}, closed={self.closed})"
        )
