"""The Data Stream Management System server (Fig. 3).

Ties everything together: queries arrive as specialized HTTP requests,
are parsed into the algebra, optimized (restriction pushdown with region
re-mapping), compiled into push networks, and registered. A single scan
of the source streams then drives all registered queries, with a dynamic
cascade tree acting "as a single spatial restriction operator" that
routes each incoming chunk only to the queries whose regions it can
contribute to — the architecture of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING

from ..core.chunk import Chunk, GridChunk
from ..core.provenance import Provenance
from ..engine.pipeline import chunk_time
from ..engine.scheduler import merge_sources
from ..errors import GeoStreamsError, QueryAnalysisError, RegionError, ServerError
from ..faults.recovery import RecoveryContext, current_recovery
from ..geo.region import BoundingBox
from ..index.base import RegionIndex
from ..index.cascade_tree import CascadeTree
from ..index.naive import NaiveRegionIndex
from ..obs.export import register_build_info
from ..obs.registry import get_registry, metrics_enabled
from ..obs.slo import SLOMonitor, SLOPolicy
from ..obs.stats import StatsCollector, current_collector
from ..obs.timeline import current_journal, current_metric_store
from ..obs.trace import FrameTrace, current_frame_tracer
from ..operators.base import Operator
from ..operators.delivery import DeliveredFrame
from ..plan import (
    EpochSwapResult,
    PlanDAG,
    PlanNode,
    Stage,
    canonicalize,
    estimate_plan,
    source_ids as plan_source_ids,
)
from ..query import ast as q
from ..query.adaptive import AdaptivePolicy
from ..query.calibration import CalibrationSample, kind_of
from ..query.optimizer import optimize
from ..query.parser import parse_query
from .catalog import StreamCatalog
from .protocol import Request, parse_request
from .session import ClientSession, SessionCheckpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Mapping

    from ..analysis.diagnostics import DiagnosticReport
    from ..engine.stats import OperatorReport
    from .telemetry import TelemetryServer
    from ..obs.trace import FrameTracer
    from ..plan.stages import PlanStats
    from ..query.calibration import CalibrationProfile
    from ..query.cost import StreamProfile

__all__ = ["DSMSServer", "source_prune_boxes", "RouterStats", "EpochSwapRecord"]

# Nodes a source-level pruning box may pass through unchanged: they keep
# point geometry intact (values and timestamps may change freely).
_GEOMETRY_PRESERVING = (
    q.TemporalRestrict,
    q.ValueRestrict,
    q.ValueMap,
    q.Stretch,
    q.TemporalAgg,
)


def source_prune_boxes(node: q.QueryNode) -> dict[str, BoundingBox | None]:
    """Per-source routing rectangles implied by a (rewritten) query tree.

    Walks the tree carrying the intersection of spatial restrictions seen
    on the path, resetting at geometry-changing operators (re-projection,
    zooming, warps). A source mapped to ``None`` needs every chunk.
    Multiple references to the same source union their boxes.
    """
    out: dict[str, BoundingBox | None] = {}

    def visit(n: q.QueryNode, box: BoundingBox | None) -> None:
        if isinstance(n, q.StreamRef):
            if n.stream_id in out:
                prev = out[n.stream_id]
                if prev is None or box is None:
                    out[n.stream_id] = None
                elif prev.crs == box.crs:
                    out[n.stream_id] = prev.union(box)
                else:
                    out[n.stream_id] = None
            else:
                out[n.stream_id] = box
            return
        if isinstance(n, q.SpatialRestrict):
            rbox = n.region.bounding_box
            if box is not None and box.crs == rbox.crs:
                inter = box.intersection(rbox)
                rbox = inter if inter is not None else BoundingBox(
                    rbox.xmin, rbox.ymin, rbox.xmin, rbox.ymin, rbox.crs
                )
            visit(n.child, rbox)
            return
        if isinstance(n, _GEOMETRY_PRESERVING):
            visit(n.children[0], box)
            return
        if isinstance(n, q.Compose):
            visit(n.left, box)
            visit(n.right, box)
            return
        # Geometry-changing operator: the box (in output coordinates) says
        # nothing directly about source coordinates.
        for child in n.children:
            visit(child, None)

    visit(node, None)
    return out


@dataclass
class RouterStats:
    """How much work the shared restriction stage saved."""

    chunks_scanned: int = 0
    pairs_routed: int = 0  # (chunk, query) pairs actually fed
    pairs_skipped: int = 0  # pairs pruned by the region index
    fallbacks: int = 0  # routers rebuilt as naive indexes after a failure
    chunks_shed: int = 0  # chunks dropped by the ingest shedder

    @property
    def prune_fraction(self) -> float:
        total = self.pairs_routed + self.pairs_skipped
        return self.pairs_skipped / total if total else 0.0


class _Fanout:
    """Terminal sink that forwards results to every subscribed session.

    The paper's introduction motivates the DSMS with exactly this
    duplication: "these processes are often duplicated at many sites for
    different and even the same type of applications". When two clients
    register queries whose *optimized* trees are equal, the server runs
    one push network and fans its results out.
    """

    def __init__(self) -> None:
        self.sessions: list[ClientSession] = []

    def __call__(self, chunk: Chunk) -> None:
        for session in self.sessions:
            session.receive(chunk)


@dataclass
class _Registration:
    fanout: _Fanout
    plan: PlanNode
    stages: list[Stage]
    boxes: dict[str, BoundingBox | None]
    sources: set[str]
    # The logical trees the registration was compiled from; re-planning
    # re-optimizes ``tree`` (the parsed original) from scratch.
    tree: q.QueryNode | None = None
    optimized: q.QueryNode | None = None

    @property
    def sessions(self) -> list[ClientSession]:
        return self.fanout.sessions


@dataclass(frozen=True)
class _PendingSwap:
    """A requested re-plan waiting for its registration's frame boundary."""

    reg_id: int
    plan: PlanNode
    optimized: q.QueryNode
    reason: str
    shed_pressure: float | None


@dataclass(frozen=True)
class EpochSwapRecord:
    """One committed hot swap: the plan diff plus the cutover seed.

    ``checkpoints`` are the per-session :class:`SessionCheckpoint`\\ s
    taken at the frame boundary the old subplan was drained to; the new
    epoch is seeded from them (resume-style suppression guarantees the
    swap can neither drop nor duplicate a frame).
    """

    reg_id: int
    result: EpochSwapResult
    checkpoints: tuple[SessionCheckpoint, ...]
    reason: str
    at_chunk: int


class DSMSServer:
    """In-process DSMS: register continuous queries, then run the scan."""

    def __init__(
        self,
        catalog: StreamCatalog,
        index_factory: type[RegionIndex] = CascadeTree,
        optimize_queries: bool = True,
        ingest_shedder: Operator | None = None,
        recovery: RecoveryContext | None = None,
        share_subplans: bool = True,
        slo: SLOPolicy | None = None,
        columnar: bool | None = None,
    ) -> None:
        self.catalog = catalog
        self.optimize_queries = optimize_queries
        self._index_factory = index_factory
        # All registered queries merged into one operator DAG; with
        # ``share_subplans`` on, common canonical prefixes execute once
        # per chunk and fan out to every subscribed query. ``columnar``
        # picks the operators' execution mode (None: REPRO_COLUMNAR).
        self.plan_dag = PlanDAG(share=share_subplans, columnar=columnar)
        # Optional frame-shedding gate ahead of routing; under sustained
        # source stalls (detected via the recovery clock) it is escalated.
        self.ingest_shedder = ingest_shedder
        # Explicit recovery context; falls back to the installed one.
        self.recovery = recovery
        # One region index per source stream (regions live in that CRS).
        self._routers: dict[str, RegionIndex] = {}
        # What each router holds, kept so a failing router can be rebuilt
        # as a naive index without losing any registration.
        self._router_boxes: dict[str, dict[int, BoundingBox]] = {}
        self._always: dict[str, set[int]] = {}
        # reg_id -> shared registration; session_id -> reg_id.
        self._registrations: dict[int, _Registration] = {}
        self._session_to_reg: dict[int, int] = {}
        self._next_session_id = 1
        self._next_reg_id = 1
        self._now = 0.0  # stream-time clock: measured time of the latest chunk
        self.router_stats = RouterStats()
        # Optional delivery-lag SLO: per-query watermarks, repro_slo_*
        # metrics, breach callbacks, and shedding escalation.
        self.slo_monitor = SLOMonitor(slo) if slo is not None else None
        # Adaptive re-optimization: requested swaps wait for their
        # registration's frame boundary; committed ones are logged.
        self.adaptive: AdaptivePolicy | None = None
        self._pending_swaps: dict[int, _PendingSwap] = {}
        self.swap_log: list[EpochSwapRecord] = []
        if metrics_enabled():
            # Every scrape/snapshot from this server identifies the build.
            register_build_info(columnar=self.plan_dag.columnar)

    def serve_telemetry(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "TelemetryServer":
        """Start the stdlib HTTP telemetry endpoint for this server.

        Exposes ``/metrics`` (Prometheus text), ``/health``,
        ``/timeseries``, ``/events``, and ``/traces/<id>`` backed by this
        server plus whatever store/journal/recorder are installed.
        Returns the started :class:`~repro.server.telemetry.
        TelemetryServer`; callers close it (or use it as a context
        manager).
        """
        from .telemetry import TelemetryServer

        return TelemetryServer(self, host=host, port=port)

    def set_slo(self, policy: SLOPolicy | None) -> None:
        """Install (or clear) the delivery-lag SLO for subsequent runs."""
        self.slo_monitor = SLOMonitor(policy) if policy is not None else None

    # -- registration ------------------------------------------------------------

    def register(
        self,
        query: str | q.QueryNode,
        encode_png: bool = True,
        strict: bool = False,
    ) -> ClientSession:
        """Parse, optimize, compile, and route one continuous query.

        With ``strict``, the static analyzer runs first and any
        error-level diagnostic rejects the registration with a
        :class:`~repro.errors.QueryAnalysisError` carrying the full
        report — nothing is wired into the DAG.
        """
        if strict:
            report = self.analyze_query(query)
            if not report.ok:
                raise QueryAnalysisError(
                    "static analysis rejected the query:\n" + report.render(),
                    report=report,
                )
        if isinstance(query, str):
            text = query
            tree = parse_query(query)
        else:
            text = query.pretty()
            tree = query
        for ref in (n for n in q.walk(tree) if isinstance(n, q.StreamRef)):
            if ref.stream_id not in self.catalog:
                raise ServerError(
                    f"query references unknown stream {ref.stream_id!r}; "
                    f"catalog has {self.catalog.ids()}"
                )
        if self.optimize_queries:
            result = optimize(tree, self.catalog.crs_of())
            optimized, applied = result.node, result.applied
        else:
            optimized, applied = tree, []

        session = ClientSession(
            self._next_session_id, text, tree, optimized, applied, encode_png=encode_png
        )
        session.set_clock(lambda: self._now)
        self._next_session_id += 1

        # Queries with the same *canonical plan* share one fan-out: the
        # intro's "duplicated processes" collapse into a single execution
        # whose results fan out to every subscriber. Different queries
        # sharing only a plan prefix still share those stages below.
        policy = self._common_timestamp_policy(optimized)
        plan = canonicalize(
            optimized, crs_of=dict(self.catalog.crs_of()), default_policy=policy
        )
        shared = self._find_shared(plan)
        if shared is not None:
            shared.fanout.sessions.append(session)
            shared_rid = next(
                rid for rid, reg in self._registrations.items() if reg is shared
            )
            self._session_to_reg[session.session_id] = shared_rid
            session.bind_trace(shared_rid)
            session.bind_epoch(self.plan_dag.current_epoch(shared_rid))
            return session

        fanout = _Fanout()
        fanout.sessions.append(session)
        boxes = source_prune_boxes(optimized)
        reg_id = self._next_reg_id
        self._next_reg_id += 1
        stages = self.plan_dag.add_plan(plan, fanout, reg_id)
        registration = _Registration(
            fanout, plan, stages, boxes, plan_source_ids(plan),
            tree=tree, optimized=optimized,
        )
        self._registrations[reg_id] = registration
        self._session_to_reg[session.session_id] = reg_id
        session.bind_trace(reg_id)
        session.bind_epoch(self.plan_dag.current_epoch(reg_id))
        self._route(reg_id, boxes)
        return session

    def register_query(
        self,
        query: str | q.QueryNode,
        encode_png: bool = True,
        *,
        strict: bool = True,
    ) -> ClientSession:
        """Register with static analysis gating on by default.

        Identical to :meth:`register` but strict unless told otherwise:
        error-level diagnostics reject the query before it touches the
        shared DAG.
        """
        return self.register(query, encode_png=encode_png, strict=strict)

    def analyze_query(self, query: str | q.QueryNode) -> "DiagnosticReport":
        """Statically analyze one query against this server's catalog.

        Runs every check :func:`repro.analysis.analyze` knows — CRS,
        value-domain, satisfiability, and (when an SLO is installed)
        budget conflicts — without registering anything.
        """
        from ..analysis import analyze

        monitor = self.slo_monitor
        return analyze(
            query,
            self.catalog,
            slo=monitor.policy if monitor is not None else None,
            has_ingest_shedder=self.ingest_shedder is not None,
        )

    def selfcheck(self) -> "DiagnosticReport":
        """Audit the live shared DAG against its structural invariants.

        Delegates to :func:`repro.analysis.selfcheck.check_server`:
        fingerprint collisions, dangling fan-out edges, refcount
        inconsistencies, rootless terminal edges, and SLO/shed-policy
        conflicts all surface as diagnostics.
        """
        from ..analysis import check_server

        return check_server(self)

    def _find_shared(self, plan: PlanNode) -> _Registration | None:
        for registration in self._registrations.values():
            if (
                registration.plan.fingerprint == plan.fingerprint
                and registration.plan == plan
            ):
                return registration
        return None

    def _common_timestamp_policy(self, tree: q.QueryNode) -> str:
        policies = {
            self.catalog.get(n.stream_id).metadata.timestamp_policy
            for n in q.walk(tree)
            if isinstance(n, q.StreamRef)
        }
        return policies.pop() if len(policies) == 1 else "sector"  # default

    def _route(self, reg_id: int, boxes: dict[str, BoundingBox | None]) -> None:
        for stream_id, box in boxes.items():
            if box is None:
                self._always.setdefault(stream_id, set()).add(reg_id)
                continue
            stream_crs = self.catalog.get(stream_id).crs
            if box.crs != stream_crs:
                try:
                    box = box.transformed(stream_crs)
                except RegionError:
                    self._always.setdefault(stream_id, set()).add(reg_id)
                    continue
            router = self._routers.get(stream_id)
            if router is None:
                router = self._index_factory()
                self._routers[stream_id] = router
            self._router_boxes.setdefault(stream_id, {})[reg_id] = box
            try:
                router.insert(reg_id, box)
            except GeoStreamsError:
                if self._recovery_ctx() is None:
                    raise
                # The rebuild replays every remembered box, including the
                # one whose insert just failed.
                self._router_fallback(stream_id)

    def _recovery_ctx(self) -> RecoveryContext | None:
        return self.recovery if self.recovery is not None else current_recovery()

    def _router_fallback(self, stream_id: str) -> RegionIndex:
        """Rebuild a failing router as a naive linear-scan index.

        Graceful degradation: a cascade-tree bug must cost routing
        *performance*, never routing *correctness* — the naive index
        answers the same overlap queries from the remembered rectangles.
        """
        router = NaiveRegionIndex()
        for reg_id, box in self._router_boxes.get(stream_id, {}).items():
            router.insert(reg_id, box)
        self._routers[stream_id] = router
        self.router_stats.fallbacks += 1
        if metrics_enabled():
            get_registry().counter(
                "repro_faults_router_fallbacks_total", stream=stream_id
            ).inc()
        return router

    def deregister(self, session_id: int) -> None:
        reg_id = self._session_to_reg.pop(session_id, None)
        if reg_id is None:
            raise ServerError(f"unknown session id {session_id}")
        registration = self._registrations[reg_id]
        session = next(
            s for s in registration.sessions if s.session_id == session_id
        )
        registration.fanout.sessions.remove(session)
        session.close()
        if registration.sessions:
            return  # other subscribers keep the shared network alive
        del self._registrations[reg_id]
        self._pending_swaps.pop(reg_id, None)
        # Refcounted teardown: only stages no surviving query subscribes
        # to are pruned from the shared DAG.
        self.plan_dag.remove_plan(reg_id, registration.stages)
        self._unroute(reg_id, registration.boxes)

    def _unroute(self, reg_id: int, boxes: dict[str, BoundingBox | None]) -> None:
        """Remove one registration's routing entries for ``boxes``."""
        for stream_id in boxes:
            router = self._routers.get(stream_id)
            if router is not None and reg_id in router:
                router.remove(reg_id)
            self._router_boxes.get(stream_id, {}).pop(reg_id, None)
            always = self._always.get(stream_id)
            if always is not None:
                always.discard(reg_id)

    def restore_session(self, checkpoint: SessionCheckpoint) -> ClientSession:
        """Re-register a dropped client's query and resume past its checkpoint.

        The replacement session replays the (deterministic) source scan but
        silently discards everything the checkpoint says was already
        delivered, so the reconnecting client sees each frame exactly once.
        """
        session = self.register(checkpoint.query_text, encode_png=checkpoint.encode_png)
        session.resume_from(checkpoint)
        return session

    # -- adaptive re-optimization (plan epochs & hot swap) -----------------------

    def enable_adaptive(self, policy: AdaptivePolicy | None = None) -> AdaptivePolicy:
        """Install the closed-loop re-planner for subsequent runs.

        With a policy installed, :meth:`run` feeds it one observation per
        scanned chunk per query (the SLO monitor's breach verdict); when
        the policy decides, the server queues a re-plan that hot-swaps in
        at the query's next frame boundary.
        """
        self.adaptive = policy if policy is not None else AdaptivePolicy()
        return self.adaptive

    def epoch_of(self, query: ClientSession | int) -> int:
        """Current plan epoch of a session/registration (0 if unknown)."""
        key = query.session_id if isinstance(query, ClientSession) else query
        rid = self._session_to_reg.get(key, key)
        return self.plan_dag.current_epoch(rid)

    def request_replan(
        self,
        query: ClientSession | int,
        *,
        reason: str = "replan",
        shed_pressure: float | None = None,
        force: bool = False,
    ) -> bool:
        """Queue a hot swap: re-optimize the query and stage the new plan.

        Re-planning always runs the optimizer, whatever the register-time
        ``optimize_queries`` setting was — the point of the new epoch is
        the reordered operator tree. The swap itself commits inside
        :meth:`run` at the next frame boundary of the registration's
        sources, so no frame ever straddles two epochs. Returns True when
        a swap was queued (the re-optimized plan differs from the running
        one, a shed-rate change was requested, or ``force``).
        """
        key = query.session_id if isinstance(query, ClientSession) else query
        rid = self._session_to_reg.get(key, key)
        reg = self._registrations.get(rid)
        if reg is None:
            raise ServerError(f"unknown query/session id {query!r}")
        tree = reg.tree if reg.tree is not None else reg.sessions[0].tree
        result = optimize(tree, self.catalog.crs_of())
        optimized = result.node
        policy = self._common_timestamp_policy(optimized)
        plan = canonicalize(
            optimized, crs_of=dict(self.catalog.crs_of()), default_policy=policy
        )
        if set(plan_source_ids(plan)) != set(reg.sources):
            raise ServerError(
                "re-planned query reads a different source set; a hot swap "
                "must keep the same streams"
            )
        if plan == reg.plan and shed_pressure is None and not force:
            return False
        self._pending_swaps[rid] = _PendingSwap(
            reg_id=rid,
            plan=plan,
            optimized=optimized,
            reason=reason,
            shed_pressure=shed_pressure,
        )
        return True

    def _commit_ready_swaps(
        self,
        at_boundary: dict[str, bool],
        ftracer: "FrameTracer | None",
        at_chunk: int,
    ) -> None:
        """Commit every pending swap whose sources sit at a frame boundary."""
        for rid in list(self._pending_swaps):
            reg = self._registrations.get(rid)
            if reg is None:
                del self._pending_swaps[rid]
                continue
            if all(at_boundary.get(sid, True) for sid in reg.sources):
                pending = self._pending_swaps.pop(rid)
                self._commit_swap(pending, ftracer, at_chunk)

    def _commit_swap(
        self,
        pending: _PendingSwap,
        ftracer: "FrameTracer | None",
        at_chunk: int,
    ) -> EpochSwapRecord | None:
        """Cut one registration over to its re-planned subplan.

        The caller guarantees the old subplan has drained to a frame
        boundary. Each session's delivery position is checkpointed and the
        session resumes *from its own checkpoint*: anything the new epoch
        might re-emit at or before the checkpointed stream time is
        suppressed, so the cutover can neither drop nor duplicate a frame.
        """
        reg = self._registrations.get(pending.reg_id)
        if reg is None:
            return None
        rid = pending.reg_id
        checkpoints = []
        for session in reg.sessions:
            ck = session.checkpoint()
            session.resume_from(ck)
            checkpoints.append(ck)
        result = self.plan_dag.swap_plan(
            rid, pending.plan, reg.fanout, reg.stages, reason=pending.reason
        )
        reg.plan = pending.plan
        reg.stages = list(result.stages)
        reg.optimized = pending.optimized
        new_boxes = source_prune_boxes(pending.optimized)
        if new_boxes != reg.boxes:
            self._unroute(rid, reg.boxes)
            reg.boxes = new_boxes
            self._route(rid, new_boxes)
        for session in reg.sessions:
            session.bind_epoch(result.new_epoch)
        shedder = self.ingest_shedder
        if (
            pending.shed_pressure is not None
            and shedder is not None
            and hasattr(shedder, "set_managed")
        ):
            # The re-planner owns the shed rate from here on: pressure
            # restarts at the value the new epoch's cost supports and the
            # reflexive stall/SLO valves become no-ops.
            shedder.set_managed(pending.shed_pressure)
        if ftracer is not None:
            ftracer.on_epoch_swap(rid, result.old_epoch, result.new_epoch)
        record = EpochSwapRecord(
            reg_id=rid,
            result=result,
            checkpoints=tuple(checkpoints),
            reason=pending.reason,
            at_chunk=at_chunk,
        )
        self.swap_log.append(record)
        return record

    def _observe_adaptive(self, monitor: SLOMonitor | None) -> None:
        """One chunk's worth of adaptive-policy observations (cheap)."""
        policy = self.adaptive
        if policy is None or monitor is None:
            return
        for rid in list(self._registrations):
            decision = policy.observe(rid, breached=monitor.is_breached(rid))
            if decision is not None:
                self.request_replan(
                    rid,
                    reason=decision.reason,
                    shed_pressure=decision.shed_pressure,
                )

    def observe_adaptive_costs(
        self, collector: StatsCollector | None = None
    ) -> bool:
        """Feed observed stage costs to the adaptive policy.

        The cost-divergence trigger prices this run's observed stage
        statistics against the policy's calibration profile; call at any
        coarse cadence (end of run, frame boundaries). Returns True when a
        re-plan was queued.
        """
        policy = self.adaptive
        if policy is None or policy.calibration is None:
            return False
        samples = self.calibration_samples(collector)
        queued = False
        for rid in list(self._registrations):
            decision = policy.observe_costs(rid, samples)
            if decision is not None:
                queued |= self.request_replan(
                    rid,
                    reason=decision.reason,
                    shed_pressure=decision.shed_pressure,
                )
        return queued

    # -- protocol front door ----------------------------------------------------------

    def handle_request(self, line: str) -> object:
        """Serve one request-line; returns a session, a listing, or None."""
        request: Request = parse_request(line)
        kind = request.kind
        if kind == "list-streams":
            return self.catalog.ids()
        if kind == "register-query":
            if "q" not in request.params:
                raise ServerError("register-query request missing 'q' parameter")
            fmt = request.params.get("format", "png")
            return self.register(request.params["q"], encode_png=(fmt == "png"))
        if kind == "deregister-query":
            self.deregister(request.session_id)
            return None
        raise ServerError(f"unhandled request kind {kind!r}")  # pragma: no cover

    # -- execution ------------------------------------------------------------------

    def active_sessions(self) -> list[ClientSession]:
        return [s for r in self._registrations.values() for s in r.sessions]

    @property
    def shared_network_count(self) -> int:
        """Distinct query plans (fan-outs) currently executing."""
        return len(self._registrations)

    @property
    def plan_stats(self) -> "PlanStats":
        """Sharing statistics of the server-wide plan DAG."""
        return self.plan_dag.stats

    def explain_dag(self) -> str:
        """Render the shared operator DAG (CLI ``--explain``)."""
        return self.plan_dag.render()

    # -- SLO monitoring ---------------------------------------------------------

    def _observe_slo(
        self,
        monitor: SLOMonitor,
        seen: dict[int, int],
        last_clock: dict[int, float],
        clock_now: float | None,
    ) -> None:
        """Update every query's lag picture after one scanned chunk.

        Breach edges drive the same shedding valve the stall detector
        uses: escalate on breach, relax once the monitor's hysteresis
        declares the query healthy again.
        """
        shedder = self.ingest_shedder
        for rid, reg in self._registrations.items():
            delivered = sum(len(s.frames) + len(s.records) for s in reg.sessions)
            clock_lag = None
            if clock_now is not None:
                if delivered > seen.get(rid, 0):
                    last_clock[rid] = clock_now
                seen[rid] = delivered
                clock_lag = clock_now - last_clock.get(rid, clock_now)
            watermarks = [
                s.watermark for s in reg.sessions if s.watermark > float("-inf")
            ]
            was_breached = monitor.is_breached(rid)
            monitor.observe(
                rid,
                watermark=max(watermarks) if watermarks else None,
                stream_t=self._now,
                clock_lag_s=clock_lag,
            )
            if shedder is None or not monitor.policy.escalate_shedding:
                continue
            now_breached = monitor.is_breached(rid)
            if now_breached and not was_breached and hasattr(shedder, "escalate"):
                shedder.escalate()
            elif was_breached and not now_breached and hasattr(shedder, "relax"):
                shedder.relax()

    # -- frame traces -----------------------------------------------------------

    def frame_trace(self, frame: DeliveredFrame) -> FrameTrace:
        """The end-to-end trace of one delivered frame.

        Requires a frame tracer to have been installed (see
        :func:`repro.obs.trace.enable_frame_tracing` or
        ``obs.observe(frame_trace=True)``) before the run, and the
        frame's chunks to have been sampled in.
        """
        trace = getattr(frame, "trace", None)
        if trace is None:
            raise ServerError(
                "frame carries no trace; run under an installed frame tracer "
                "(obs.observe(frame_trace=True) or enable_frame_tracing()) "
                "and a sample rate that admits its chunks"
            )
        return trace

    def recent_traces(self, query: ClientSession | int) -> list[FrameTrace]:
        """Flight-recorder ring for one query (newest-last).

        ``query`` may be a :class:`ClientSession`, a session id, or a
        registration id; sessions sharing a canonical plan share a ring.
        """
        ftracer = current_frame_tracer()
        if ftracer is None:
            raise ServerError(
                "no frame tracer installed; recent_traces needs "
                "obs.observe(frame_trace=True) or enable_frame_tracing()"
            )
        key = query.session_id if isinstance(query, ClientSession) else query
        rid = self._session_to_reg.get(key, key)
        if rid not in self._registrations:
            raise ServerError(f"unknown query/session id {query!r}")
        return ftracer.recorder.recent(rid)

    # -- EXPLAIN ANALYZE --------------------------------------------------------

    def _stage_own_work(
        self, profiles: "Mapping[str, StreamProfile]"
    ) -> dict[str, float | None]:
        """Per-frame estimated work of each stage's *own* operator.

        ``estimate_plan`` prices whole subplans; subtracting the direct
        children's totals isolates the stage itself, matching how
        observed statistics are kept (one ledger per physical stage).
        """
        totals: dict[str, float | None] = {}

        def total(node: PlanNode) -> float | None:
            fp = node.fingerprint
            if fp not in totals:
                try:
                    est, _ = estimate_plan(node, profiles)
                    totals[fp] = est.work
                except GeoStreamsError:
                    totals[fp] = None
            return totals[fp]

        own: dict[str, float | None] = {}
        for stage in self.plan_dag.order:
            node = stage.node
            whole = total(node)
            if whole is None:
                own[node.fingerprint] = None
                continue
            children = [total(c) for c in node.children]
            if any(c is None for c in children):
                own[node.fingerprint] = None
            else:
                own[node.fingerprint] = max(0.0, whole - sum(children))
        return own

    def _stage_frames(self, node: PlanNode, collector: StatsCollector) -> int:
        """Frames of input this stage's subplan saw during the run."""
        frames = [
            collector.frames_scanned.get(sid, 0) for sid in plan_source_ids(node)
        ]
        return max(frames) if frames else 0

    def calibration_samples(
        self, collector: StatsCollector | None = None
    ) -> list[CalibrationSample]:
        """(kind, estimated work units, observed wall seconds) per stage.

        Feed these to :meth:`CalibrationProfile.fit` to turn one observed
        run into per-operator-kind cost coefficients.
        """
        collector = collector if collector is not None else current_collector()
        if collector is None:
            raise ServerError(
                "calibration needs observed stage statistics; run under "
                "obs.observe(stats=True) first"
            )
        profiles = self.catalog.profiles()
        own = self._stage_own_work(profiles)
        samples: list[CalibrationSample] = []
        for stage in self.plan_dag.order:
            fp = stage.node.fingerprint
            st = collector.get(fp)
            work = own.get(fp)
            if st is None or work is None or work <= 0:
                continue
            frames = self._stage_frames(stage.node, collector)
            if frames <= 0:
                continue
            samples.append(
                CalibrationSample(
                    kind=kind_of(stage.node),
                    work_units=work * frames,
                    wall_s=st.wall_s,
                )
            )
        return samples

    def explain_analyze(
        self,
        collector: StatsCollector | None = None,
        calibration: "CalibrationProfile | None" = None,
        flag_ratio: float = 3.0,
    ) -> str:
        """Render the DAG annotated with observed vs estimated cost.

        ``collector`` defaults to the installed stats collector (an
        ``obs.observe(stats=True)`` run must precede this call).
        Estimates are priced in seconds through ``calibration`` (the
        uncalibrated seed profile when omitted); stages whose prediction
        is off by more than ``flag_ratio`` in either direction are
        flagged.
        """
        from ..query.calibration import CalibrationProfile

        collector = collector if collector is not None else current_collector()
        if collector is None:
            raise ServerError(
                "explain_analyze needs observed stage statistics; run under "
                "obs.observe(stats=True) first"
            )
        if calibration is None:
            calibration = CalibrationProfile.uncalibrated()
        if flag_ratio <= 1.0:
            raise ServerError("flag_ratio must be > 1")
        profiles = self.catalog.profiles()
        own = self._stage_own_work(profiles)

        def ms(v: float | None) -> str:
            return f"{v * 1e3:.3f} ms" if v is not None else "n/a"

        lines = [
            f"EXPLAIN ANALYZE — shared plan DAG: {self.plan_dag.stages_total} stages "
            f"({self.plan_dag.stages_shared} shared), "
            f"{len(self._registrations)} queries, "
            f"sources: {', '.join(self.plan_dag.source_ids) or '-'}"
        ]
        if calibration.kinds:
            # A fitted profile carries the operator-kind set it was fitted
            # over; pricing a DAG with a different mix means the profile
            # is stale for this plan — flag it rather than silently
            # falling back to the pooled coefficient.
            live = {kind_of(stage.node) for stage in self.plan_dag.order}
            unfitted, unused = calibration.stale_kinds(live)
            if unfitted or unused:
                parts = []
                if unfitted:
                    parts.append(f"unfitted kinds in plan: {', '.join(unfitted)}")
                if unused:
                    parts.append(f"fitted kinds absent: {', '.join(unused)}")
                lines.append(
                    "  ** stale calibration profile (fingerprint "
                    f"{calibration.kind_fingerprint}): {'; '.join(parts)} — "
                    "re-fit with --fit-calibration **"
                )
        for sid in self.plan_dag.source_ids:
            lines.append(
                f"  source {sid}: {collector.scans.get(sid, 0)} chunks, "
                f"{collector.frames_scanned.get(sid, 0)} frames scanned"
            )
        flagged = 0
        errors: list[float] = []
        for i, stage in enumerate(self.plan_dag.order):
            node = stage.node
            fp = node.fingerprint
            subs = ",".join(str(r) for r in sorted(stage.subscribers))
            lines.append(f"  s{i}: {node.describe()}  #{fp}  subscribers=[{subs}]")
            st = collector.get(fp)
            if st is None or st.calls == 0:
                lines.append("      observed: (stage never executed)")
                continue
            sel = st.selectivity
            sel_text = f" | selectivity {sel:.3f}" if sel is not None else ""
            lines.append(
                f"      observed: {st.chunks_in} -> {st.chunks_out} chunks | "
                f"{st.points_in} -> {st.points_out} rows | "
                f"{st.bytes_in} -> {st.bytes_out} bytes{sel_text}"
            )
            lines.append(
                f"                wall {ms(st.wall_s)} | per-chunk p50 {ms(st.p50)} "
                f"p95 {ms(st.p95)} p99 {ms(st.p99)}"
            )
            work = own.get(fp)
            frames = self._stage_frames(node, collector)
            if work is None or frames <= 0:
                lines.append("      estimated: n/a (no stream profile)")
                continue
            units = work * frames
            pred_s = calibration.seconds(kind_of(node), units)
            coef = calibration.coefficient(kind_of(node))
            lines.append(
                f"      estimated: {work:.0f} work units/frame x {frames} frames "
                f"= {units:.0f} units -> {ms(pred_s)} "
                f"(coef {coef:.3e} s/unit)"
            )
            if pred_s > 0 and st.wall_s > 0:
                ratio = max(pred_s / st.wall_s, st.wall_s / pred_s)
                errors.append(abs(pred_s - st.wall_s) / st.wall_s)
                flag = ratio > flag_ratio
                flagged += flag
                lines.append(
                    f"      est/obs ratio: {pred_s / st.wall_s:.2f}x"
                    + (f"  ** off by more than {flag_ratio:g}x **" if flag else "")
                )
        if errors:
            mean_err = sum(errors) / len(errors)
            lines.append(
                f"summary: mean relative cost-estimation error {mean_err:.2f} "
                f"across {len(errors)} stages; {flagged} stage(s) flagged "
                f"(> {flag_ratio:g}x off)"
            )
        return "\n".join(lines)

    def operator_reports(self) -> "list[OperatorReport]":
        """OperatorReports for every physical stage of the shared DAG.

        The push-network analogue of ``engine.pipeline_report``: call after
        ``run()`` to get the same per-operator cost table the pull path
        prints (and that ``obs.collect_run`` serializes). Shared stages
        appear once, however many queries subscribe to them.
        """
        from ..engine.stats import OperatorReport

        return [
            OperatorReport.from_operator(op) for op in self.plan_dag.operators()
        ]

    def _chunk_bbox(self, chunk: Chunk) -> BoundingBox | None:
        if isinstance(chunk, GridChunk):
            return chunk.lattice.bbox
        if chunk.n_points == 0:
            return None
        return BoundingBox.from_points(chunk.x, chunk.y, chunk.crs)

    def run(self, max_chunks: int | None = None, close: bool = True) -> RouterStats:
        """Scan all needed sources once, driving every registered query.

        Each chunk is offered only to the queries whose region rectangles
        intersect it (the shared restriction stage); the returned stats
        quantify the pruning.
        """
        needed = {
            sid for reg in self._registrations.values() for sid in reg.sources
        }
        sources = {sid: self.catalog.get(sid) for sid in sorted(needed)}
        consumers: dict[str, list[_Registration]] = {
            sid: [r for r in self._registrations.values() if sid in r.sources]
            for sid in sources
        }
        reg_ids = {id(r): rid for rid, r in self._registrations.items()}
        # Metric handles are fetched once per run; the per-chunk cost of
        # disabled observability is the single None check below.
        obs = None
        if metrics_enabled():
            registry = get_registry()
            registry.gauge("dsms_registered_networks").set(len(self._registrations))
            registry.gauge("dsms_active_sessions").set(len(self.active_sessions()))
            # Pre-register per-session instruments so sessions that never
            # deliver still export zero-valued gauges/histograms (lag
            # dashboards would otherwise show gaps for pruned queries).
            for session in self.active_sessions():
                session._obs_handles()
            registry.gauge("repro_plan_stages_total").set(self.plan_dag.stages_total)
            registry.gauge("repro_plan_stages_shared").set(self.plan_dag.stages_shared)
            for sid, router in self._routers.items():
                registry.gauge("dsms_router_regions", stream=sid).set(len(router))
            per_query = {
                rid: (
                    registry.counter("dsms_query_chunks_routed_total", query=rid),
                    registry.counter("dsms_query_chunks_pruned_total", query=rid),
                )
                for rid in self._registrations
            }
            obs = (
                registry.counter("dsms_chunks_scanned_total"),
                registry.counter("dsms_pairs_routed_total"),
                registry.counter("dsms_pairs_skipped_total"),
                registry.gauge("dsms_stream_clock_seconds"),
                per_query,
            )
        ctx = self._recovery_ctx()
        # Stage statistics / provenance are opt-in: one None check per run
        # plus one per chunk when a collector is installed.
        collector = current_collector()
        # Frame tracing follows the same rule: tracer fetched once per run;
        # with none installed the per-chunk cost is this one None check.
        ftracer = current_frame_tracer()
        # Timeline store and event journal: fetched once; per-chunk cost
        # with nothing installed is two None checks (the store additionally
        # rate-limits itself to its logical-clock cadence when present).
        store = current_metric_store()
        journal = current_journal()
        monitor = self.slo_monitor
        slo_seen: dict[int, int] = {}
        slo_clock: dict[int, float] = {}
        # Stall detection: the fault clock advances only when a source
        # sleeps, so a large jump between consecutive chunks is a stalled
        # downlink. Under sustained stall the ingest shedder escalates.
        clock_last = ctx.clock.now() if ctx is not None else 0.0
        if monitor is not None:
            for rid, reg in self._registrations.items():
                slo_seen[rid] = sum(
                    len(s.frames) + len(s.records) for s in reg.sessions
                )
                slo_clock[rid] = clock_last
        healthy_streak = 0
        escalated = False
        count = 0
        clock_now = clock_last
        # Frame-boundary tracking for epoch cutover: a pending swap commits
        # only once every source the registration reads sits between
        # frames, so the old subplan drains whole frames before it is
        # replaced (no frame ever straddles two epochs).
        at_boundary: dict[str, bool] = {sid: True for sid in sources}
        for stream_id, chunk in merge_sources(sources):
            if max_chunks is not None and count >= max_chunks:
                break
            if self._pending_swaps:
                # Commit before this chunk is processed: the boundary map
                # reflects the stream positions after the previous chunk.
                self._commit_ready_swaps(at_boundary, ftracer, count)
            count += 1
            if ctx is not None:
                clock_now = ctx.clock.now()
                if clock_now - clock_last >= ctx.stall_threshold_s:
                    ctx.note_stall()
                    healthy_streak = 0
                    if self.ingest_shedder is not None and hasattr(
                        self.ingest_shedder, "escalate"
                    ):
                        self.ingest_shedder.escalate()
                        escalated = True
                else:
                    healthy_streak += 1
                    if escalated and healthy_streak >= ctx.stall_relax_after:
                        self.ingest_shedder.relax()
                        escalated = False
                clock_last = clock_now
            if ftracer is not None:
                # Assign (or keep, for hardened catalogs that traced the
                # raw source) the chunk's trace context at admission.
                chunk = ftracer.admit(stream_id, chunk)
            at_boundary[stream_id] = (
                chunk.last_in_frame if isinstance(chunk, GridChunk) else True
            )
            if self.ingest_shedder is not None:
                kept = list(self.ingest_shedder.process(chunk))
                if not kept:
                    self.router_stats.chunks_shed += 1
                    if ftracer is not None and chunk.trace is not None:
                        ftracer.annotate(
                            chunk.trace, "shed:ingest-dropped", pin=True
                        )
                    # Shed chunks still advance the stream clock and the
                    # SLO picture: under sustained full shedding the
                    # watermark freezes while stream time advances — the
                    # exact breach the adaptive re-planner must observe.
                    self._now = chunk_time(chunk)
                    if journal is not None:
                        journal.set_time(self._now)
                    if store is not None:
                        store.maybe_sample(self._now)
                    if monitor is not None:
                        self._observe_slo(
                            monitor,
                            slo_seen,
                            slo_clock,
                            clock_now if ctx is not None else None,
                        )
                        self._observe_adaptive(monitor)
                    continue
                (chunk,) = kept
            self.router_stats.chunks_scanned += 1
            self._now = chunk_time(chunk)
            if journal is not None:
                journal.set_time(self._now)
            if store is not None:
                store.maybe_sample(self._now)
            if collector is not None:
                ordinal = collector.note_scan(
                    stream_id,
                    chunk.last_in_frame if isinstance(chunk, GridChunk) else True,
                )
                if collector.provenance:
                    chunk = dc_replace(
                        chunk, provenance=Provenance.scan(stream_id, ordinal)
                    )
            router = self._routers.get(stream_id)
            always = self._always.get(stream_id, set())
            matched: set[int] = set(always)
            if router is not None:
                bbox = self._chunk_bbox(chunk)
                if bbox is not None:
                    try:
                        matched.update(router.overlapping(bbox))
                    except GeoStreamsError:
                        if ctx is None:
                            raise
                        router = self._router_fallback(stream_id)
                        matched.update(router.overlapping(bbox))
            routed = skipped = 0
            for registration in consumers[stream_id]:
                rid = reg_ids[id(registration)]
                if rid in matched:
                    routed += 1
                else:
                    skipped += 1
                if obs is not None:
                    obs[4][rid][0 if rid in matched else 1].inc()
            if routed:
                # One pass through the shared DAG serves every matched
                # query; stages with several active subscribers run once.
                try:
                    self.plan_dag.feed(stream_id, chunk, active=matched)
                except GeoStreamsError as exc:
                    if ctx is None:
                        raise
                    ctx.quarantine(
                        chunk, reason="network-error",
                        stage=f"network:{stream_id}", error=exc,
                    )
            if monitor is not None:
                self._observe_slo(
                    monitor,
                    slo_seen,
                    slo_clock,
                    clock_now if ctx is not None else None,
                )
                self._observe_adaptive(monitor)
            self.router_stats.pairs_routed += routed
            self.router_stats.pairs_skipped += skipped
            if obs is not None:
                scanned_c, routed_c, skipped_c, clock_g = obs[:4]
                scanned_c.inc()
                routed_c.inc(routed)
                skipped_c.inc(skipped)
                clock_g.set(self._now)
        if close:
            self.plan_dag.flush()
            for registration in self._registrations.values():
                for session in registration.sessions:
                    session.close()
            if ftracer is not None:
                # Capture pinned traces that never reached delivery
                # (dropped / quarantined frames) as partial captures.
                ftracer.flush_pinned()
            if store is not None:
                # One forced end-of-run tick so the rings include the
                # final post-flush state of every instrument.
                store.sample(self._now)
        if obs is not None:
            registry = get_registry()
            stats = self.plan_dag.stats
            registry.gauge("repro_plan_chunks_saved").set(stats.chunks_saved)
            registry.gauge("repro_plan_subplan_cache_hits").set(stats.subplan_hits)
            registry.gauge("repro_plan_stage_executions").set(stats.stage_executions)
        return self.router_stats
