"""HTTP-style request protocol (Section 4).

"User queries, which are converted by the interface to specialized HTTP
requests, are transmitted to the server, parsed, and registered." The
protocol here is that specialized request format:

* ``GET /streams`` — list the catalog.
* ``GET /query?q=<urlencoded query text>&format=png|raw`` — register a
  continuous query.
* ``DELETE /query/<id>`` — deregister.

Only the request line is modeled (headers carry nothing we need); the
DSMS object is the in-process server behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qs, quote, urlsplit

from ..errors import ProtocolError

__all__ = ["Request", "parse_request", "format_query_request"]

_METHODS = ("GET", "DELETE")


@dataclass(frozen=True)
class Request:
    """A parsed client request."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        if self.method == "GET" and self.path == "/streams":
            return "list-streams"
        if self.method == "GET" and self.path == "/query":
            return "register-query"
        if self.method == "DELETE" and self.path.startswith("/query/"):
            return "deregister-query"
        raise ProtocolError(f"unsupported request {self.method} {self.path}")

    @property
    def session_id(self) -> int:
        if not self.path.startswith("/query/"):
            raise ProtocolError(f"request path {self.path!r} carries no session id")
        try:
            return int(self.path[len("/query/") :])
        except ValueError:
            raise ProtocolError(f"bad session id in {self.path!r}") from None


def parse_request(line: str) -> Request:
    """Parse a request line like ``GET /query?q=... HTTP/1.1``."""
    parts = line.strip().split()
    if len(parts) == 3 and parts[2].startswith("HTTP/"):
        parts = parts[:2]
    if len(parts) != 2:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target = parts
    method = method.upper()
    if method not in _METHODS:
        raise ProtocolError(f"unsupported method {method!r}")
    split = urlsplit(target)
    params: dict[str, str] = {}
    for key, values in parse_qs(split.query, keep_blank_values=True).items():
        if len(values) != 1:
            raise ProtocolError(f"repeated query parameter {key!r}")
        params[key] = values[0]
    return Request(method=method, path=split.path, params=params)


def format_query_request(query_text: str, fmt: str = "png") -> str:
    """Build the request line a web client would send for a query."""
    return f"GET /query?q={quote(query_text)}&format={fmt} HTTP/1.1"
