"""Stream catalog: the source streams the DSMS serves.

Registers each source GeoStream together with its known frame extent (the
scan-sector geometry a ground station has out-of-band), which the query
planner's cost model and the router need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from ..core.stream import GeoStream
from ..errors import ServerError
from ..geo.crs import CRS
from ..geo.region import BoundingBox
from ..query.cost import StreamProfile

if TYPE_CHECKING:
    from pathlib import Path

    from ..ingest.instrument import Instrument

__all__ = ["StreamCatalog"]


class StreamCatalog:
    """Named source streams plus their frame-extent metadata."""

    def __init__(self) -> None:
        self._streams: dict[str, GeoStream] = {}
        self._extents: dict[str, BoundingBox] = {}

    def register(self, stream: GeoStream, frame_bbox: BoundingBox) -> None:
        sid = stream.stream_id
        if sid in self._streams:
            raise ServerError(f"stream {sid!r} already registered")
        stream.crs.require_same(frame_bbox.crs, "catalog registration")
        self._streams[sid] = stream
        self._extents[sid] = frame_bbox

    def register_imager(self, imager: "Instrument") -> None:
        """Register every band stream of a GOES-like imager."""
        bbox = imager.sector_lattice.bbox
        for stream in imager.streams().values():
            self.register(stream, bbox)

    def register_archive(self, path: "str | Path") -> GeoStream:
        """Register a ``.gsar`` archive (see :mod:`repro.io.archive`).

        The frame extent is reconstructed from the first archived chunk's
        scan-sector metadata (or its own lattice for whole-frame chunks).
        """
        from ..io.archive import read_archive

        stream = read_archive(path)
        first = next(iter(stream.chunks()), None)
        if first is None:
            raise ServerError(f"archive {path} contains no chunks")
        if hasattr(first, "lattice"):
            lattice = first.frame.lattice if getattr(first, "frame", None) else first.lattice
            bbox = lattice.bbox
        else:  # point archive: use the point extent
            bbox = BoundingBox.from_points(first.x, first.y, first.crs)
        self.register(stream, bbox)
        return stream

    # -- lookups -----------------------------------------------------------

    def get(self, stream_id: str) -> GeoStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise ServerError(
                f"unknown stream {stream_id!r}; registered: {sorted(self._streams)}"
            ) from None

    def extent(self, stream_id: str) -> BoundingBox:
        self.get(stream_id)
        return self._extents[stream_id]

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._streams

    def __len__(self) -> int:
        return len(self._streams)

    def ids(self) -> list[str]:
        return sorted(self._streams)

    def items(self) -> Iterator[tuple[str, GeoStream]]:
        return iter(self._streams.items())

    def crs_of(self) -> Mapping[str, CRS]:
        return {sid: s.crs for sid, s in self._streams.items()}

    def profiles(self) -> dict[str, StreamProfile]:
        return {
            sid: StreamProfile.from_metadata(s.metadata, self._extents[sid])
            for sid, s in self._streams.items()
            if s.metadata.max_frame_shape is not None
        }
