"""Stdlib HTTP telemetry endpoint and the ``repro top`` console renderer.

:class:`TelemetryServer` wraps a :class:`~http.server.ThreadingHTTPServer`
in a daemon thread and serves the operational state of one
:class:`~repro.server.dsms.DSMSServer`:

========================  ====================================================
``/``                     endpoint index (JSON)
``/metrics``              Prometheus text exposition of the live registry
``/health``               :class:`~repro.obs.timeline.HealthModel` report
``/timeseries``           :class:`~repro.obs.timeline.MetricStore` rings +
                          windowed rollups (``?name=``, ``?window=``)
``/events``               :class:`~repro.obs.timeline.EventJournal` entries
                          (``?kind=``, ``?query=``, ``?since=``, ``?limit=``)
``/traces/<id>``          one flight-recorder capture by trace id
========================  ====================================================

The payload builders (:func:`health_payload`, :func:`timeseries_payload`,
:func:`events_payload`, :func:`trace_payload`) are plain functions over
the live objects, shared by the HTTP handler and the CLI's in-process
mode, so both paths serialize identically and the JSON round-trip tests
cover them once.

:func:`render_top` turns the ``/health`` + ``/timeseries`` + ``/events``
payloads into the ``repro top`` ANSI dashboard — a pure function of the
JSON documents, so the console renders the same against an in-process
server or a remote HTTP endpoint (:func:`fetch_json`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional
from urllib.parse import parse_qs, urlsplit
from urllib.request import urlopen

from ..obs.export import register_build_info, to_prometheus
from ..obs.timeline import (
    EventJournal,
    HealthModel,
    MetricStore,
    current_journal,
    current_metric_store,
)
from ..obs.trace import current_frame_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.trace import FlightRecorder
    from .dsms import DSMSServer

__all__ = [
    "TelemetryServer",
    "health_payload",
    "timeseries_payload",
    "events_payload",
    "trace_payload",
    "sparkline",
    "render_top",
    "fetch_json",
]


# -- payload builders ---------------------------------------------------------


def _current_recorder() -> "FlightRecorder | None":
    ftracer = current_frame_tracer()
    return ftracer.recorder if ftracer is not None else None


def health_payload(
    server: "DSMSServer",
    store: MetricStore | None = None,
    journal: EventJournal | None = None,
    model: HealthModel | None = None,
) -> dict:
    if model is None:
        model = HealthModel()
    return model.assess(server, store=store, journal=journal).to_dict()


def timeseries_payload(
    store: MetricStore | None,
    name: str | None = None,
    window: int = 20,
) -> dict:
    if store is None:
        return {"capacity": 0, "cadence_s": 0.0, "samples_taken": 0,
                "last_t": None, "series": []}
    payload = store.to_dict(window=window)
    if name is not None:
        payload["series"] = [s for s in payload["series"] if s["name"] == name]
    return payload


def events_payload(
    journal: EventJournal | None,
    kind: str | None = None,
    query: int | None = None,
    since_seq: int = 0,
    limit: int | None = None,
) -> dict:
    if journal is None:
        return {"capacity": 0, "total": 0, "events": []}
    events = journal.events(kind=kind, query=query, since_seq=since_seq)
    if limit is not None and limit >= 0:
        events = events[-limit:]
    return {
        "capacity": journal.capacity,
        "total": journal.total,
        "events": [e.to_dict() for e in events],
    }


def trace_payload(
    recorder: "FlightRecorder | None", trace_id: int
) -> dict | None:
    """One capture by trace id — pinned captures first, then the rings."""
    if recorder is None:
        return None
    candidates = list(recorder.pinned)
    for query in recorder.queries():
        candidates.extend(recorder.recent(query))
    for trace in candidates:
        if trace.trace_id == trace_id or trace_id in trace.trace_ids:
            return trace.to_dict()
    return None


# -- the HTTP server ----------------------------------------------------------


class TelemetryServer:
    """Daemon-threaded telemetry endpoint for one DSMS server.

    The handler reads whatever store/journal/recorder are installed *at
    request time*, so starting the endpoint before ``run()`` works and a
    post-run server keeps answering with the final state. Use as a
    context manager or call :meth:`close`.
    """

    def __init__(
        self, server: "DSMSServer", host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.dsms = server
        self.model = HealthModel()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: object) -> None:
                pass  # telemetry must not spam the operator's terminal

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    outer._route(self)
                except BrokenPipeError:  # client went away mid-reply
                    pass
                except Exception as exc:  # pragma: no cover - defensive
                    try:
                        outer._send_json(
                            self, {"error": f"{type(exc).__name__}: {exc}"}, 500
                        )
                    except Exception:
                        pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-telemetry", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- routing ------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        split = urlsplit(handler.path)
        path = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)

        def arg(name: str) -> str | None:
            values = params.get(name)
            return values[-1] if values else None

        def int_arg(name: str, default: int | None = None) -> int | None:
            raw = arg(name)
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError:
                return default

        store = current_metric_store()
        journal = current_journal()
        if path == "/":
            self._send_json(
                handler,
                {
                    "service": "repro.telemetry",
                    "endpoints": [
                        "/metrics",
                        "/health",
                        "/timeseries",
                        "/events",
                        "/traces/<id>",
                    ],
                },
            )
        elif path == "/metrics":
            # Re-stamp the build gauge on every scrape: get-or-create
            # semantics make this idempotent, and a registry reset
            # between scrapes (a new observed run) gets it back.
            register_build_info(columnar=self.dsms.plan_dag.columnar)
            self._send_text(handler, to_prometheus())
        elif path == "/health":
            self._send_json(
                handler,
                health_payload(self.dsms, store=store, journal=journal, model=self.model),
            )
        elif path == "/timeseries":
            self._send_json(
                handler,
                timeseries_payload(
                    store, name=arg("name"), window=int_arg("window", 20) or 20
                ),
            )
        elif path == "/events":
            self._send_json(
                handler,
                events_payload(
                    journal,
                    kind=arg("kind"),
                    query=int_arg("query"),
                    since_seq=int_arg("since", 0) or 0,
                    limit=int_arg("limit"),
                ),
            )
        elif path.startswith("/traces/"):
            try:
                trace_id = int(path.rsplit("/", 1)[1])
            except ValueError:
                self._send_json(handler, {"error": "trace id must be an integer"}, 400)
                return
            payload = trace_payload(_current_recorder(), trace_id)
            if payload is None:
                self._send_json(handler, {"error": f"no capture for trace {trace_id}"}, 404)
            else:
                self._send_json(handler, payload)
        else:
            self._send_json(handler, {"error": f"unknown endpoint {path}"}, 404)

    @staticmethod
    def _send_json(handler: BaseHTTPRequestHandler, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json; charset=utf-8")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    @staticmethod
    def _send_text(handler: BaseHTTPRequestHandler, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        handler.send_response(status)
        handler.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET one telemetry endpoint and decode the JSON document."""
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - operator URL
        return json.loads(response.read().decode("utf-8"))


# -- the `repro top` renderer -------------------------------------------------

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

_VERDICT_COLOR = {"healthy": "\x1b[32m", "degraded": "\x1b[33m", "unhealthy": "\x1b[31m"}
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"


def sparkline(values: "list[float]", width: int = 24) -> str:
    """Render a value series as a fixed-width unicode sparkline."""
    if not values:
        return " " * width
    values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    out = []
    for v in values:
        idx = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out).rjust(width)


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _lag_points(timeseries: dict, query: int) -> "list[float]":
    for series in timeseries.get("series", ()):
        if series["name"] == "repro_slo_lag_seconds" and series["labels"] == {
            "query": str(query)
        }:
            return [v for _, v in series["points"]]
    return []


def render_top(
    health: dict,
    timeseries: dict,
    events: "list[dict]",
    width: int = 80,
    color: bool = True,
    source: str = "",
) -> str:
    """The ``repro top`` dashboard, rendered from the JSON payloads.

    Header: server verdict + global gauges. Body: one row per query with
    its verdict, current delivery lag, and a lag sparkline from the time
    series store. Footer: the journal tail, newest last.
    """
    lines: list[str] = []
    verdict = health.get("verdict", "healthy")
    vcolor = _VERDICT_COLOR.get(verdict, "")
    title = "repro top"
    if source:
        title += f" — {source}"
    lines.append(_paint(title.ljust(width - 12), _BOLD, color) + _paint(verdict.rjust(11), vcolor, color))
    lines.append(
        f"stream-t {health.get('at', 0.0):g}s   "
        f"dead-letters {health.get('dead_letters', 0)}   "
        f"shed-pressure {health.get('shed_pressure', 1.0):g}   "
        f"recent-swaps {health.get('recent_swaps', 0)}"
    )
    for reason in health.get("reasons", ()):
        lines.append(_paint(f"  ! {reason}", vcolor, color))
    lines.append("-" * width)
    lines.append(f"{'query':>6} {'verdict':>10} {'epoch':>5} {'lag':>9}  {'lag trend':>24}")
    for q in health.get("queries", ()):
        lag = q.get("lag_s")
        lag_text = f"{lag:7.1f}s" if lag is not None else "      --"
        spark = sparkline(_lag_points(timeseries, q["query"]))
        qcolor = _VERDICT_COLOR.get(q["verdict"], "")
        lines.append(
            f"{'q' + str(q['query']):>6} "
            + _paint(f"{q['verdict']:>10}", qcolor, color)
            + f" {q.get('epoch', 0):>5}"
            + f" {lag_text:>9}  {spark}"
        )
        for reason in q.get("reasons", ()):
            lines.append(_paint(f"        · {reason}", _DIM, color))
    lines.append("-" * width)
    lines.append(_paint("recent events (newest last):", _BOLD, color))
    if not events:
        lines.append(_paint("  (journal empty)", _DIM, color))
    for event in events:
        what = event["kind"]
        where = f" q{event['query']}" if event.get("query") is not None else ""
        epoch = f" e{event['epoch']}" if event.get("epoch") is not None else ""
        reason = f"  {event['reason']}" if event.get("reason") else ""
        lines.append(
            f"  #{event['seq']:<5} t={event['t']:<12g}{what}{where}{epoch}{reason}"[:width]
        )
    return "\n".join(lines)
