"""DSMS server (Fig. 3): catalog, protocol, push compiler, sessions, router."""

from .catalog import StreamCatalog
from .compiler import PushNetwork, compile_push_network
from .dsms import DSMSServer, RouterStats, source_prune_boxes
from .protocol import Request, format_query_request, parse_request
from .session import AggregateRecord, ClientSession, SessionCheckpoint
from .telemetry import TelemetryServer, fetch_json, render_top, sparkline

__all__ = [
    "SessionCheckpoint",
    "TelemetryServer",
    "fetch_json",
    "render_top",
    "sparkline",
    "StreamCatalog",
    "PushNetwork",
    "compile_push_network",
    "DSMSServer",
    "RouterStats",
    "source_prune_boxes",
    "Request",
    "parse_request",
    "format_query_request",
    "ClientSession",
    "AggregateRecord",
]
