"""Push-network compilation of query trees.

Pull-style execution (``plan_query``) has every registered query re-read
its source streams — N queries means N scans of the downlink, which a
stream system cannot afford. The DSMS therefore compiles each query into
a *push network* fed chunk-by-chunk from the shared source scan, with
results pushed into the client's sink. This is the execution side of
Fig. 3.

The compiler is a thin lowering over the plan IR: the tree is
canonicalized (``repro.plan.canonicalize``) and wired into a
:class:`repro.plan.PlanDAG`. ``PushNetwork`` keeps the historical
single-query interface; the DSMS itself builds one server-wide DAG so
different queries share common subplans.
"""

from __future__ import annotations

from typing import Callable

from ..core.chunk import Chunk
from ..operators.base import BinaryOperator, Operator
from ..plan import PlanDAG, canonicalize
from ..query import ast as q

__all__ = ["PushNetwork", "compile_push_network"]

_Sink = Callable[[Chunk], None]


class PushNetwork:
    """A compiled query: feed source chunks in, results push to the sink."""

    def __init__(self, dag: PlanDAG) -> None:
        self._dag = dag

    @property
    def source_ids(self) -> list[str]:
        return self._dag.source_ids

    @property
    def inputs(self) -> dict[str, list]:
        """stream_id -> edges fed by that source (kept for introspection)."""
        return self._dag.taps

    @property
    def operators(self) -> list[Operator | BinaryOperator]:
        return self._dag.operators()

    def feed(self, stream_id: str, chunk: Chunk) -> None:
        """Push one source chunk into every place the query consumes it."""
        self._dag.feed(stream_id, chunk)

    def flush(self) -> None:
        """End of input: drain every operator, sources-first."""
        self._dag.flush()

    def reset(self) -> None:
        self._dag.reset()


def compile_push_network(
    node: q.QueryNode,
    sink: _Sink,
    timestamp_policy: str = "sector",
    source_crs: "dict | None" = None,
    columnar: "bool | None" = None,
) -> PushNetwork:
    """Compile a query tree into a push network ending at ``sink``.

    ``source_crs`` (stream_id -> CRS) enables the same safety net the pull
    planner applies: a spatial restriction whose region CRS differs from
    its input stream's CRS gets the region transformed at compile time,
    so unrewritten queries behave identically on both execution paths.
    ``columnar`` selects the operators' execution mode (None: the
    ``REPRO_COLUMNAR`` process default).
    """
    plan = canonicalize(node, crs_of=source_crs, default_policy=timestamp_policy)
    dag = PlanDAG(columnar=columnar)
    dag.add_plan(plan, sink, root_id=0)
    return PushNetwork(dag)
