"""Push-network compilation of query trees.

Pull-style execution (``plan_query``) has every registered query re-read
its source streams — N queries means N scans of the downlink, which a
stream system cannot afford. The DSMS therefore compiles each query into
a *push network*: a DAG of operator stages fed chunk-by-chunk from the
shared source scan, with results pushed into the client's sink. This is
the execution side of Fig. 3.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from ..core.chunk import Chunk
from ..engine.pipeline import chunk_time
from ..errors import PlanError
from ..faults.recovery import current_recovery
from ..obs.tracing import Span, Tracer, current_tracer
from ..operators.aggregate import RegionAggregate as RegionAggregateOp
from ..operators.aggregate import TemporalAggregate as TemporalAggregateOp
from ..operators.base import BinaryOperator, Operator
from ..operators.reprojection import Reproject as ReprojectOp
from ..operators.restriction import (
    SpatialRestriction,
    TemporalRestriction,
    ValueRestriction,
)
from ..operators.spatial_transform import Coarsen as CoarsenOp
from ..operators.spatial_transform import Magnify as MagnifyOp
from ..operators.spatial_transform import Rotate as RotateOp
from ..operators.value_transform import FrameStretch
from ..query import ast as q
from ..query.planner import _composition_operator, build_value_map

__all__ = ["PushNetwork", "compile_push_network"]

_Sink = Callable[[Chunk], None]


class _Stage:
    """One operator wired to its downstream sink."""

    __slots__ = ("op", "side", "downstream", "_span", "_tracer")

    def __init__(
        self,
        op: Operator | BinaryOperator,
        downstream: _Sink,
        side: str | None = None,
    ) -> None:
        self.op = op
        self.side = side
        self.downstream = downstream
        self._span: Span | None = None
        self._tracer: Tracer | None = None

    def _ensure_span(self, tracer: Tracer) -> Span:
        """Lazily open this stage's span, parented on its consumer stage.

        In a push network data flows stage -> downstream sink, so the span
        tree mirrors the *query tree*: the operator nearest the client sink
        is the root and its producers hang below it.
        """
        if self._span is None or self._tracer is not tracer:
            downstream_stage = getattr(self.downstream, "__self__", None)
            parent = (
                downstream_stage._ensure_span(tracer)
                if isinstance(downstream_stage, _Stage)
                else None
            )
            attrs = {"path": "push"} if self.side is None else {
                "path": "push", "side": self.side,
            }
            self._span = tracer.begin_operator(self.op, parent=parent, **attrs)
            self._tracer = tracer
        return self._span

    def _step(self, chunk: Chunk) -> "list[Chunk]":
        """One operator step; quarantines poison chunks under recovery."""
        ctx = current_recovery()
        if ctx is not None:
            return ctx.guard(self.op, chunk, self.side)
        return list(
            self.op.process_side(self.side, chunk)
            if self.side is not None
            else self.op.process(chunk)
        )

    def feed(self, chunk: Chunk) -> None:
        tracer = current_tracer()
        if tracer is None:
            for out in self._step(chunk):
                self.downstream(out)
            return
        span = self._ensure_span(tracer)
        t0 = perf_counter()
        materialized = self._step(chunk)
        dt = perf_counter() - t0
        span.record(
            points_in=chunk.n_points,
            points_out=sum(c.n_points for c in materialized),
            chunks_out=len(materialized),
            wall_s=dt,
            stream_t=chunk_time(chunk),
        )
        tracer.observe_operator(self.op.name, dt)
        for out in materialized:
            self.downstream(out)

    def _drain(self) -> "list[Chunk]":
        ctx = current_recovery()
        if ctx is not None:
            return ctx.guard_flush(self.op)
        return list(self.op.flush())

    def flush(self) -> None:
        tracer = current_tracer()
        if tracer is None:
            for out in self._drain():
                self.downstream(out)
            return
        span = self._ensure_span(tracer)
        t0 = perf_counter()
        materialized = self._drain()
        span.record(
            points_in=0,
            points_out=sum(c.n_points for c in materialized),
            chunks_out=len(materialized),
            wall_s=perf_counter() - t0,
            chunks_in=0,
        )
        span.finish()
        for out in materialized:
            self.downstream(out)


class PushNetwork:
    """A compiled query: feed source chunks in, results push to the sink."""

    def __init__(
        self,
        inputs: dict[str, list[_Sink]],
        flush_order: list[_Stage | Operator],
        operators: list[Operator | BinaryOperator],
    ) -> None:
        self.inputs = inputs
        self._flush_order = flush_order
        self.operators = operators
        self._flushed = False

    @property
    def source_ids(self) -> list[str]:
        return sorted(self.inputs)

    def feed(self, stream_id: str, chunk: Chunk) -> None:
        """Push one source chunk into every place the query consumes it."""
        if self._flushed:
            raise PlanError("push network already flushed")
        for sink in self.inputs.get(stream_id, ()):
            sink(chunk)

    def flush(self) -> None:
        """End of input: drain every operator, sources-first."""
        if self._flushed:
            return
        self._flushed = True
        for stage in self._flush_order:
            stage.flush()

    def reset(self) -> None:
        for op in self.operators:
            op.reset()
        self._flushed = False


def _build_operator(node: q.QueryNode) -> Operator:
    """Operator instance for a unary AST node (mirrors the pull planner)."""
    if isinstance(node, q.SpatialRestrict):
        return SpatialRestriction(node.region)
    if isinstance(node, q.TemporalRestrict):
        return TemporalRestriction(node.timeset, on_sector=node.on_sector)
    if isinstance(node, q.ValueRestrict):
        return ValueRestriction(lo=node.lo, hi=node.hi)
    if isinstance(node, q.ValueMap):
        return build_value_map(node)
    if isinstance(node, q.Stretch):
        return FrameStretch(node.kind)
    if isinstance(node, q.Magnify):
        return MagnifyOp(node.k)
    if isinstance(node, q.Coarsen):
        return CoarsenOp(node.k)
    if isinstance(node, q.Rotate):
        return RotateOp(node.angle_deg)
    if isinstance(node, q.Reproject):
        return ReprojectOp(node.dst_crs, method=node.method)
    if isinstance(node, q.TemporalAgg):
        return TemporalAggregateOp(node.window, node.func, node.mode)
    if isinstance(node, q.RegionAgg):
        return RegionAggregateOp(dict(node.regions), node.func)
    raise PlanError(f"push compiler does not know node type {type(node).__name__}")


def compile_push_network(
    node: q.QueryNode,
    sink: _Sink,
    timestamp_policy: str = "sector",
    source_crs: "dict | None" = None,
) -> PushNetwork:
    """Compile a query tree into a push network ending at ``sink``.

    ``source_crs`` (stream_id -> CRS) enables the same safety net the pull
    planner applies: a spatial restriction whose region CRS differs from
    its input stream's CRS gets the region transformed at compile time,
    so unrewritten queries behave identically on both execution paths.
    """
    inputs: dict[str, list[_Sink]] = {}
    flush_order: list[_Stage] = []
    operators: list[Operator | BinaryOperator] = []

    def node_crs(n: q.QueryNode):
        if isinstance(n, q.StreamRef):
            return (source_crs or {}).get(n.stream_id)
        if isinstance(n, q.Reproject):
            return n.dst_crs
        if isinstance(n, q.Compose):
            return node_crs(n.left)
        if n.children:
            return node_crs(n.children[0])
        return None

    def compile_node(n: q.QueryNode, downstream: _Sink) -> None:
        # Stages are appended child-first so flushing drains upstream
        # operators before the ones they feed.
        if isinstance(n, q.StreamRef):
            inputs.setdefault(n.stream_id, []).append(downstream)
            return
        if isinstance(n, q.Empty):
            return  # never produces or consumes anything
        if isinstance(n, q.Compose):
            op = _composition_operator(n.gamma, timestamp_policy)
            operators.append(op)
            stage_left = _Stage(op, downstream, side="left")
            stage_right = _Stage(op, downstream, side="right")
            compile_node(n.left, stage_left.feed)
            compile_node(n.right, stage_right.feed)
            flush_order.append(stage_left)  # binary op flushes once
            return
        if isinstance(n, q.SpatialRestrict) and source_crs:
            child_crs = node_crs(n.children[0])
            region = n.region
            if child_crs is not None and region.crs != child_crs:
                region = region.transformed(child_crs)
            op: Operator = SpatialRestriction(region)
        else:
            op = _build_operator(n)
        operators.append(op)
        stage = _Stage(op, downstream)
        compile_node(n.children[0], stage.feed)
        flush_order.append(stage)

    compile_node(node, sink)
    return PushNetwork(inputs, flush_order, operators)
