"""Airborne frame camera simulator (image-by-image organization, Fig. 1a).

"Airborne cameras typically obtain data in an image-by-image fashion ...
there are several consecutive frames that cover possibly different
spatial regions." Each emitted chunk is a complete frame whose lattice
slides along a flight path, so consecutive points are spatially close
*within* a frame but jump at frame boundaries — the proximity property
experiment F1 measures.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..core.chunk import GridChunk
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import GeoStream, Organization, StreamMetadata
from ..core.valueset import GRAY8
from ..errors import StreamError
from ..geo.crs import LATLON
from .instrument import Instrument
from .scene import SCENE_BANDS, SyntheticEarth

__all__ = ["AirborneCamera"]


class AirborneCamera(Instrument):
    """A frame camera flown along a straight path over the scene."""

    def __init__(
        self,
        scene: SyntheticEarth | None = None,
        start_lon: float = -122.5,
        start_lat: float = 38.0,
        heading_deg: float = 90.0,
        frame_spacing_deg: float = 0.05,
        n_frames: int = 6,
        frame_width: int = 64,
        frame_height: int = 48,
        resolution_deg: float = 0.002,
        frame_interval_s: float = 5.0,
        band: str = "vis",
        t0: float = 36_000.0,  # mid-morning so the visible band is lit
    ) -> None:
        super().__init__(scene or SyntheticEarth())
        if band not in SCENE_BANDS:
            raise StreamError(f"unknown band {band!r}; scene provides {SCENE_BANDS}")
        if n_frames < 1 or frame_width < 1 or frame_height < 1:
            raise StreamError("camera needs at least one non-empty frame")
        self.start_lon = start_lon
        self.start_lat = start_lat
        self.heading = math.radians(heading_deg)
        self.frame_spacing = frame_spacing_deg
        self.n_frames = n_frames
        self.frame_width = frame_width
        self.frame_height = frame_height
        self.resolution = resolution_deg
        self.frame_interval = frame_interval_s
        self.band = band
        self.t0 = t0

    def frame_lattice(self, index: int) -> GridLattice:
        """Lattice of the ``index``-th frame, centered on the flight path."""
        center_lon = self.start_lon + math.sin(self.heading) * self.frame_spacing * index
        center_lat = self.start_lat + math.cos(self.heading) * self.frame_spacing * index
        return GridLattice(
            crs=LATLON,
            x0=center_lon - self.resolution * (self.frame_width - 1) / 2.0,
            y0=center_lat + self.resolution * (self.frame_height - 1) / 2.0,
            dx=self.resolution,
            dy=-self.resolution,
            width=self.frame_width,
            height=self.frame_height,
        )

    def _chunks(self) -> Iterator[GridChunk]:
        for index in range(self.n_frames):
            lattice = self.frame_lattice(index)
            lon, lat = self.lonlat_grid(lattice)
            statics = self.scene_statics(lattice)
            t = self.t0 + index * self.frame_interval
            counts = self.scene.digitize(
                self.band, lon, lat, t, bits=8, statics=statics
            ).astype(np.uint8)
            yield GridChunk(
                values=counts,
                lattice=lattice,
                band=self.band,
                t=t,
                sector=index,
                frame=FrameInfo(frame_id=index, lattice=lattice),
                row0=0,
                col0=0,
                last_in_frame=True,
            )

    def stream(self) -> GeoStream:
        metadata = StreamMetadata(
            stream_id=f"airborne.{self.band}",
            band=self.band,
            crs=LATLON,
            organization=Organization.IMAGE_BY_IMAGE,
            value_set=GRAY8,
            timestamp_policy="measured",
            description=(
                f"simulated airborne camera, {self.n_frames} frames of "
                f"{self.frame_height}x{self.frame_width} along a "
                f"{math.degrees(self.heading):g} deg track"
            ),
            max_frame_shape=(self.frame_height, self.frame_width),
        )
        return GeoStream(metadata, self._chunks)
