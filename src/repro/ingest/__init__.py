"""Instrument simulators and the raw-record stream generator (Fig. 3)."""

from .airborne import AirborneCamera
from .generator import RawRecord, StreamGenerator, decode_record, encode_record
from .goes import GOES_VIS_FRAME_SHAPE, GOESImager, full_disk_sector, western_us_sector
from .instrument import Instrument
from .lidar import LidarScanner
from .scene import SCENE_BANDS, Hotspot, SyntheticEarth, ValueNoise2D

__all__ = [
    "AirborneCamera",
    "GOESImager",
    "GOES_VIS_FRAME_SHAPE",
    "western_us_sector",
    "full_disk_sector",
    "Instrument",
    "LidarScanner",
    "SyntheticEarth",
    "ValueNoise2D",
    "Hotspot",
    "SCENE_BANDS",
    "StreamGenerator",
    "RawRecord",
    "encode_record",
    "decode_record",
]
