"""LIDAR scanner simulator (point-by-point organization, Fig. 1c).

"Some instruments, such as LIDAR, have non-uniform point lattice
structures, and points are only ordered by time." The simulated scanner
flies a track and emits batches of individually-timestamped points whose
cross-track positions jitter, so no regular lattice exists. Point values
are pseudo-elevations in meters derived from the scene's terrain field.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..core.chunk import PointChunk
from ..core.stream import GeoStream, Organization, StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import StreamError
from ..geo.crs import LATLON
from .instrument import Instrument
from .scene import SyntheticEarth, ValueNoise2D

__all__ = ["LidarScanner"]


class LidarScanner(Instrument):
    """An along-track profiling LIDAR with jittered cross-track sampling."""

    def __init__(
        self,
        scene: SyntheticEarth | None = None,
        start_lon: float = -121.8,
        start_lat: float = 37.2,
        heading_deg: float = 30.0,
        along_spacing_deg: float = 0.0005,
        cross_jitter_deg: float = 0.002,
        n_points: int = 5_000,
        points_per_chunk: int = 250,
        point_interval_s: float = 0.001,
        elevation_scale_m: float = 3_000.0,
        t0: float = 0.0,
    ) -> None:
        super().__init__(scene or SyntheticEarth())
        if n_points < 1 or points_per_chunk < 1:
            raise StreamError("scanner needs at least one point per chunk")
        self.start_lon = start_lon
        self.start_lat = start_lat
        self.heading = math.radians(heading_deg)
        self.along_spacing = along_spacing_deg
        self.cross_jitter = cross_jitter_deg
        self.n_points = n_points
        self.points_per_chunk = points_per_chunk
        self.point_interval = point_interval_s
        self.elevation_scale = elevation_scale_m
        self.t0 = t0
        self._jitter_noise = ValueNoise2D(self.scene.seed * 11 + 9)

    def _positions(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(lon, lat) of the given point indices along the jittered track."""
        along = indices * self.along_spacing
        # Cross-track offset varies smoothly but unpredictably with index.
        jitter = (self._jitter_noise.noise(indices * 0.11, indices * 0.017) - 0.5) * 2.0
        cross = jitter * self.cross_jitter
        sin_h, cos_h = math.sin(self.heading), math.cos(self.heading)
        lon = self.start_lon + sin_h * along + cos_h * cross
        lat = self.start_lat + cos_h * along - sin_h * cross
        return lon, lat

    def _chunks(self) -> Iterator[PointChunk]:
        for start in range(0, self.n_points, self.points_per_chunk):
            indices = np.arange(start, min(start + self.points_per_chunk, self.n_points))
            lon, lat = self._positions(indices.astype(float))
            t = self.t0 + indices * self.point_interval
            elevation = (
                self.scene.elevation(lon, lat).astype(np.float32) * self.elevation_scale
            )
            yield PointChunk(
                x=lon,
                y=lat,
                values=elevation,
                band="elevation",
                t=t,
                crs=LATLON,
            )

    def stream(self) -> GeoStream:
        metadata = StreamMetadata(
            stream_id="lidar.elevation",
            band="elevation",
            crs=LATLON,
            organization=Organization.POINT_BY_POINT,
            value_set=FLOAT32,
            timestamp_policy="measured",
            description=(
                f"simulated profiling LIDAR, {self.n_points} points in batches "
                f"of {self.points_per_chunk}"
            ),
        )
        return GeoStream(metadata, self._chunks)
