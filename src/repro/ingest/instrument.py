"""Instrument base class: shared geometry caching and helpers.

Instruments simulate the remote-sensing platforms of Fig. 1. Each exposes
one :class:`~repro.core.stream.GeoStream` per spectral band; opening a
stream twice regenerates identical data because the underlying scene is a
pure function of position and time.
"""

from __future__ import annotations

import numpy as np

from ..core.lattice import GridLattice
from .scene import SyntheticEarth

__all__ = ["Instrument"]


class Instrument:
    """Common machinery for simulated instruments."""

    def __init__(self, scene: SyntheticEarth) -> None:
        self.scene = scene
        self._lonlat_cache: dict[GridLattice, tuple[np.ndarray, np.ndarray]] = {}
        self._statics_cache: dict[GridLattice, dict[str, np.ndarray]] = {}

    def lonlat_grid(self, lattice: GridLattice) -> tuple[np.ndarray, np.ndarray]:
        """(lon, lat) degree arrays for every pixel center of ``lattice``.

        Inverse-projecting a frame lattice is the most expensive part of
        simulation, and every frame of a sector shares it, so results are
        cached per lattice.
        """
        cached = self._lonlat_cache.get(lattice)
        if cached is None:
            x, y = lattice.meshgrid()
            lon, lat = lattice.crs.to_lonlat(x, y)
            cached = (np.asarray(lon), np.asarray(lat))
            self._lonlat_cache[lattice] = cached
        return cached

    def scene_statics(self, lattice: GridLattice) -> dict[str, np.ndarray]:
        """Time-independent scene fields for every pixel of ``lattice``.

        Re-observed every frame and band, so cached like the lon/lat grid.
        """
        cached = self._statics_cache.get(lattice)
        if cached is None:
            lon, lat = self.lonlat_grid(lattice)
            cached = self.scene.static_fields(lon, lat)
            self._statics_cache[lattice] = cached
        return cached
