"""Procedural Earth scene: the synthetic data source behind all instruments.

The paper's system ingests live GOES imagery; offline we substitute a
deterministic synthetic Earth (see DESIGN.md). The scene is a pure
function of (lon, lat, t, band) built from seeded value noise, so any
instrument observing the same place at the same time sees the same
radiance — which is exactly the property stream composition (Def. 10)
relies on when combining spectral bands.

Bands provided:

* ``vis`` — visible reflectance: bright clouds, mid soil, dark vegetation
  and water, modulated by solar elevation.
* ``nir`` — near-infrared reflectance: vegetation bright, water very dark.
  ``(nir - vis) / (nir + vis)`` therefore yields a plausible NDVI field.
* ``tir`` — thermal brightness temperature (K) with diurnal cycle and
  occasional deterministic "wildfire" hotspots for the disaster-management
  example workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import StreamError

__all__ = ["ValueNoise2D", "SyntheticEarth", "Hotspot", "SCENE_BANDS"]

SCENE_BANDS = ("vis", "nir", "tir")


def _mix64(h: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: decorrelate integer lattice coordinates."""
    h = (h + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    h = ((h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)).astype(np.uint64)
    h = ((h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)).astype(np.uint64)
    return h ^ (h >> np.uint64(31))


class ValueNoise2D:
    """Deterministic smooth noise on R^2 with values in [0, 1].

    Lattice corners get hashed pseudo-random values; points in between are
    blended with a smoothstep, giving C1-continuous fields without any
    stored state — important because instruments re-open streams and must
    regenerate identical data.
    """

    def __init__(self, seed: int) -> None:
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)

    def _corner(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        h = _mix64(
            self._seed
            ^ _mix64(ix.astype(np.int64).astype(np.uint64))
            ^ _mix64(~iy.astype(np.int64).astype(np.uint64))
        )
        return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)

    def noise(self, x: np.ndarray | float, y: np.ndarray | float) -> np.ndarray:
        # NaN coordinates (off-earth pixels) evaluate at the origin; the
        # scene's digitizer zeroes them afterwards.
        x = np.nan_to_num(np.asarray(x, dtype=float))
        y = np.nan_to_num(np.asarray(y, dtype=float))
        ix = np.floor(x)
        iy = np.floor(y)
        fx = x - ix
        fy = y - iy
        # Smoothstep weights.
        wx = fx * fx * (3.0 - 2.0 * fx)
        wy = fy * fy * (3.0 - 2.0 * fy)
        v00 = self._corner(ix, iy)
        v10 = self._corner(ix + 1, iy)
        v01 = self._corner(ix, iy + 1)
        v11 = self._corner(ix + 1, iy + 1)
        top = v00 * (1.0 - wx) + v10 * wx
        bot = v01 * (1.0 - wx) + v11 * wx
        return top * (1.0 - wy) + bot * wy

    def fbm(
        self,
        x: np.ndarray | float,
        y: np.ndarray | float,
        octaves: int = 4,
        lacunarity: float = 2.0,
        gain: float = 0.5,
    ) -> np.ndarray:
        """Fractal Brownian motion: octave-summed noise, rescaled to [0, 1]."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        total = np.zeros(np.broadcast(x, y).shape, dtype=float)
        amp = 1.0
        freq = 1.0
        norm = 0.0
        for _ in range(max(1, octaves)):
            total += amp * self.noise(x * freq, y * freq)
            norm += amp
            amp *= gain
            freq *= lacunarity
        return total / norm


@dataclass(frozen=True)
class Hotspot:
    """A transient thermal anomaly (synthetic wildfire)."""

    lon: float
    lat: float
    t_start: float
    t_end: float
    radius_deg: float = 0.15
    peak_kelvin: float = 420.0


@dataclass
class SyntheticEarth:
    """Deterministic radiance model of the Earth's surface and atmosphere."""

    seed: int = 7
    sea_level: float = 0.55
    hotspots: tuple[Hotspot, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self._terrain = ValueNoise2D(self.seed * 11 + 1)
        self._moisture = ValueNoise2D(self.seed * 11 + 2)
        self._cloud = ValueNoise2D(self.seed * 11 + 3)
        self._texture = ValueNoise2D(self.seed * 11 + 4)

    # -- physical fields ----------------------------------------------------

    def elevation(self, lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Pseudo-elevation in [0, 1]; below ``sea_level`` is water."""
        return self._terrain.fbm(np.asarray(lon) / 8.0, np.asarray(lat) / 8.0, octaves=5)

    def water_mask(self, lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        return self.elevation(lon, lat) < self.sea_level

    def vegetation(self, lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Vegetation density in [0, 1]; zero over water."""
        moist = self._moisture.fbm(np.asarray(lon) / 5.0 + 100.0, np.asarray(lat) / 5.0, octaves=4)
        lat_factor = np.clip(1.0 - np.abs(np.asarray(lat)) / 75.0, 0.0, 1.0)
        veg = np.clip(moist * 1.4 - 0.2, 0.0, 1.0) * lat_factor
        return np.where(self.water_mask(lon, lat), 0.0, veg)

    def cloud_cover(self, lon: np.ndarray, lat: np.ndarray, t: float) -> np.ndarray:
        """Cloud optical fraction in [0, 1], advected eastward with time."""
        drift = t / 3600.0 * 0.5  # degrees of longitude per hour
        raw = self._cloud.fbm(
            (np.asarray(lon) - drift) / 6.0, np.asarray(lat) / 6.0 + t / 86_400.0, octaves=4
        )
        return np.clip((raw - 0.55) * 3.0, 0.0, 1.0)

    def solar_elevation(self, lon: np.ndarray, t: float) -> np.ndarray:
        """Crude solar elevation factor in [0, 1] from local hour angle."""
        hours = (t / 3600.0 + np.asarray(lon) / 15.0) % 24.0
        return np.clip(np.sin((hours - 6.0) / 12.0 * math.pi), 0.0, 1.0)

    # -- static-field caching ---------------------------------------------------

    def static_fields(self, lon: np.ndarray, lat: np.ndarray) -> dict[str, np.ndarray]:
        """Precompute the time-independent fields for a coordinate grid.

        Instruments scanning a fixed sector re-observe the same lattice
        every frame and band; water, vegetation, and surface texture do
        not change with time, so callers can compute them once and pass
        them back to :meth:`reflectance`/:meth:`digitize` via ``statics``.
        Purely an optimization — values are identical either way.
        """
        lon = np.asarray(lon, dtype=float)
        lat = np.asarray(lat, dtype=float)
        return {
            "water": self.water_mask(lon, lat),
            "veg": self.vegetation(lon, lat),
            "texture": self._texture.fbm(lon * 4.0, lat * 4.0, octaves=3) * 0.08,
        }

    # -- band radiances ----------------------------------------------------------

    def reflectance(
        self,
        band: str,
        lon: np.ndarray,
        lat: np.ndarray,
        t: float,
        statics: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Top-of-atmosphere value for a band at time ``t`` (seconds).

        ``vis``/``nir`` return reflectance in [0, 1]; ``tir`` returns
        brightness temperature in Kelvin. ``statics`` may carry the output
        of :meth:`static_fields` for these coordinates.
        """
        lon = np.asarray(lon, dtype=float)
        lat = np.asarray(lat, dtype=float)
        if band not in SCENE_BANDS:
            raise StreamError(f"unknown scene band {band!r}; expected one of {SCENE_BANDS}")
        if statics is None:
            statics = self.static_fields(lon, lat)
        water = statics["water"]
        veg = statics["veg"]
        texture = statics["texture"]
        cloud = self.cloud_cover(lon, lat, t)

        if band == "tir":
            # Surface temperature: warm tropics, diurnal swing, cool clouds.
            base = 300.0 - np.abs(lat) * 0.6
            diurnal = (self.solar_elevation(lon, t) - 0.5) * 14.0
            temp = base + diurnal - cloud * 35.0 - veg * 4.0 + texture * 20.0
            temp = np.where(water, np.minimum(temp, 295.0 - np.abs(lat) * 0.4), temp)
            for hs in self.hotspots:
                if hs.t_start <= t <= hs.t_end:
                    d2 = (lon - hs.lon) ** 2 + (lat - hs.lat) ** 2
                    bump = (hs.peak_kelvin - 300.0) * np.exp(-d2 / (hs.radius_deg**2))
                    temp = temp + np.where(cloud > 0.5, 0.0, bump)
            return temp

        if band == "vis":
            ground = np.where(water, 0.05, 0.22 - veg * 0.12 + texture)
        else:  # nir
            ground = np.where(water, 0.02, 0.24 + veg * 0.30 + texture)
        cloud_refl = 0.85 if band == "vis" else 0.80
        toa = ground * (1.0 - cloud) + cloud_refl * cloud
        sun = self.solar_elevation(lon, t)
        return np.clip(toa * (0.15 + 0.85 * sun), 0.0, 1.0)

    def digitize(
        self,
        band: str,
        lon: np.ndarray,
        lat: np.ndarray,
        t: float,
        bits: int = 10,
        statics: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Sensor counts: reflectance/temperature quantized to ``bits`` bits.

        Adds deterministic per-pixel shot noise derived from position and
        time so repeated scans of a static scene still differ slightly,
        like a real detector.
        """
        value = self.reflectance(band, lon, lat, t, statics=statics)
        if band == "tir":
            # Map 200..420 K onto the count range (inverted, as GVAR IR is).
            norm = np.clip((420.0 - value) / 220.0, 0.0, 1.0)
        else:
            norm = value
        # Off-earth pixels (NaN lon/lat, e.g. the space corners of a full
        # geostationary disk) digitize to zero counts.
        norm = np.where(np.isfinite(norm), norm, 0.0)
        full_scale = (1 << bits) - 1
        lon_i = np.nan_to_num(np.asarray(lon, dtype=float) * 1e4).astype(np.int64)
        lat_i = np.nan_to_num(np.asarray(lat, dtype=float) * 1e4 + 1e7).astype(np.int64)
        h = _mix64(
            np.uint64(self.seed)
            ^ _mix64(lon_i.astype(np.uint64))
            ^ _mix64(lat_i.astype(np.uint64))
            ^ np.uint64(int(t) & 0xFFFFFFFF)
        )
        noise = ((h >> np.uint64(40)).astype(np.float64) / float(1 << 24) - 0.5) * 2.0
        counts = np.rint(norm * full_scale + noise)
        return np.clip(counts, 0, full_scale).astype(np.uint16)
