"""Raw scan records and the stream generator (Fig. 3).

In the paper's architecture, "raw data is converted by the stream
generator into GeoStream point lattices that have a row-by-row
organization". We reproduce that boundary faithfully: instruments emit
*raw scan records* — opaque byte strings in a GVAR-like binary format —
and :class:`StreamGenerator` parses them into georeferenced chunks using
out-of-band navigation metadata (the per-sector frame lattices).

Record wire format (big-endian)::

    magic    4s   b"GVR1"
    sector   u32  scan-sector identifier
    frame    u32  frame counter
    band     8s   band name, NUL-padded
    row      u32  row index within the sector frame
    t        f64  measured timestamp (seconds)
    width    u32  number of counts
    last     u8   1 when this is the frame's final row
    counts   width * u16
    crc      u32  CRC-32 of everything above
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..core.chunk import GridChunk
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import Organization
from ..errors import StreamError
from ..faults.recovery import current_recovery

__all__ = ["RECORD_HEADER", "encode_record", "decode_record", "RawRecord", "StreamGenerator"]

_MAGIC = b"GVR1"
# Public: the faults layer parses headers to corrupt records surgically.
RECORD_HEADER = struct.Struct(">4sII8sIdIB")


class RawRecord:
    """Decoded view of one raw scan record."""

    __slots__ = ("sector", "frame", "band", "row", "t", "last", "counts")

    def __init__(
        self,
        sector: int,
        frame: int,
        band: str,
        row: int,
        t: float,
        last: bool,
        counts: np.ndarray,
    ) -> None:
        self.sector = sector
        self.frame = frame
        self.band = band
        self.row = row
        self.t = t
        self.last = last
        self.counts = counts


def encode_record(
    sector: int,
    frame: int,
    band: str,
    row: int,
    t: float,
    last: bool,
    counts: np.ndarray,
) -> bytes:
    """Serialize one scan row into the GVAR-like wire format."""
    counts = np.asarray(counts)
    if counts.ndim != 1:
        raise StreamError(f"record counts must be 1-D, got shape {counts.shape}")
    if counts.dtype != np.uint16:
        raise StreamError(f"record counts must be uint16, got {counts.dtype}")
    band_bytes = band.encode("ascii")
    if len(band_bytes) > 8:
        raise StreamError(f"band name {band!r} exceeds 8 bytes")
    header = RECORD_HEADER.pack(
        _MAGIC,
        sector,
        frame,
        band_bytes.ljust(8, b"\x00"),
        row,
        float(t),
        counts.shape[0],
        1 if last else 0,
    )
    payload = header + counts.astype(">u2").tobytes()
    return payload + struct.pack(">I", zlib.crc32(payload) & 0xFFFFFFFF)


def decode_record(data: bytes) -> RawRecord:
    """Parse and checksum-verify one wire record."""
    if len(data) < RECORD_HEADER.size + 4:
        raise StreamError(f"raw record too short ({len(data)} bytes)")
    payload, crc_bytes = data[:-4], data[-4:]
    (crc_expected,) = struct.unpack(">I", crc_bytes)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc_expected:
        raise StreamError("raw record CRC mismatch")
    magic, sector, frame, band_raw, row, t, width, last = RECORD_HEADER.unpack(
        payload[: RECORD_HEADER.size]
    )
    if magic != _MAGIC:
        raise StreamError(f"bad raw record magic {magic!r}")
    body = payload[RECORD_HEADER.size :]
    if len(body) != width * 2:
        raise StreamError(
            f"raw record body has {len(body)} bytes, expected {width * 2}"
        )
    counts = np.frombuffer(body, dtype=">u2").astype(np.uint16)
    return RawRecord(
        sector=sector,
        frame=frame,
        band=band_raw.rstrip(b"\x00").decode("ascii"),
        row=row,
        t=t,
        last=bool(last),
        counts=counts,
    )


class StreamGenerator:
    """Convert raw scan records into georeferenced GeoStream chunks.

    Parameters
    ----------
    navigation:
        Mapping from sector id to the full frame :class:`GridLattice`
        scanned in that sector — the out-of-band metadata real ground
        stations hold.
    organization:
        ``ROW_BY_ROW`` emits one chunk per record; ``IMAGE_BY_IMAGE``
        coalesces a frame's rows and emits one whole-frame chunk when the
        frame's last record arrives.
    """

    def __init__(
        self,
        navigation: Mapping[int, GridLattice],
        organization: Organization = Organization.ROW_BY_ROW,
    ) -> None:
        if organization is Organization.POINT_BY_POINT:
            raise StreamError("raw scan records are row-organized; use the LIDAR source")
        self.navigation = dict(navigation)
        self.organization = organization

    def _lattice_for(self, record: RawRecord) -> GridLattice:
        try:
            frame_lattice = self.navigation[record.sector]
        except KeyError:
            raise StreamError(
                f"no navigation metadata for sector {record.sector}"
            ) from None
        if record.counts.shape[0] != frame_lattice.width:
            raise StreamError(
                f"record width {record.counts.shape[0]} does not match sector "
                f"{record.sector} lattice width {frame_lattice.width}"
            )
        if not 0 <= record.row < frame_lattice.height:
            raise StreamError(
                f"record row {record.row} outside sector lattice of height "
                f"{frame_lattice.height}"
            )
        return frame_lattice

    def decode_stream(self, records: Iterable[bytes]) -> Iterator[GridChunk]:
        """Parse a record sequence into chunks per the configured organization."""
        pending: dict[int, tuple[np.ndarray, FrameInfo, float, str, int]] = {}
        ctx = current_recovery()
        for data in records:
            try:
                record = decode_record(data)
                frame_lattice = self._lattice_for(record)
            except StreamError as exc:
                if ctx is None:
                    raise
                # Degrade-gracefully mode: a record that fails its CRC,
                # width, or navigation checks is poison from a noisy
                # downlink — quarantine it and keep decoding.
                ctx.quarantine(data, reason="bad-record", stage="stream-generator", error=exc)
                continue
            info = FrameInfo(frame_id=record.frame, lattice=frame_lattice)
            if self.organization is Organization.ROW_BY_ROW:
                yield GridChunk(
                    values=record.counts.reshape(1, -1),
                    lattice=frame_lattice.row_lattice(record.row),
                    band=record.band,
                    t=record.t,
                    sector=record.sector,
                    frame=info,
                    row0=record.row,
                    col0=0,
                    last_in_frame=record.last,
                )
                continue
            # IMAGE_BY_IMAGE: paste rows into a canvas per frame id.
            key = record.frame
            if key not in pending:
                canvas = np.zeros(frame_lattice.shape, dtype=np.uint16)
                pending[key] = (canvas, info, record.t, record.band, record.sector)
            canvas, info, _, band, sector = pending[key]
            canvas[record.row] = record.counts
            pending[key] = (canvas, info, record.t, band, sector)
            if record.last:
                canvas, info, t, band, sector = pending.pop(key)
                yield GridChunk(
                    values=canvas,
                    lattice=info.lattice,
                    band=band,
                    t=t,
                    sector=sector,
                    frame=info,
                    row0=0,
                    col0=0,
                    last_in_frame=True,
                )
        if pending:
            if ctx is None:
                raise StreamError(
                    f"record stream ended mid-frame for frame ids {sorted(pending)}"
                )
            for key in sorted(pending):
                ctx.quarantine(
                    pending[key],
                    reason="partial-frame-eof",
                    stage="stream-generator",
                )
