"""GOES-like imager simulator (row-by-row organization, Fig. 1b).

Models the scan behaviour Section 3.3 describes: the imager repeatedly
scans a fixed *scan sector*, sweeping the sector row by row **first for
one spectral band, then for the next** — so measured timestamps of the
same pixel differ across bands, while the scan-sector identifier matches.
Both timestamping policies are exposed, which is what experiment E6
exercises.

The imager's native coordinate system is the geostationary fixed grid
(the stand-in for the paper's "GOES Variable Format"); raw output is a
sequence of GVAR-like records that :class:`~repro.ingest.generator.
StreamGenerator` converts into GeoStream chunks, mirroring Fig. 3.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.lattice import GridLattice
from ..core.stream import GeoStream, Organization, StreamMetadata
from ..core.valueset import GRAY10, GRAY16, GRAY8, ValueSet
from ..errors import StreamError
from ..geo.crs import CRS, LATLON, goes_geostationary
from ..geo.region import BoundingBox
from .generator import StreamGenerator, encode_record
from .instrument import Instrument
from .scene import SCENE_BANDS, SyntheticEarth

__all__ = ["GOESImager", "western_us_sector", "full_disk_sector"]

# The paper's GOES numbers: the visible-band frame is about 20,840 x
# 10,820 points at 1 km resolution (~280 MB). Simulated sectors are scaled
# down but keep the 2:1-ish aspect.
GOES_VIS_FRAME_SHAPE = (10_820, 20_840)


def western_us_sector(
    crs: CRS | None = None, width: int = 192, height: int = 96
) -> GridLattice:
    """A scan-sector lattice covering the western United States.

    The extent is the geostationary-projected image of lon [-130, -105],
    lat [30, 48] — the kind of regional sector the GOES imager scans for
    CONUS-west products.
    """
    crs = crs or goes_geostationary()
    geo_box = BoundingBox(-130.0, 30.0, -105.0, 48.0, LATLON).transformed(crs)
    return GridLattice.from_bbox(
        geo_box, dx=geo_box.width / width, dy=geo_box.height / height, crs=crs
    )


def full_disk_sector(
    crs: CRS | None = None, width: int = 128, height: int = 128
) -> GridLattice:
    """A scan sector covering the satellite's entire visible disk.

    The Earth subtends about +/-8.7 degrees of scan angle from
    geostationary altitude; corner pixels look past the limb into space
    (their lon/lat is NaN and they digitize to zero counts), exercising
    the library's off-earth handling end to end.
    """
    crs = crs or goes_geostationary()
    # Scan-angle half-width of the disk, scaled into projection meters.
    half = 0.1518 * crs.projection.params["height"]  # type: ignore[union-attr]
    box = BoundingBox(-half, -half, half, half, crs)
    return GridLattice.from_bbox(box, dx=2 * half / width, dy=2 * half / height, crs=crs)


class GOESImager(Instrument):
    """Simulated geostationary imager producing one GeoStream per band."""

    def __init__(
        self,
        scene: SyntheticEarth | None = None,
        lon_0: float = -135.0,
        sector_lattice: GridLattice | None = None,
        n_frames: int = 4,
        bands: Sequence[str] = ("vis", "nir"),
        frame_period: float = 1800.0,
        row_time: float | None = None,
        t0: float = 0.0,
        timestamp_policy: str = "sector",
        organization: Organization = Organization.ROW_BY_ROW,
        bits: int = 10,
        band_interleave: str = "row",
    ) -> None:
        super().__init__(scene or SyntheticEarth())
        for band in bands:
            if band not in SCENE_BANDS:
                raise StreamError(f"unknown band {band!r}; scene provides {SCENE_BANDS}")
        if n_frames < 1:
            raise StreamError("need at least one frame")
        self.crs = goes_geostationary(lon_0)
        self.sector_lattice = sector_lattice or western_us_sector(self.crs)
        if self.sector_lattice.crs != self.crs:
            raise StreamError("sector lattice must live in the imager's fixed-grid CRS")
        self.n_frames = n_frames
        self.bands = tuple(bands)
        self.frame_period = float(frame_period)
        # Sequential band scanning must fit inside the frame period.
        n_rows_total = self.sector_lattice.height * len(self.bands)
        self.row_time = (
            float(row_time) if row_time is not None else self.frame_period / (2.0 * n_rows_total)
        )
        if self.row_time * n_rows_total > self.frame_period:
            raise StreamError(
                f"row_time {self.row_time} too slow: {n_rows_total} rows do not "
                f"fit in the {self.frame_period}s frame period"
            )
        self.t0 = float(t0)
        self.timestamp_policy = timestamp_policy
        self.organization = organization
        if band_interleave not in ("row", "band"):
            raise StreamError(
                f"band_interleave must be 'row' or 'band', got {band_interleave!r}"
            )
        # 'row': all bands sweep each row together (separate detectors, small
        # per-band offsets) — rows of different bands interleave in time.
        # 'band': the sector is scanned completely for one band, then the
        # next — the sequential scenario of Section 3.3's timestamping
        # discussion.
        self.band_interleave = band_interleave
        if bits == 8:
            self._value_set: ValueSet = GRAY8
        elif bits == 10:
            self._value_set = GRAY10
        elif bits == 16:
            self._value_set = GRAY16
        else:
            raise StreamError(f"unsupported digitization depth {bits} bits")
        self.bits = bits

    # -- scan timing ----------------------------------------------------------

    def row_timestamp(self, frame: int, band: str, row: int) -> float:
        """Measured time at which ``band``'s sweep of ``row`` completes.

        Under 'row' interleaving every band scans row r during the same
        sweep, offset by a per-detector fraction of the row time; under
        'band' interleaving each band scans the whole sector in turn.
        Either way, measured timestamps of different bands never coincide
        — the Section 3.3 pathology experiment E6 demonstrates.
        """
        if band not in self.bands:
            raise StreamError(f"imager has no band {band!r}")
        band_index = self.bands.index(band)
        frame_start = self.t0 + frame * self.frame_period
        if self.band_interleave == "row":
            detector_offset = band_index * self.row_time / len(self.bands)
            return frame_start + row * self.row_time + detector_offset
        band_duration = self.sector_lattice.height * self.row_time
        return frame_start + band_index * band_duration + row * self.row_time

    # -- raw downlink ----------------------------------------------------------

    def raw_records(self, band: str) -> Iterator[bytes]:
        """The band's downlink: GVAR-like records, one per scan row."""
        lattice = self.sector_lattice
        lon, lat = self.lonlat_grid(lattice)
        statics = self.scene_statics(lattice)
        for frame in range(self.n_frames):
            for row in range(lattice.height):
                t = self.row_timestamp(frame, band, row)
                row_statics = {k: v[row] for k, v in statics.items()}
                counts = self.scene.digitize(
                    band, lon[row], lat[row], t, bits=self.bits, statics=row_statics
                )
                yield encode_record(
                    sector=frame,
                    frame=frame,
                    band=band,
                    row=row,
                    t=t,
                    last=(row == lattice.height - 1),
                    counts=counts,
                )

    # -- GeoStreams --------------------------------------------------------------

    def navigation(self) -> dict[int, GridLattice]:
        """Sector-id -> frame-lattice metadata handed to the generator."""
        return {frame: self.sector_lattice for frame in range(self.n_frames)}

    def stream(self, band: str) -> GeoStream:
        """The GeoStream for one spectral band (re-openable)."""
        if band not in self.bands:
            raise StreamError(f"imager has no band {band!r}; configured: {self.bands}")
        generator = StreamGenerator(self.navigation(), self.organization)
        metadata = StreamMetadata(
            stream_id=f"goes.{band}",
            band=band,
            crs=self.crs,
            organization=self.organization,
            value_set=self._value_set,
            timestamp_policy=self.timestamp_policy,
            description=(
                f"simulated GOES {band} band, {self.n_frames} frames of "
                f"{self.sector_lattice.height}x{self.sector_lattice.width}"
            ),
            max_frame_shape=self.sector_lattice.shape,
        )
        return GeoStream(metadata, lambda: generator.decode_stream(self.raw_records(band)))

    def streams(self) -> dict[str, GeoStream]:
        """All configured bands' streams, keyed by band name."""
        return {band: self.stream(band) for band in self.bands}
