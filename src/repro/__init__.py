"""GeoStreams: a data and query model for streaming geospatial image data.

Reproduction of Gertz, Hart, Rueda, Singhal & Zhang (EDBT 2006). The
package implements the paper's data model (point lattices, value sets,
GeoStreams), its closed query algebra (restrictions, transforms,
compositions), a cost-accounted streaming engine, a query language with
an optimizer performing the paper's restriction-pushdown rewrites, and a
DSMS server whose shared cascade-tree restriction stage drives many
continuous queries off one scan of simulated satellite downlinks.

Quickstart::

    from repro import GOESImager, DSMSServer, StreamCatalog

    imager = GOESImager(n_frames=4, t0=72_000.0)
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    server = DSMSServer(catalog)
    session = server.register(
        "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
        " bbox(1e6, 3.7e6, 1.25e6, 3.9e6, crs='geos:-135'))"
    )
    server.run()
    print(session.frames[0].png[:8])  # PNG magic
"""

from .analysis import Diagnostic, DiagnosticReport, analyze
from .core import (
    FLOAT32,
    GRAY10,
    GRAY16,
    GRAY8,
    NDVI_VALUES,
    REFLECTANCE,
    RGB8,
    FrameInfo,
    GeoStream,
    GridChunk,
    GridLattice,
    Organization,
    PointChunk,
    RasterImage,
    StreamMetadata,
    TimeInterval,
    ValueSet,
    assemble_frames,
)
from .engine import compose_streams, format_report, pipeline_report
from .errors import GeoStreamsError
from .faults import (
    BackoffPolicy,
    DeadLetterSink,
    FaultInjector,
    FaultSpec,
    FrameGuard,
    RecoveryContext,
    SimClock,
    harden_catalog,
    recovering,
    resilient_stream,
)
from .geo import (
    CRS,
    LATLON,
    BoundingBox,
    PolygonRegion,
    Region,
    goes_geostationary,
    latlon,
    mercator,
    plate_carree,
    utm,
)
from .index import CascadeTree, GridRegionIndex, NaiveRegionIndex
from .ingest import AirborneCamera, GOESImager, LidarScanner, SyntheticEarth
from .io import read_archive, write_archive
from .operators import (
    AdaptiveLoadShedder,
    Coarsen,
    Delivery,
    FrameStretch,
    FrameSubsampler,
    Magnify,
    RegionAggregate,
    Reproject,
    Rotate,
    SpatialRestriction,
    StreamComposition,
    TemporalAggregate,
    TemporalRestriction,
    ValueRestriction,
    evi2,
    ndvi,
    reflectance,
    spatio_temporal_aggregate,
)
from .plan import PlanDAG, PlanNode, build_composition, build_value_map, canonicalize
from .query import Q, optimize, parse_query, plan_query
from .server import ClientSession, DSMSServer, SessionCheckpoint, StreamCatalog

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "GeoStream",
    "GridChunk",
    "PointChunk",
    "GridLattice",
    "FrameInfo",
    "RasterImage",
    "assemble_frames",
    "Organization",
    "StreamMetadata",
    "TimeInterval",
    "ValueSet",
    "GRAY8",
    "GRAY10",
    "GRAY16",
    "RGB8",
    "FLOAT32",
    "REFLECTANCE",
    "NDVI_VALUES",
    # geo
    "CRS",
    "LATLON",
    "latlon",
    "plate_carree",
    "mercator",
    "utm",
    "goes_geostationary",
    "BoundingBox",
    "PolygonRegion",
    "Region",
    # ingest
    "GOESImager",
    "AirborneCamera",
    "LidarScanner",
    "SyntheticEarth",
    # operators
    "SpatialRestriction",
    "TemporalRestriction",
    "ValueRestriction",
    "FrameStretch",
    "Magnify",
    "Coarsen",
    "Rotate",
    "Reproject",
    "StreamComposition",
    "TemporalAggregate",
    "RegionAggregate",
    "Delivery",
    "ndvi",
    "evi2",
    "reflectance",
    # engine
    "compose_streams",
    "pipeline_report",
    "format_report",
    # query
    "Q",
    "parse_query",
    "optimize",
    "plan_query",
    # plan IR
    "PlanNode",
    "PlanDAG",
    "canonicalize",
    "build_value_map",
    "build_composition",
    # index
    "CascadeTree",
    "GridRegionIndex",
    "NaiveRegionIndex",
    # server
    "DSMSServer",
    "StreamCatalog",
    "ClientSession",
    "SessionCheckpoint",
    # faults & recovery
    "FaultSpec",
    "FaultInjector",
    "BackoffPolicy",
    "DeadLetterSink",
    "FrameGuard",
    "RecoveryContext",
    "SimClock",
    "harden_catalog",
    "recovering",
    "resilient_stream",
    # io
    "read_archive",
    "write_archive",
    # shedding & aggregates
    "FrameSubsampler",
    "AdaptiveLoadShedder",
    "spatio_temporal_aggregate",
    # static analysis
    "analyze",
    "Diagnostic",
    "DiagnosticReport",
    # errors
    "GeoStreamsError",
]
