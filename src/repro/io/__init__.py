"""File substrate: archive and replay GeoStreams."""

from .archive import ARCHIVE_MAGIC, read_archive, write_archive

__all__ = ["write_archive", "read_archive", "ARCHIVE_MAGIC"]
