"""Stream archives: persist and replay GeoStreams as files.

The paper's introduction observes that today "data is typically
replicated using file-based approaches and has to undergo several
batch-oriented processing steps" — the very workflow a DSMS replaces.
Ground stations still archive the downlink, though, and tests and
examples benefit from replayable captured streams, so this module
provides the file substrate:

* :func:`write_archive` — serialize any GeoStream (grid or point chunks)
  to a self-describing binary file: a JSON header with the stream
  metadata, then length-prefixed, CRC-checked chunk records.
* :func:`read_archive` — open an archive as a *re-openable* GeoStream
  that can feed the same operators and DSMS as a live instrument.

The format is deliberately simple (no compression; numpy buffers are
stored raw, C-order, little-endian dtype strings), and every value-set
and CRS is rebuilt from its spec so archives are portable between runs.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zlib
from typing import IO, Iterator

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import GeoStream, Organization, StreamMetadata
from ..core.valueset import ValueSet
from ..errors import CodecError
from ..geo.crs import from_spec, spec_of

__all__ = ["write_archive", "read_archive", "ARCHIVE_MAGIC"]

ARCHIVE_MAGIC = b"GSARCH1\n"
_LEN = struct.Struct(">I")


# -- (de)serialization helpers -----------------------------------------------


def _lattice_to_json(lattice: GridLattice) -> dict:
    return {
        "crs": spec_of(lattice.crs),
        "x0": lattice.x0,
        "y0": lattice.y0,
        "dx": lattice.dx,
        "dy": lattice.dy,
        "width": lattice.width,
        "height": lattice.height,
    }


def _lattice_from_json(data: dict) -> GridLattice:
    return GridLattice(
        crs=from_spec(data["crs"]),
        x0=data["x0"],
        y0=data["y0"],
        dx=data["dx"],
        dy=data["dy"],
        width=data["width"],
        height=data["height"],
    )


def _value_set_to_json(value_set: ValueSet) -> dict:
    return {
        "name": value_set.name,
        "dtype": value_set.dtype.str,
        "channels": value_set.channels,
        "lo": value_set.lo,
        "hi": value_set.hi,
    }


def _value_set_from_json(data: dict) -> ValueSet:
    return ValueSet(
        data["name"], np.dtype(data["dtype"]), data["channels"], data["lo"], data["hi"]
    )


def _metadata_to_json(metadata: StreamMetadata) -> dict:
    return {
        "stream_id": metadata.stream_id,
        "band": metadata.band,
        "crs": spec_of(metadata.crs),
        "organization": metadata.organization.value,
        "value_set": _value_set_to_json(metadata.value_set),
        "timestamp_policy": metadata.timestamp_policy,
        "description": metadata.description,
        "max_frame_shape": list(metadata.max_frame_shape)
        if metadata.max_frame_shape
        else None,
    }


def _metadata_from_json(data: dict) -> StreamMetadata:
    return StreamMetadata(
        stream_id=data["stream_id"],
        band=data["band"],
        crs=from_spec(data["crs"]),
        organization=Organization(data["organization"]),
        value_set=_value_set_from_json(data["value_set"]),
        timestamp_policy=data["timestamp_policy"],
        description=data.get("description", ""),
        max_frame_shape=tuple(data["max_frame_shape"])
        if data.get("max_frame_shape")
        else None,
    )


def _chunk_to_record(chunk: Chunk) -> bytes:
    if isinstance(chunk, GridChunk):
        header = {
            "kind": "grid",
            "band": chunk.band,
            "t": chunk.t,
            "sector": chunk.sector,
            "dtype": chunk.values.dtype.str,
            "shape": list(chunk.values.shape),
            "lattice": _lattice_to_json(chunk.lattice),
            "frame": (
                {
                    "frame_id": chunk.frame.frame_id,
                    "lattice": _lattice_to_json(chunk.frame.lattice),
                }
                if chunk.frame is not None
                else None
            ),
            "row0": chunk.row0,
            "col0": chunk.col0,
            "last": chunk.last_in_frame,
        }
        blobs = [np.ascontiguousarray(chunk.values).tobytes()]
    else:
        header = {
            "kind": "point",
            "band": chunk.band,
            "sector": chunk.sector,
            "dtype": chunk.values.dtype.str,
            "vshape": list(chunk.values.shape),
            "n": chunk.n_points,
            "crs": spec_of(chunk.crs),
        }
        blobs = [
            chunk.x.astype("<f8").tobytes(),
            chunk.y.astype("<f8").tobytes(),
            chunk.t.astype("<f8").tobytes(),
            np.ascontiguousarray(chunk.values).tobytes(),
        ]
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = _LEN.pack(len(header_bytes)) + header_bytes + b"".join(blobs)
    return payload + _LEN.pack(zlib.crc32(payload) & 0xFFFFFFFF)


def _chunk_from_record(record: bytes) -> Chunk:
    payload, crc_bytes = record[:-4], record[-4:]
    if zlib.crc32(payload) & 0xFFFFFFFF != _LEN.unpack(crc_bytes)[0]:
        raise CodecError("archive chunk record CRC mismatch")
    (hlen,) = _LEN.unpack(payload[:4])
    header = json.loads(payload[4 : 4 + hlen].decode("utf-8"))
    body = payload[4 + hlen :]
    if header["kind"] == "grid":
        values = np.frombuffer(body, dtype=np.dtype(header["dtype"])).reshape(
            header["shape"]
        )
        frame = None
        if header["frame"] is not None:
            frame = FrameInfo(
                header["frame"]["frame_id"], _lattice_from_json(header["frame"]["lattice"])
            )
        return GridChunk(
            values=values,
            lattice=_lattice_from_json(header["lattice"]),
            band=header["band"],
            t=header["t"],
            sector=header["sector"],
            frame=frame,
            row0=header["row0"],
            col0=header["col0"],
            last_in_frame=header["last"],
        )
    if header["kind"] == "point":
        n = header["n"]
        offset = 0
        x = np.frombuffer(body, dtype="<f8", count=n, offset=offset); offset += 8 * n
        y = np.frombuffer(body, dtype="<f8", count=n, offset=offset); offset += 8 * n
        t = np.frombuffer(body, dtype="<f8", count=n, offset=offset); offset += 8 * n
        values = np.frombuffer(body, dtype=np.dtype(header["dtype"]), offset=offset)
        values = values.reshape(header["vshape"])
        return PointChunk(
            x=x,
            y=y,
            values=values,
            band=header["band"],
            t=t,
            crs=from_spec(header["crs"]),
            sector=header["sector"],
        )
    raise CodecError(f"unknown archive chunk kind {header['kind']!r}")


# -- public API --------------------------------------------------------------------


def write_archive(stream: GeoStream, path: str | pathlib.Path) -> int:
    """Serialize a (finite) GeoStream to ``path``; returns chunks written."""
    path = pathlib.Path(path)
    count = 0
    with path.open("wb") as fh:
        fh.write(ARCHIVE_MAGIC)
        header = json.dumps(
            {"metadata": _metadata_to_json(stream.metadata)}, separators=(",", ":")
        ).encode("utf-8")
        fh.write(_LEN.pack(len(header)))
        fh.write(header)
        for chunk in stream.chunks():
            record = _chunk_to_record(chunk)
            fh.write(_LEN.pack(len(record)))
            fh.write(record)
            count += 1
    return count


def _read_exact(fh: IO[bytes], n: int, context: str) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise CodecError(f"truncated archive while reading {context}")
    return data


def _iter_archive_chunks(path: pathlib.Path) -> Iterator[Chunk]:
    with path.open("rb") as fh:
        if _read_exact(fh, len(ARCHIVE_MAGIC), "magic") != ARCHIVE_MAGIC:
            raise CodecError(f"{path} is not a GeoStream archive")
        (hlen,) = _LEN.unpack(_read_exact(fh, 4, "header length"))
        _read_exact(fh, hlen, "header")  # metadata already parsed at open
        while True:
            raw_len = fh.read(4)
            if not raw_len:
                return
            (rlen,) = _LEN.unpack(raw_len)
            yield _chunk_from_record(_read_exact(fh, rlen, "chunk record"))


def read_archive(path: str | pathlib.Path) -> GeoStream:
    """Open an archive as a re-openable GeoStream."""
    path = pathlib.Path(path)
    with path.open("rb") as fh:
        if _read_exact(fh, len(ARCHIVE_MAGIC), "magic") != ARCHIVE_MAGIC:
            raise CodecError(f"{path} is not a GeoStream archive")
        (hlen,) = _LEN.unpack(_read_exact(fh, 4, "header length"))
        header = json.loads(_read_exact(fh, hlen, "header").decode("utf-8"))
    metadata = _metadata_from_json(header["metadata"])
    return GeoStream(metadata, lambda: _iter_archive_chunks(path))
