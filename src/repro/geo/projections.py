"""Map projections implemented from scratch.

The paper's prototype uses PROJ.4 for re-projections (Section 4); this
module is the equivalent substrate. Each projection converts between
geodetic coordinates (longitude/latitude in degrees) and projected
coordinates (meters), vectorized over numpy arrays.

Implemented projections, chosen to cover the paper's use cases:

* :class:`PlateCarree` — the latitude/longitude grid the prototype's web
  interface uses, expressed in meters so it composes with other CRSs.
* :class:`Mercator` — standard conformal cylindrical (ellipsoidal).
* :class:`TransverseMercator` / :func:`utm_projection` — the UTM target of
  the paper's running query example (Snyder's series formulas).
* :class:`LambertConformalConic` — common for weather products.
* :class:`Sinusoidal` — equal-area, used by MODIS land products.
* :class:`Geostationary` — the GOES fixed-grid view; the paper's "GOES
  Variable Format" native coordinate system is a scaled version of these
  scan angles.

Formulas follow Snyder, *Map Projections: A Working Manual* (USGS PP 1395)
and the GOES-R Product User Guide for the geostationary case. Points
outside a projection's domain map to NaN rather than raising, so streaming
operators can mask them; use :meth:`Projection.forward_strict` to raise
:class:`~repro.errors.ProjectionDomainError` instead.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..errors import ProjectionDomainError, ProjectionError
from .datum import GRS80, SPHERE, WGS84, Ellipsoid

__all__ = [
    "Projection",
    "PlateCarree",
    "Mercator",
    "TransverseMercator",
    "utm_projection",
    "LambertConformalConic",
    "Sinusoidal",
    "Geostationary",
    "GOES_EAST_LON",
    "GOES_WEST_LON",
]

GOES_EAST_LON = -75.0
GOES_WEST_LON = -135.0

_QUARTER_PI = math.pi / 4.0


def _as_float_arrays(*values: Any) -> tuple[np.ndarray, ...]:
    return tuple(np.asarray(v, dtype=float) for v in values)


class Projection:
    """Base class for map projections.

    Subclasses implement :meth:`_forward` and :meth:`_inverse` on radians /
    meters; the public API converts degrees and handles domain masking.
    """

    name = "abstract"

    def __init__(self, ellipsoid: Ellipsoid, **params: float) -> None:
        self.ellipsoid = ellipsoid
        self.params = dict(params)

    # -- public API ---------------------------------------------------

    def forward(
        self, lon_deg: np.ndarray | float, lat_deg: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project (lon, lat) degrees to (x, y) meters. NaN outside domain."""
        lon, lat = _as_float_arrays(lon_deg, lat_deg)
        return self._forward(np.radians(lon), np.radians(lat))

    def inverse(
        self, x_m: np.ndarray | float, y_m: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unproject (x, y) meters to (lon, lat) degrees. NaN outside domain."""
        x, y = _as_float_arrays(x_m, y_m)
        lon, lat = self._inverse(x, y)
        return np.degrees(lon), np.degrees(lat)

    def forward_strict(
        self, lon_deg: np.ndarray | float, lat_deg: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`forward` but raise if any point is outside the domain."""
        x, y = self.forward(lon_deg, lat_deg)
        if np.any(np.isnan(x)) or np.any(np.isnan(y)):
            raise ProjectionDomainError(
                f"{self.name}: input contains points outside the projection domain"
            )
        return x, y

    # -- hooks ---------------------------------------------------------

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- identity -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.ellipsoid == other.ellipsoid  # type: ignore[union-attr]
            and self.params == other.params  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.ellipsoid, tuple(sorted(self.params.items()))))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v:g}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({self.ellipsoid.name}{', ' if args else ''}{args})"


class PlateCarree(Projection):
    """Equirectangular projection: x = R*lon, y = R*lat (radians scaled).

    Uses the ellipsoid's semi-major axis as the scaling radius, so one
    degree of longitude at the equator is ~111.3 km.
    """

    name = "plate_carree"

    def __init__(self, ellipsoid: Ellipsoid = WGS84, lon_0: float = 0.0) -> None:
        super().__init__(ellipsoid, lon_0=lon_0)
        self._lam0 = math.radians(lon_0)

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a = self.ellipsoid.a
        dlam = _wrap_longitude(lam - self._lam0)
        return a * dlam, a * phi

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a = self.ellipsoid.a
        lam = x / a + self._lam0
        phi = y / a
        bad = np.abs(phi) > math.pi / 2 + 1e-12
        return _mask_nan(lam, bad), _mask_nan(phi, bad)


def _wrap_longitude(lam: np.ndarray) -> np.ndarray:
    """Wrap radian longitudes into (-pi, pi]."""
    return lam - 2.0 * np.pi * np.round(lam / (2.0 * np.pi))


def _mask_nan(arr: np.ndarray, bad: np.ndarray) -> np.ndarray:
    if np.any(bad):
        arr = np.where(bad, np.nan, arr)
    return arr


def _ts_from_phi(phi: np.ndarray, e: float) -> np.ndarray:
    """Snyder's isometric-colatitude function t(phi) (eq. 15-9)."""
    sin_phi = np.sin(phi)
    con = e * sin_phi
    return np.tan(_QUARTER_PI - phi / 2.0) / np.power(
        (1.0 - con) / (1.0 + con), e / 2.0
    )


def _phi_from_ts(ts: np.ndarray, e: float, max_iter: int = 15) -> np.ndarray:
    """Invert :func:`_ts_from_phi` by fixed-point iteration (eq. 7-9)."""
    phi = _QUARTER_PI * 2.0 - 2.0 * np.arctan(ts)
    for _ in range(max_iter):
        con = e * np.sin(phi)
        new = math.pi / 2.0 - 2.0 * np.arctan(
            ts * np.power((1.0 - con) / (1.0 + con), e / 2.0)
        )
        if np.all(np.abs(new - phi) < 1e-12):
            phi = new
            break
        phi = new
    return phi


class Mercator(Projection):
    """Conformal cylindrical Mercator (ellipsoidal form; Snyder ch. 7)."""

    name = "mercator"
    MAX_LAT_DEG = 89.5

    def __init__(self, ellipsoid: Ellipsoid = WGS84, lon_0: float = 0.0) -> None:
        super().__init__(ellipsoid, lon_0=lon_0)
        self._lam0 = math.radians(lon_0)

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e = self.ellipsoid.a, self.ellipsoid.e
        bad = np.abs(phi) > math.radians(self.MAX_LAT_DEG)
        phi_c = np.clip(phi, -math.radians(self.MAX_LAT_DEG), math.radians(self.MAX_LAT_DEG))
        x = a * _wrap_longitude(lam - self._lam0)
        if e == 0.0:
            y = a * np.log(np.tan(_QUARTER_PI + phi_c / 2.0))
        else:
            y = -a * np.log(_ts_from_phi(phi_c, e))
        return _mask_nan(x, bad), _mask_nan(y, bad)

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e = self.ellipsoid.a, self.ellipsoid.e
        lam = x / a + self._lam0
        if e == 0.0:
            phi = 2.0 * np.arctan(np.exp(y / a)) - math.pi / 2.0
        else:
            phi = _phi_from_ts(np.exp(-y / a), e)
        return lam, phi


class TransverseMercator(Projection):
    """Ellipsoidal transverse Mercator via Snyder's series (ch. 8).

    Accurate to sub-millimeter within ~4 degrees of the central meridian,
    which covers UTM zone usage. Points more than ~80 degrees of longitude
    away from the central meridian are outside the domain and map to NaN.
    """

    name = "transverse_mercator"

    def __init__(
        self,
        ellipsoid: Ellipsoid = WGS84,
        lon_0: float = 0.0,
        lat_0: float = 0.0,
        k_0: float = 0.9996,
        false_easting: float = 500_000.0,
        false_northing: float = 0.0,
    ) -> None:
        super().__init__(
            ellipsoid,
            lon_0=lon_0,
            lat_0=lat_0,
            k_0=k_0,
            false_easting=false_easting,
            false_northing=false_northing,
        )
        self._lam0 = math.radians(lon_0)
        self._phi0 = math.radians(lat_0)
        self._k0 = k_0
        self._fe = false_easting
        self._fn = false_northing
        e2 = ellipsoid.e2
        # Meridional-arc series coefficients (Snyder eq. 3-21).
        self._m_coeffs = (
            1.0 - e2 / 4.0 - 3.0 * e2**2 / 64.0 - 5.0 * e2**3 / 256.0,
            3.0 * e2 / 8.0 + 3.0 * e2**2 / 32.0 + 45.0 * e2**3 / 1024.0,
            15.0 * e2**2 / 256.0 + 45.0 * e2**3 / 1024.0,
            35.0 * e2**3 / 3072.0,
        )
        self._m0 = self._meridional_arc(np.asarray(self._phi0)).item()
        sqrt1me2 = math.sqrt(1.0 - e2)
        self._e1 = (1.0 - sqrt1me2) / (1.0 + sqrt1me2)

    def _meridional_arc(self, phi: np.ndarray) -> np.ndarray:
        c0, c2, c4, c6 = self._m_coeffs
        a = self.ellipsoid.a
        return a * (
            c0 * phi - c2 * np.sin(2.0 * phi) + c4 * np.sin(4.0 * phi) - c6 * np.sin(6.0 * phi)
        )

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e2, ep2 = self.ellipsoid.a, self.ellipsoid.e2, self.ellipsoid.ep2
        dlam = _wrap_longitude(lam - self._lam0)
        bad = np.abs(dlam) > math.radians(80.0)
        sin_phi, cos_phi, tan_phi = np.sin(phi), np.cos(phi), np.tan(phi)
        n = a / np.sqrt(1.0 - e2 * sin_phi**2)
        t = tan_phi**2
        c = ep2 * cos_phi**2
        big_a = dlam * cos_phi
        m = self._meridional_arc(phi)
        x = self._k0 * n * (
            big_a
            + (1.0 - t + c) * big_a**3 / 6.0
            + (5.0 - 18.0 * t + t**2 + 72.0 * c - 58.0 * ep2) * big_a**5 / 120.0
        )
        y = self._k0 * (
            m
            - self._m0
            + n
            * tan_phi
            * (
                big_a**2 / 2.0
                + (5.0 - t + 9.0 * c + 4.0 * c**2) * big_a**4 / 24.0
                + (61.0 - 58.0 * t + t**2 + 600.0 * c - 330.0 * ep2) * big_a**6 / 720.0
            )
        )
        return _mask_nan(x + self._fe, bad), _mask_nan(y + self._fn, bad)

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e2, ep2 = self.ellipsoid.a, self.ellipsoid.e2, self.ellipsoid.ep2
        e1 = self._e1
        x = x - self._fe
        y = y - self._fn
        m = self._m0 + y / self._k0
        mu = m / (a * self._m_coeffs[0])
        phi1 = (
            mu
            + (3.0 * e1 / 2.0 - 27.0 * e1**3 / 32.0) * np.sin(2.0 * mu)
            + (21.0 * e1**2 / 16.0 - 55.0 * e1**4 / 32.0) * np.sin(4.0 * mu)
            + (151.0 * e1**3 / 96.0) * np.sin(6.0 * mu)
            + (1097.0 * e1**4 / 512.0) * np.sin(8.0 * mu)
        )
        sin1, cos1, tan1 = np.sin(phi1), np.cos(phi1), np.tan(phi1)
        c1 = ep2 * cos1**2
        t1 = tan1**2
        n1 = a / np.sqrt(1.0 - e2 * sin1**2)
        r1 = a * (1.0 - e2) / np.power(1.0 - e2 * sin1**2, 1.5)
        d = x / (n1 * self._k0)
        phi = phi1 - (n1 * tan1 / r1) * (
            d**2 / 2.0
            - (5.0 + 3.0 * t1 + 10.0 * c1 - 4.0 * c1**2 - 9.0 * ep2) * d**4 / 24.0
            + (61.0 + 90.0 * t1 + 298.0 * c1 + 45.0 * t1**2 - 252.0 * ep2 - 3.0 * c1**2)
            * d**6
            / 720.0
        )
        lam = self._lam0 + (
            d
            - (1.0 + 2.0 * t1 + c1) * d**3 / 6.0
            + (5.0 - 2.0 * c1 + 28.0 * t1 - 3.0 * c1**2 + 8.0 * ep2 + 24.0 * t1**2)
            * d**5
            / 120.0
        ) / np.where(np.abs(cos1) < 1e-12, np.nan, cos1)
        return lam, phi


def utm_projection(zone: int, north: bool = True, ellipsoid: Ellipsoid = WGS84) -> TransverseMercator:
    """Build the transverse Mercator projection for a UTM zone (1..60)."""
    if not 1 <= zone <= 60:
        raise ProjectionError(f"UTM zone must be in 1..60, got {zone}")
    lon_0 = -183.0 + 6.0 * zone
    return TransverseMercator(
        ellipsoid=ellipsoid,
        lon_0=lon_0,
        k_0=0.9996,
        false_easting=500_000.0,
        false_northing=0.0 if north else 10_000_000.0,
    )


class LambertConformalConic(Projection):
    """Lambert conformal conic with two standard parallels (Snyder ch. 15)."""

    name = "lambert_conformal_conic"

    def __init__(
        self,
        ellipsoid: Ellipsoid = WGS84,
        lat_1: float = 33.0,
        lat_2: float = 45.0,
        lat_0: float = 39.0,
        lon_0: float = -96.0,
    ) -> None:
        super().__init__(ellipsoid, lat_1=lat_1, lat_2=lat_2, lat_0=lat_0, lon_0=lon_0)
        e = ellipsoid.e
        phi1, phi2, phi0 = (math.radians(v) for v in (lat_1, lat_2, lat_0))
        self._lam0 = math.radians(lon_0)

        def m_of(phi: float) -> float:
            return math.cos(phi) / math.sqrt(1.0 - ellipsoid.e2 * math.sin(phi) ** 2)

        def t_of(phi: float) -> float:
            return float(_ts_from_phi(np.asarray(phi), e))

        m1, m2 = m_of(phi1), m_of(phi2)
        t0, t1, t2 = t_of(phi0), t_of(phi1), t_of(phi2)
        if abs(phi1 - phi2) < 1e-12:
            self._n = math.sin(phi1)
        else:
            self._n = (math.log(m1) - math.log(m2)) / (math.log(t1) - math.log(t2))
        self._f = m1 / (self._n * t1**self._n)
        self._rho0 = ellipsoid.a * self._f * t0**self._n

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e = self.ellipsoid.a, self.ellipsoid.e
        n = self._n
        # The pole opposite the cone apex is outside the domain.
        bad = (phi * np.sign(n)) < math.radians(-89.999)
        ts = _ts_from_phi(np.clip(phi, -math.pi / 2 + 1e-9, math.pi / 2 - 1e-9), e)
        rho = a * self._f * np.power(ts, n)
        theta = n * _wrap_longitude(lam - self._lam0)
        x = rho * np.sin(theta)
        y = self._rho0 - rho * np.cos(theta)
        return _mask_nan(x, bad), _mask_nan(y, bad)

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, e = self.ellipsoid.a, self.ellipsoid.e
        n = self._n
        sgn = 1.0 if n >= 0 else -1.0
        rho = sgn * np.hypot(x, self._rho0 - y)
        theta = np.arctan2(sgn * x, sgn * (self._rho0 - y))
        lam = theta / n + self._lam0
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.power(rho / (a * self._f), 1.0 / n)
        phi = _phi_from_ts(ts, e)
        phi = np.where(rho == 0.0, sgn * math.pi / 2.0, phi)
        return lam, phi


class Sinusoidal(Projection):
    """Spherical sinusoidal (equal-area) projection, as used by MODIS."""

    name = "sinusoidal"

    def __init__(self, ellipsoid: Ellipsoid = SPHERE, lon_0: float = 0.0) -> None:
        super().__init__(ellipsoid, lon_0=lon_0)
        self._lam0 = math.radians(lon_0)
        self._r = ellipsoid.mean_radius

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        r = self._r
        x = r * _wrap_longitude(lam - self._lam0) * np.cos(phi)
        y = r * phi
        return x, y

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        r = self._r
        phi = y / r
        bad = np.abs(phi) > math.pi / 2.0 + 1e-12
        cos_phi = np.cos(np.clip(phi, -math.pi / 2.0, math.pi / 2.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            lam = x / (r * cos_phi) + self._lam0
        bad = bad | (np.abs(lam - self._lam0) > math.pi + 1e-9)
        return _mask_nan(lam, bad), _mask_nan(phi, bad)


class Geostationary(Projection):
    """Geostationary satellite view (GOES fixed grid / GVAR substrate).

    Projection coordinates are scan angles multiplied by the satellite's
    perspective height, following the CF convention, so they are in meters
    like every other projection here. Points not visible from the satellite
    map to NaN. Formulas follow the GOES-R Product Definition and User's
    Guide, section 5.1.2.8 (sweep-angle axis x).
    """

    name = "geostationary"
    DEFAULT_HEIGHT = 35_786_023.0  # meters above the ellipsoid surface

    def __init__(
        self,
        ellipsoid: Ellipsoid = GRS80,
        lon_0: float = GOES_WEST_LON,
        height: float = DEFAULT_HEIGHT,
    ) -> None:
        super().__init__(ellipsoid, lon_0=lon_0, height=height)
        self._lam0 = math.radians(lon_0)
        self._h = height
        self._big_h = height + ellipsoid.a  # distance from Earth's center

    def _forward(self, lam: np.ndarray, phi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ell = self.ellipsoid
        req, rpol = ell.a, ell.b
        big_h = self._big_h
        phi_c = np.arctan((rpol**2 / req**2) * np.tan(phi))
        r_c = rpol / np.sqrt(1.0 - ell.e2 * np.cos(phi_c) ** 2)
        dlam = _wrap_longitude(lam - self._lam0)
        s_x = big_h - r_c * np.cos(phi_c) * np.cos(dlam)
        s_y = -r_c * np.cos(phi_c) * np.sin(dlam)
        s_z = r_c * np.sin(phi_c)
        # Visibility: the satellite must see the point, not the far side.
        invisible = big_h * (big_h - s_x) < s_y**2 + (req**2 / rpol**2) * s_z**2
        norm = np.sqrt(s_x**2 + s_y**2 + s_z**2)
        x_scan = np.arcsin(np.clip(-s_y / norm, -1.0, 1.0))
        y_scan = np.arctan2(s_z, s_x)
        return _mask_nan(x_scan * self._h, invisible), _mask_nan(y_scan * self._h, invisible)

    def _inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ell = self.ellipsoid
        req, rpol = ell.a, ell.b
        big_h = self._big_h
        xs = x / self._h
        ys = y / self._h
        cos_x, sin_x = np.cos(xs), np.sin(xs)
        cos_y, sin_y = np.cos(ys), np.sin(ys)
        ratio = req**2 / rpol**2
        a_ = sin_x**2 + cos_x**2 * (cos_y**2 + ratio * sin_y**2)
        b_ = -2.0 * big_h * cos_x * cos_y
        c_ = big_h**2 - req**2
        disc = b_**2 - 4.0 * a_ * c_
        bad = disc < 0.0
        with np.errstate(invalid="ignore"):
            r_s = (-b_ - np.sqrt(np.where(bad, np.nan, disc))) / (2.0 * a_)
        s_x = r_s * cos_x * cos_y
        s_y = -r_s * sin_x
        s_z = r_s * cos_x * sin_y
        with np.errstate(invalid="ignore"):
            phi = np.arctan(ratio * s_z / np.sqrt((big_h - s_x) ** 2 + s_y**2))
            lam = self._lam0 - np.arctan2(s_y, big_h - s_x)
        return _mask_nan(lam, bad), _mask_nan(phi, bad)
