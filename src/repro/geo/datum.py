"""Reference ellipsoids and geodetic helpers.

The projection formulas in :mod:`repro.geo.projections` are parameterized by
an :class:`Ellipsoid`. Only the handful of quantities the projections need
are exposed: semi-axes, flattening, and eccentricities, plus ECEF conversion
and great-circle distance used by tests and the LIDAR simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Ellipsoid",
    "WGS84",
    "GRS80",
    "SPHERE",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "haversine_m",
]


@dataclass(frozen=True)
class Ellipsoid:
    """An oblate reference ellipsoid.

    Parameters
    ----------
    name:
        Human-readable identifier, also used for equality in CRS comparisons.
    a:
        Semi-major axis in meters.
    inverse_flattening:
        1/f; ``0`` denotes a perfect sphere (f = 0).
    """

    name: str
    a: float
    inverse_flattening: float

    # Derived quantities, filled in __post_init__.
    f: float = field(init=False)
    b: float = field(init=False)
    e2: float = field(init=False)
    ep2: float = field(init=False)

    def __post_init__(self) -> None:
        f = 0.0 if self.inverse_flattening == 0 else 1.0 / self.inverse_flattening
        b = self.a * (1.0 - f)
        e2 = f * (2.0 - f)
        ep2 = e2 / (1.0 - e2) if e2 < 1.0 else math.inf
        object.__setattr__(self, "f", f)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "e2", e2)
        object.__setattr__(self, "ep2", ep2)

    @property
    def e(self) -> float:
        """First eccentricity."""
        return math.sqrt(self.e2)

    @property
    def is_sphere(self) -> bool:
        return self.e2 == 0.0

    @property
    def mean_radius(self) -> float:
        """Arithmetic mean radius (2a + b) / 3."""
        return (2.0 * self.a + self.b) / 3.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ellipsoid({self.name}, a={self.a:.1f}, 1/f={self.inverse_flattening:g})"


WGS84 = Ellipsoid("WGS84", 6378137.0, 298.257223563)
GRS80 = Ellipsoid("GRS80", 6378137.0, 298.257222101)
SPHERE = Ellipsoid("sphere", 6371000.0, 0.0)


def geodetic_to_ecef(
    lon_deg: np.ndarray | float,
    lat_deg: np.ndarray | float,
    height_m: np.ndarray | float = 0.0,
    ellipsoid: Ellipsoid = WGS84,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert geodetic coordinates to Earth-Centered Earth-Fixed meters."""
    lon = np.radians(np.asarray(lon_deg, dtype=float))
    lat = np.radians(np.asarray(lat_deg, dtype=float))
    h = np.asarray(height_m, dtype=float)
    sin_lat = np.sin(lat)
    n = ellipsoid.a / np.sqrt(1.0 - ellipsoid.e2 * sin_lat * sin_lat)
    x = (n + h) * np.cos(lat) * np.cos(lon)
    y = (n + h) * np.cos(lat) * np.sin(lon)
    z = (n * (1.0 - ellipsoid.e2) + h) * sin_lat
    return x, y, z


def ecef_to_geodetic(
    x: np.ndarray | float,
    y: np.ndarray | float,
    z: np.ndarray | float,
    ellipsoid: Ellipsoid = WGS84,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert ECEF meters to geodetic (lon deg, lat deg, height m).

    Uses Bowring's closed-form initial guess followed by one Newton step,
    accurate to well under a millimeter for terrestrial points.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.asarray(z, dtype=float)
    a, b, e2, ep2 = ellipsoid.a, ellipsoid.b, ellipsoid.e2, ellipsoid.ep2
    lon = np.arctan2(y, x)
    p = np.hypot(x, y)
    if ellipsoid.is_sphere:
        lat = np.arctan2(z, p)
        h = np.sqrt(p * p + z * z) - a
        return np.degrees(lon), np.degrees(lat), h
    theta = np.arctan2(z * a, p * b)
    lat = np.arctan2(
        z + ep2 * b * np.sin(theta) ** 3,
        p - e2 * a * np.cos(theta) ** 3,
    )
    sin_lat = np.sin(lat)
    n = a / np.sqrt(1.0 - e2 * sin_lat * sin_lat)
    # Guard the polar singularity where cos(lat) ~ 0.
    cos_lat = np.cos(lat)
    h = np.where(
        np.abs(cos_lat) > 1e-10,
        p / np.maximum(np.abs(cos_lat), 1e-300) - n,
        np.abs(z) / np.maximum(np.abs(sin_lat), 1e-300) - n * (1.0 - e2),
    )
    return np.degrees(lon), np.degrees(lat), h


def haversine_m(
    lon1: np.ndarray | float,
    lat1: np.ndarray | float,
    lon2: np.ndarray | float,
    lat2: np.ndarray | float,
    radius_m: float = SPHERE.a,
) -> np.ndarray:
    """Great-circle distance in meters on a sphere of the given radius."""
    lam1 = np.radians(np.asarray(lon1, dtype=float))
    phi1 = np.radians(np.asarray(lat1, dtype=float))
    lam2 = np.radians(np.asarray(lon2, dtype=float))
    phi2 = np.radians(np.asarray(lat2, dtype=float))
    dphi = phi2 - phi1
    dlam = lam2 - lam1
    h = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * radius_m * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
