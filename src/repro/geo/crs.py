"""Coordinate reference systems.

Section 2 of the paper requires every GeoStream's spatial component to
carry a coordinate system, and makes a *shared* coordinate system the
precondition for binary operations. A :class:`CRS` here is either

* **geographic** — coordinates are (longitude, latitude) in degrees, or
* **projected** — coordinates are (x, y) in meters under a
  :class:`~repro.geo.projections.Projection`.

All cross-CRS transformation is routed through geodetic lon/lat, which is
exact for the projections implemented here (they share datums by
construction or the error is negligible at satellite-pixel scale).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import CRSError, CRSMismatchError
from .datum import GRS80, WGS84, Ellipsoid
from .projections import (
    GOES_WEST_LON,
    Geostationary,
    LambertConformalConic,
    Mercator,
    PlateCarree,
    Projection,
    Sinusoidal,
    utm_projection,
)

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = [
    "CRS",
    "LATLON",
    "transform_points",
    "latlon",
    "plate_carree",
    "mercator",
    "utm",
    "lambert_conic",
    "sinusoidal",
    "goes_geostationary",
    "spec_of",
    "from_spec",
]


class CRS:
    """A coordinate reference system: geographic degrees or projected meters."""

    def __init__(self, name: str, projection: Projection | None, ellipsoid: Ellipsoid) -> None:
        self.name = name
        self.projection = projection
        self.ellipsoid = ellipsoid

    # -- classification -------------------------------------------------

    @property
    def is_geographic(self) -> bool:
        return self.projection is None

    @property
    def units(self) -> str:
        return "degree" if self.is_geographic else "meter"

    # -- conversion ------------------------------------------------------

    def to_lonlat(
        self, x: np.ndarray | float, y: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert native coordinates to (lon, lat) degrees."""
        if self.is_geographic:
            return np.asarray(x, dtype=float), np.asarray(y, dtype=float)
        return self.projection.inverse(x, y)

    def from_lonlat(
        self, lon: np.ndarray | float, lat: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert (lon, lat) degrees to native coordinates."""
        if self.is_geographic:
            return np.asarray(lon, dtype=float), np.asarray(lat, dtype=float)
        return self.projection.forward(lon, lat)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CRS):
            return NotImplemented
        return self.projection == other.projection and self.ellipsoid == other.ellipsoid

    def __hash__(self) -> int:
        return hash((self.projection, self.ellipsoid))

    def __repr__(self) -> str:
        return f"CRS({self.name!r})"

    def require_same(self, other: "CRS", context: str = "operation") -> None:
        """Raise :class:`CRSMismatchError` unless ``other`` equals this CRS."""
        if self != other:
            raise CRSMismatchError(
                f"{context} requires a shared coordinate system, got "
                f"{self.name!r} and {other.name!r}"
            )


def latlon(ellipsoid: Ellipsoid = WGS84) -> CRS:
    """Geographic longitude/latitude in degrees."""
    return CRS(f"latlon:{ellipsoid.name}", None, ellipsoid)


def plate_carree(ellipsoid: Ellipsoid = WGS84, lon_0: float = 0.0) -> CRS:
    return CRS(f"plate_carree:{lon_0:g}", PlateCarree(ellipsoid, lon_0=lon_0), ellipsoid)


def mercator(ellipsoid: Ellipsoid = WGS84, lon_0: float = 0.0) -> CRS:
    return CRS(f"mercator:{lon_0:g}", Mercator(ellipsoid, lon_0=lon_0), ellipsoid)


def utm(zone: int, north: bool = True, ellipsoid: Ellipsoid = WGS84) -> CRS:
    hemi = "N" if north else "S"
    return CRS(f"utm:{zone}{hemi}", utm_projection(zone, north, ellipsoid), ellipsoid)


def lambert_conic(
    lat_1: float = 33.0,
    lat_2: float = 45.0,
    lat_0: float = 39.0,
    lon_0: float = -96.0,
    ellipsoid: Ellipsoid = WGS84,
) -> CRS:
    proj = LambertConformalConic(ellipsoid, lat_1=lat_1, lat_2=lat_2, lat_0=lat_0, lon_0=lon_0)
    return CRS(f"lcc:{lat_1:g}/{lat_2:g}", proj, ellipsoid)


def sinusoidal(lon_0: float = 0.0) -> CRS:
    from .datum import SPHERE

    return CRS(f"sinusoidal:{lon_0:g}", Sinusoidal(SPHERE, lon_0=lon_0), SPHERE)


def goes_geostationary(lon_0: float = GOES_WEST_LON, ellipsoid: Ellipsoid = GRS80) -> CRS:
    """The GOES fixed-grid view; stand-in for the paper's 'GOES Variable Format'."""
    return CRS(f"geos:{lon_0:g}", Geostationary(ellipsoid, lon_0=lon_0), ellipsoid)


LATLON = latlon()


def spec_of(crs: CRS) -> str:
    """Serialize a CRS built by this module's factories to a spec string.

    The inverse of :func:`from_spec`. Only factory-standard CRSs are
    serializable; hand-built projections with nonstandard ellipsoids
    raise :class:`CRSError`.
    """
    proj = crs.projection
    if proj is None:
        if crs.ellipsoid == WGS84:
            return "latlon"
        raise CRSError(f"geographic CRS on {crs.ellipsoid.name} has no spec form")
    if isinstance(proj, PlateCarree) and crs.ellipsoid == WGS84:
        return f"plate_carree:{proj.params['lon_0']:g}"
    if isinstance(proj, Mercator) and crs.ellipsoid == WGS84:
        return f"mercator:{proj.params['lon_0']:g}"
    if isinstance(proj, Sinusoidal):
        return f"sinusoidal:{proj.params['lon_0']:g}"
    if isinstance(proj, Geostationary) and crs.ellipsoid == GRS80:
        return f"geos:{proj.params['lon_0']:g}"
    if isinstance(proj, LambertConformalConic) and crs.ellipsoid == WGS84:
        p = proj.params
        return f"lcc:{p['lat_1']:g}:{p['lat_2']:g}:{p['lat_0']:g}:{p['lon_0']:g}"
    if type(proj).__name__ == "TransverseMercator" and crs.ellipsoid == WGS84:
        p = proj.params
        if p.get("k_0") == 0.9996 and p.get("false_easting") == 500_000.0:
            zone = round((p["lon_0"] + 183.0) / 6.0)
            hemi = "S" if p.get("false_northing") == 10_000_000.0 else "N"
            if 1 <= zone <= 60:
                return f"utm:{zone}{hemi}"
    raise CRSError(f"CRS {crs.name!r} is not spec-serializable")


def from_spec(spec: str) -> CRS:
    """Rebuild a CRS from a spec string produced by :func:`spec_of`.

    Also accepts the user-facing names of the query language
    (``latlon``, ``utm:10``, ``geos``...).
    """
    spec = spec.strip().lower()
    if spec in ("latlon", "lonlat", "wgs84"):
        return LATLON
    head, _, rest = spec.partition(":")
    try:
        if head == "plate_carree":
            return plate_carree(lon_0=float(rest) if rest else 0.0)
        if head == "mercator":
            return mercator(lon_0=float(rest) if rest else 0.0)
        if head == "sinusoidal":
            return sinusoidal(lon_0=float(rest) if rest else 0.0)
        if head == "geos":
            return goes_geostationary(float(rest) if rest else GOES_WEST_LON)
        if head == "lcc":
            if not rest:
                return lambert_conic()
            lat_1, lat_2, lat_0, lon_0 = (float(v) for v in rest.split(":"))
            return lambert_conic(lat_1, lat_2, lat_0, lon_0)
        if head == "utm":
            zone_text = rest
            north = True
            if zone_text.endswith("n"):
                zone_text = zone_text[:-1]
            elif zone_text.endswith("s"):
                zone_text = zone_text[:-1]
                north = False
            return utm(int(zone_text), north)
    except (ValueError, TypeError) as exc:
        raise CRSError(f"malformed CRS spec {spec!r}: {exc}") from exc
    raise CRSError(f"unknown CRS spec {spec!r}")


def transform_points(
    src: CRS,
    dst: CRS,
    x: np.ndarray | float,
    y: np.ndarray | float,
) -> tuple[np.ndarray, np.ndarray]:
    """Transform coordinate arrays from ``src`` to ``dst``.

    Points outside either CRS's domain come back as NaN. A same-CRS
    transform is a cheap pass-through.
    """
    if not isinstance(src, CRS) or not isinstance(dst, CRS):
        raise CRSError("transform_points requires CRS instances")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if src == dst:
        return x, y
    lon, lat = src.to_lonlat(x, y)
    return dst.from_lonlat(lon, lat)
