"""Spatial regions for stream restrictions.

Section 3.1 of the paper lists three ways to specify the region ``R`` of a
spatial restriction:

1. an enumeration of all (x, y) pairs — :class:`EnumeratedRegion`;
2. expressions of a constraint data model (polynomials over x, y) —
   :class:`ConstraintRegion` built from :class:`HalfPlane` or arbitrary
   polynomial constraints;
3. two corner points of a bounding rectangle — :class:`BoundingBox`,
   "commonly used in graphical user interfaces".

Every region knows its CRS, can test point membership vectorized, exposes a
bounding box for index/planning purposes, and (where well-defined) can be
transformed to another CRS — the operation the paper's query-rewriting
example needs when pushing a UTM-specified restriction below a
re-projection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import RegionError
from .crs import CRS, LATLON, transform_points

__all__ = [
    "Region",
    "BoundingBox",
    "PolygonRegion",
    "HalfPlane",
    "PolynomialConstraint",
    "ConstraintRegion",
    "EnumeratedRegion",
    "IntersectionRegion",
    "UnionRegion",
    "intersect_regions",
]


class Region:
    """Abstract spatial region in some CRS."""

    crs: CRS

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean membership for coordinate arrays in this region's CRS."""
        raise NotImplementedError

    @property
    def bounding_box(self) -> "BoundingBox":
        raise NotImplementedError

    def transformed(self, dst: CRS, densify: int = 33) -> "Region":
        """Return an equivalent (or conservative) region expressed in ``dst``."""
        raise RegionError(f"{type(self).__name__} cannot be transformed to another CRS")

    def contains_point(self, x: float, y: float) -> bool:
        return bool(self.mask(np.asarray([x]), np.asarray([y]))[0])


@dataclass(frozen=True)
class BoundingBox(Region):
    """Axis-aligned rectangle given by two corner points (paper option 3)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    crs: CRS = LATLON

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise RegionError(
                f"degenerate bounding box: ({self.xmin}, {self.ymin}) .. "
                f"({self.xmax}, {self.ymax})"
            )

    # -- geometry ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def is_degenerate(self) -> bool:
        return self.width == 0.0 or self.height == 0.0

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return (x >= self.xmin) & (x <= self.xmax) & (y >= self.ymin) & (y <= self.ymax)

    @property
    def bounding_box(self) -> "BoundingBox":
        return self

    def intersects(self, other: "BoundingBox") -> bool:
        self.crs.require_same(other.crs, "bounding-box intersection")
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
            self.crs,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        self.crs.require_same(other.crs, "bounding-box union")
        return BoundingBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
            self.crs,
        )

    def expanded(self, margin_x: float, margin_y: float | None = None) -> "BoundingBox":
        my = margin_x if margin_y is None else margin_y
        return BoundingBox(
            self.xmin - margin_x, self.ymin - my, self.xmax + margin_x, self.ymax + my, self.crs
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        self.crs.require_same(other.crs, "bounding-box containment")
        return (
            other.xmin >= self.xmin
            and other.xmax <= self.xmax
            and other.ymin >= self.ymin
            and other.ymax <= self.ymax
        )

    @staticmethod
    def from_points(x: np.ndarray, y: np.ndarray, crs: CRS = LATLON) -> "BoundingBox":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        good = np.isfinite(x) & np.isfinite(y)
        if not np.any(good):
            raise RegionError("cannot build a bounding box from only non-finite points")
        return BoundingBox(
            float(np.min(x[good])),
            float(np.min(y[good])),
            float(np.max(x[good])),
            float(np.max(y[good])),
            crs,
        )

    def corners(self) -> np.ndarray:
        """The four corners as an array of shape (4, 2), counterclockwise."""
        return np.asarray(
            [
                [self.xmin, self.ymin],
                [self.xmax, self.ymin],
                [self.xmax, self.ymax],
                [self.xmin, self.ymax],
            ]
        )

    def boundary_samples(self, n_per_edge: int = 33) -> tuple[np.ndarray, np.ndarray]:
        """Densified boundary points, used for conservative reprojection."""
        ts = np.linspace(0.0, 1.0, max(2, n_per_edge))
        xs = np.concatenate(
            [
                self.xmin + ts * self.width,
                np.full_like(ts, self.xmax),
                self.xmax - ts * self.width,
                np.full_like(ts, self.xmin),
            ]
        )
        ys = np.concatenate(
            [
                np.full_like(ts, self.ymin),
                self.ymin + ts * self.height,
                np.full_like(ts, self.ymax),
                self.ymax - ts * self.height,
            ]
        )
        return xs, ys

    def transformed(self, dst: CRS, densify: int = 33) -> "BoundingBox":
        """Conservative bounding box of this rectangle in another CRS.

        The rectangle's densified boundary (and interior grid, to handle
        projections whose extrema fall inside the rectangle) is
        transformed and re-boxed. The result *contains* the true image of
        the region, which is the property restriction pushdown needs.
        """
        if dst == self.crs:
            return self
        bx, by = self.boundary_samples(densify)
        gx, gy = np.meshgrid(
            np.linspace(self.xmin, self.xmax, 9), np.linspace(self.ymin, self.ymax, 9)
        )
        xs = np.concatenate([bx, gx.ravel()])
        ys = np.concatenate([by, gy.ravel()])
        tx, ty = transform_points(self.crs, dst, xs, ys)
        return BoundingBox.from_points(tx, ty, dst)


class PolygonRegion(Region):
    """A simple polygon region (even-odd rule, vectorized ray casting)."""

    def __init__(self, vertices: Sequence[tuple[float, float]], crs: CRS = LATLON) -> None:
        verts = np.asarray(vertices, dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
            raise RegionError("a polygon needs at least 3 (x, y) vertices")
        # Drop an explicit closing vertex if present.
        if np.allclose(verts[0], verts[-1]):
            verts = verts[:-1]
        if verts.shape[0] < 3:
            raise RegionError("a polygon needs at least 3 distinct vertices")
        self.vertices = verts
        self.crs = crs
        self._bbox = BoundingBox.from_points(verts[:, 0], verts[:, 1], crs)

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        shape = np.broadcast(x, y).shape
        px = np.broadcast_to(x, shape).ravel()
        py = np.broadcast_to(y, shape).ravel()
        inside = np.zeros(px.shape, dtype=bool)
        verts = self.vertices
        n = verts.shape[0]
        for i in range(n):
            x1, y1 = verts[i]
            x2, y2 = verts[(i + 1) % n]
            crosses = (y1 > py) != (y2 > py)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_at = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
            inside ^= crosses & (px < x_at)
        return inside.reshape(shape)

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def transformed(self, dst: CRS, densify: int = 33) -> "PolygonRegion":
        if dst == self.crs:
            return self
        # Densify each edge so curved images of straight edges stay covered.
        pts: list[np.ndarray] = []
        n = self.vertices.shape[0]
        ts = np.linspace(0.0, 1.0, max(2, densify), endpoint=False)
        for i in range(n):
            p0 = self.vertices[i]
            p1 = self.vertices[(i + 1) % n]
            pts.append(p0[None, :] + ts[:, None] * (p1 - p0)[None, :])
        dense = np.concatenate(pts, axis=0)
        tx, ty = transform_points(self.crs, dst, dense[:, 0], dense[:, 1])
        good = np.isfinite(tx) & np.isfinite(ty)
        if not np.any(good):
            raise RegionError("polygon lies entirely outside the target CRS domain")
        return PolygonRegion(np.stack([tx[good], ty[good]], axis=1), dst)


@dataclass(frozen=True)
class HalfPlane:
    """Linear constraint a*x + b*y <= c."""

    a: float
    b: float
    c: float

    def satisfied(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.a * x + self.b * y <= self.c


@dataclass(frozen=True)
class PolynomialConstraint:
    """Polynomial constraint p(x, y) <= 0 with terms {(i, j): coeff}.

    ``(i, j)`` are the powers of x and y. This is the paper's "expressions
    of a constraint data model, i.e., polynomials on variables x, y".
    """

    terms: tuple[tuple[tuple[int, int], float], ...]

    @staticmethod
    def from_dict(terms: dict[tuple[int, int], float]) -> "PolynomialConstraint":
        return PolynomialConstraint(tuple(sorted(terms.items())))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        total = np.zeros(np.broadcast(x, y).shape, dtype=float)
        for (i, j), coeff in self.terms:
            total = total + coeff * np.power(x, i) * np.power(y, j)
        return total

    def satisfied(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.evaluate(x, y) <= 0.0


class ConstraintRegion(Region):
    """Conjunction of constraints (paper option 2).

    Constraints may be :class:`HalfPlane`, :class:`PolynomialConstraint`,
    or any object with a ``satisfied(x, y) -> bool array`` method. A
    bounding box must be supplied (or derivable from half-planes) because
    constraint systems do not expose their extent cheaply.
    """

    def __init__(
        self,
        constraints: Iterable[HalfPlane | PolynomialConstraint],
        crs: CRS = LATLON,
        bounding_box: BoundingBox | None = None,
    ) -> None:
        self.constraints = tuple(constraints)
        if not self.constraints:
            raise RegionError("a constraint region needs at least one constraint")
        self.crs = crs
        if bounding_box is None:
            bounding_box = _halfplane_bbox(self.constraints, crs)
        if bounding_box is None:
            raise RegionError(
                "cannot derive a bounding box from these constraints; pass one explicitly"
            )
        self.crs.require_same(bounding_box.crs, "constraint region bounding box")
        self._bbox = bounding_box

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        out = np.ones(np.broadcast(x, y).shape, dtype=bool)
        for c in self.constraints:
            out &= c.satisfied(x, y)
        return out

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    @staticmethod
    def disk(cx: float, cy: float, radius: float, crs: CRS = LATLON) -> "ConstraintRegion":
        """(x-cx)^2 + (y-cy)^2 <= r^2 as a polynomial constraint region."""
        poly = PolynomialConstraint.from_dict(
            {
                (2, 0): 1.0,
                (0, 2): 1.0,
                (1, 0): -2.0 * cx,
                (0, 1): -2.0 * cy,
                (0, 0): cx * cx + cy * cy - radius * radius,
            }
        )
        bbox = BoundingBox(cx - radius, cy - radius, cx + radius, cy + radius, crs)
        return ConstraintRegion([poly], crs, bbox)


def _halfplane_bbox(
    constraints: Sequence[HalfPlane | PolynomialConstraint], crs: CRS
) -> BoundingBox | None:
    """Bounding box of a polytope given purely by axis-aligned half-planes."""
    xmin = ymin = -math.inf
    xmax = ymax = math.inf
    for c in constraints:
        if not isinstance(c, HalfPlane):
            return None
        if c.b == 0 and c.a > 0:
            xmax = min(xmax, c.c / c.a)
        elif c.b == 0 and c.a < 0:
            xmin = max(xmin, c.c / c.a)
        elif c.a == 0 and c.b > 0:
            ymax = min(ymax, c.c / c.b)
        elif c.a == 0 and c.b < 0:
            ymin = max(ymin, c.c / c.b)
        else:
            return None
    if any(not math.isfinite(v) for v in (xmin, ymin, xmax, ymax)):
        return None
    return BoundingBox(xmin, ymin, xmax, ymax, crs)


class EnumeratedRegion(Region):
    """Explicit enumeration of member points (paper option 1).

    Membership is tested to a snapping tolerance, which should be set to
    half the lattice resolution so each enumerated pair claims one pixel.
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float]],
        crs: CRS = LATLON,
        tolerance: float = 1e-9,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] == 0:
            raise RegionError("an enumerated region needs at least one (x, y) pair")
        if tolerance <= 0:
            raise RegionError("tolerance must be positive")
        self.crs = crs
        self.tolerance = tolerance
        self._keys = {self._key(float(px), float(py)) for px, py in pts}
        self._bbox = BoundingBox.from_points(pts[:, 0], pts[:, 1], crs).expanded(tolerance)
        self._points = pts

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (round(x / self.tolerance), round(y / self.tolerance))

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        shape = np.broadcast(x, y).shape
        px = np.broadcast_to(x, shape).ravel()
        py = np.broadcast_to(y, shape).ravel()
        kx = np.round(px / self.tolerance).astype(np.int64)
        ky = np.round(py / self.tolerance).astype(np.int64)
        out = np.fromiter(
            ((int(a), int(b)) in self._keys for a, b in zip(kx, ky)),
            dtype=bool,
            count=px.size,
        )
        return out.reshape(shape)

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def transformed(self, dst: CRS, densify: int = 33) -> "EnumeratedRegion":
        if dst == self.crs:
            return self
        tx, ty = transform_points(self.crs, dst, self._points[:, 0], self._points[:, 1])
        good = np.isfinite(tx) & np.isfinite(ty)
        if not np.any(good):
            raise RegionError("all enumerated points fall outside the target CRS domain")
        return EnumeratedRegion(np.stack([tx[good], ty[good]], axis=1), dst, self.tolerance)


class IntersectionRegion(Region):
    """Conjunction of regions; produced when merging stacked restrictions."""

    def __init__(self, parts: Sequence[Region]) -> None:
        if not parts:
            raise RegionError("intersection of zero regions")
        crs = parts[0].crs
        for p in parts[1:]:
            crs.require_same(p.crs, "region intersection")
        self.parts = tuple(parts)
        self.crs = crs
        bbox = parts[0].bounding_box
        for p in parts[1:]:
            nxt = bbox.intersection(p.bounding_box)
            if nxt is None:
                # Disjoint: represent as a degenerate box at the first corner.
                nxt = BoundingBox(bbox.xmin, bbox.ymin, bbox.xmin, bbox.ymin, crs)
                self._empty = True
                bbox = nxt
                break
            bbox = nxt
        else:
            self._empty = False
        self._bbox = bbox

    @property
    def is_empty_hint(self) -> bool:
        """True when the parts' bounding boxes are disjoint (definitely empty)."""
        return self._empty

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if self._empty:
            return np.zeros(np.broadcast(x, y).shape, dtype=bool)
        out = self.parts[0].mask(x, y)
        for p in self.parts[1:]:
            out = out & p.mask(x, y)
        return out

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def transformed(self, dst: CRS, densify: int = 33) -> "IntersectionRegion":
        return IntersectionRegion([p.transformed(dst, densify) for p in self.parts])


class UnionRegion(Region):
    """Disjunction of regions (e.g. several areas of interest in one query)."""

    def __init__(self, parts: Sequence[Region]) -> None:
        if not parts:
            raise RegionError("union of zero regions")
        crs = parts[0].crs
        for p in parts[1:]:
            crs.require_same(p.crs, "region union")
        self.parts = tuple(parts)
        self.crs = crs
        bbox = parts[0].bounding_box
        for p in parts[1:]:
            bbox = bbox.union(p.bounding_box)
        self._bbox = bbox

    def mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        out = self.parts[0].mask(x, y)
        for p in self.parts[1:]:
            out = out | p.mask(x, y)
        return out

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def transformed(self, dst: CRS, densify: int = 33) -> "UnionRegion":
        return UnionRegion([p.transformed(dst, densify) for p in self.parts])


def intersect_regions(r1: Region, r2: Region) -> Region:
    """Merge two regions into one, simplifying box-box intersections."""
    r1.crs.require_same(r2.crs, "region intersection")
    if isinstance(r1, BoundingBox) and isinstance(r2, BoundingBox):
        inter = r1.intersection(r2)
        if inter is None:
            return IntersectionRegion([r1, r2])  # carries the empty hint
        return inter
    return IntersectionRegion([r1, r2])
