"""Invariant checks over a live server's shared plan DAG.

The sharing layer (:mod:`repro.plan.stages`) keys everything on
structural fingerprints and per-stage subscriber refcounts. Those
invariants are cheap to state and catastrophic to violate silently —
a dangling edge delivers frames to a freed query; a refcount leak keeps
dead stages burning CPU forever. :func:`check_dag` re-derives them from
first principles so operators (and tests) can audit a running DSMS:

* **GS-DAG001** — two structurally different nodes sharing a fingerprint,
  or the fingerprint index pointing at the wrong stage.
* **GS-DAG002** — a fan-out edge (stage output or source tap) targeting a
  stage that is no longer part of the DAG.
* **GS-DAG003** — stage subscriber sets inconsistent with the server's
  registrations (unknown ids, or a registration whose stages dropped it).
* **GS-DAG004** — a terminal delivery edge with an empty roots set:
  results would be computed and delivered to nobody.
* **GS-DAG005** — epoch ownership drift: a live stage owned by zero
  epochs, owned by a query that does not subscribe to it, or stamped
  with an epoch other than its owner's current one.
* **GS-DAG006** — the current epoch's committed fingerprint set (what
  :class:`~repro.plan.epoch.EpochTransition` recorded) disagreeing with
  the stages actually subscribed — refcount drift across a hot swap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from ..errors import PlanError
from ..plan.stages import Edge, PlanDAG, Stage
from .diagnostics import Diagnostic, DiagnosticReport, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..server.dsms import DSMSServer

__all__ = ["check_dag", "check_server"]


def _edge_diags(
    edge: Edge,
    where: str,
    members: set[int],
) -> Iterable[Diagnostic]:
    if edge.stage is None and edge.sink is None:
        yield Diagnostic(
            code="GS-DAG002",
            severity=Severity.ERROR,
            message=f"{where}: edge has neither a target stage nor a sink",
        )
        return
    if edge.stage is not None and id(edge.stage) not in members:
        yield Diagnostic(
            code="GS-DAG002",
            severity=Severity.ERROR,
            message=(
                f"{where}: dangling fan-out edge targets stage "
                f"{edge.stage.node.describe()!r} which is not in the DAG"
            ),
        )
    if edge.stage is None and edge.sink is not None and not edge.roots:
        yield Diagnostic(
            code="GS-DAG004",
            severity=Severity.ERROR,
            message=(
                f"{where}: terminal delivery edge has no delivery roots — "
                "results would be computed for nobody"
            ),
        )


def check_dag(
    dag: PlanDAG,
    registrations: Mapping[int, Iterable[Stage]] | None = None,
) -> DiagnosticReport:
    """Audit one :class:`~repro.plan.stages.PlanDAG` against its invariants.

    ``registrations`` optionally maps registration id -> the stages that
    registration believes it owns (the server passes its own table);
    with it, subscriber refcounts are cross-checked both ways.
    """
    diagnostics: list[Diagnostic] = []
    members = {id(stage) for stage in dag.order}

    # Fingerprint uniqueness and index consistency.
    by_fp: dict[str, Stage] = {}
    for stage in dag.order:
        fp = stage.node.fingerprint
        other = by_fp.get(fp)
        if other is not None and other.node != stage.node:
            diagnostics.append(
                Diagnostic(
                    code="GS-DAG001",
                    severity=Severity.ERROR,
                    message=(
                        f"fingerprint collision: stages {other.node.describe()!r} "
                        f"and {stage.node.describe()!r} both fingerprint to {fp}"
                    ),
                )
            )
        by_fp[fp] = stage
    for fp, stage in dag._by_fingerprint.items():
        if stage.node.fingerprint != fp:
            diagnostics.append(
                Diagnostic(
                    code="GS-DAG001",
                    severity=Severity.ERROR,
                    message=(
                        f"fingerprint index is stale: slot {fp} holds stage "
                        f"{stage.node.describe()!r} whose fingerprint is "
                        f"{stage.node.fingerprint}"
                    ),
                )
            )

    # Edge targets (stage outputs and source taps) must stay in the DAG.
    for stage in dag.order:
        where = f"stage {stage.node.describe()!r}"
        for edge in stage.outputs:
            diagnostics.extend(_edge_diags(edge, where, members))
    for stream_id, edges in dag.taps.items():
        for edge in edges:
            diagnostics.extend(_edge_diags(edge, f"tap {stream_id!r}", members))

    # Subscriber refcounts versus the server's registration table.
    if registrations is not None:
        live = set(registrations)
        for stage in dag.order:
            unknown = stage.subscribers - live
            if unknown:
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG003",
                        severity=Severity.ERROR,
                        message=(
                            f"stage {stage.node.describe()!r} is subscribed to "
                            f"unregistered query id(s) {sorted(unknown)}"
                        ),
                    )
                )
            if not stage.subscribers:
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG003",
                        severity=Severity.ERROR,
                        message=(
                            f"stage {stage.node.describe()!r} has no subscribers "
                            "but is still wired into the DAG"
                        ),
                    )
                )
        for reg_id, stages in registrations.items():
            for stage in stages:
                if id(stage) not in members:
                    diagnostics.append(
                        Diagnostic(
                            code="GS-DAG003",
                            severity=Severity.ERROR,
                            message=(
                                f"registration {reg_id} owns stage "
                                f"{stage.node.describe()!r} which left the DAG"
                            ),
                        )
                    )
                elif reg_id not in stage.subscribers:
                    diagnostics.append(
                        Diagnostic(
                            code="GS-DAG003",
                            severity=Severity.ERROR,
                            message=(
                                f"registration {reg_id} owns stage "
                                f"{stage.node.describe()!r} but is not in its "
                                "subscriber set"
                            ),
                        )
                    )

    # Epoch bookkeeping (versioned plans / hot swap). Every live stage
    # must be owned by at least one epoch, ownership must mirror the
    # subscriber set, and every stamp must be its owner's *current*
    # epoch — a swap that left a stale stamp behind would let frame
    # provenance claim membership in a retired plan (GS-DAG005). And the
    # committed fingerprint set the transition recorded for the current
    # epoch must equal the stages actually subscribed: any difference is
    # refcount drift across the swap (GS-DAG006).
    if dag.epoch_of:
        for stage in dag.order:
            where = f"stage {stage.node.describe()!r}"
            if not stage.epochs:
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG005",
                        severity=Severity.ERROR,
                        message=f"{where} is owned by no epoch",
                    )
                )
                continue
            if set(stage.epochs) != set(stage.subscribers):
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG005",
                        severity=Severity.ERROR,
                        message=(
                            f"{where}: epoch owners {sorted(stage.epochs)} "
                            f"disagree with subscribers "
                            f"{sorted(stage.subscribers)}"
                        ),
                    )
                )
            for root, stamped in stage.epochs.items():
                current = dag.epoch_of.get(root)
                if current is not None and stamped != current:
                    diagnostics.append(
                        Diagnostic(
                            code="GS-DAG005",
                            severity=Severity.ERROR,
                            message=(
                                f"{where}: stamped epoch {stamped} for query "
                                f"{root} is not its current epoch {current}"
                            ),
                        )
                    )
        for root, epoch in sorted(dag.epoch_of.items()):
            live = dag.stage_fingerprints(root)
            try:
                committed = dag.stage_fingerprints(root, epoch=epoch)
            except PlanError:
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG006",
                        severity=Severity.ERROR,
                        message=(
                            f"query {root} is at epoch {epoch} but no such "
                            "epoch was ever committed"
                        ),
                    )
                )
                continue
            if committed != live:
                diagnostics.append(
                    Diagnostic(
                        code="GS-DAG006",
                        severity=Severity.ERROR,
                        message=(
                            f"query {root} epoch {epoch}: committed stage set "
                            f"{sorted(committed)} != live subscribed set "
                            f"{sorted(live)} (refcount drift across swap)"
                        ),
                    )
                )
    return DiagnosticReport(tuple(diagnostics))


def check_server(server: "DSMSServer") -> DiagnosticReport:
    """Audit a live :class:`~repro.server.dsms.DSMSServer`'s shared DAG.

    Cross-checks the DAG against the server's registration table and
    adds the SLO/shed-policy conflict check (GS-SLO002).
    """
    registrations = {
        reg_id: list(reg.stages) for reg_id, reg in server._registrations.items()
    }
    report = check_dag(server.plan_dag, registrations)
    monitor = server.slo_monitor
    if (
        monitor is not None
        and monitor.policy.escalate_shedding
        and server.ingest_shedder is None
    ):
        report = report.extend(
            DiagnosticReport(
                (
                    Diagnostic(
                        code="GS-SLO002",
                        severity=Severity.WARNING,
                        message=(
                            "SLO policy escalates shedding on breach, but the "
                            "server has no ingest shedder to escalate"
                        ),
                    ),
                )
            )
        )
    return report
