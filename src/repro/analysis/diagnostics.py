"""Diagnostics framework for static query/plan analysis.

Every finding the analyzer (:mod:`repro.analysis.checker`) or the DAG
selfcheck (:mod:`repro.analysis.selfcheck`) can emit is a
:class:`Diagnostic` with a *stable code* drawn from the :data:`CODES`
registry below. Codes never change meaning once published: tools,
tests, and docs key on them (docs/static-analysis.md is generated-by-hand
from this table and a test asserts the two stay in sync).

Severity semantics:

* ``error`` — the query can never behave as written (unsatisfiable,
  ill-typed, or the shared DAG is corrupt). ``repro check`` exits
  non-zero; ``DSMSServer.register_query(strict=True)`` refuses it.
* ``warning`` — the query runs but something is off (redundant
  reprojection, SLO budget likely blown). Promoted to failure by
  ``repro check --strict``.
* ``info`` — advisory only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Severity",
    "SourceSpan",
    "CodeInfo",
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
]


class Severity(enum.Enum):
    """How bad a diagnostic is; orderable (ERROR > WARNING > INFO)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank


@dataclass(frozen=True)
class SourceSpan:
    """Half-open character range ``[start, end)`` into the query text."""

    start: int
    end: int

    def excerpt(self, text: str) -> str:
        return text[self.start : self.end]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry documenting one stable diagnostic code."""

    code: str
    category: str  # syntax | reference | crs | value | satisfiability | operator | slo | dag
    severity: Severity
    title: str
    example: str  # a query (or scenario) that triggers the code
    hint: str  # the documented fix hint


def _code(
    code: str, category: str, severity: Severity, title: str, example: str, hint: str
) -> tuple[str, CodeInfo]:
    return code, CodeInfo(code, category, severity, title, example, hint)


#: Every diagnostic code the analyzer can emit. Stable once published.
CODES: dict[str, CodeInfo] = dict(
    (
        _code(
            "GS-SYN001",
            "syntax",
            Severity.ERROR,
            "query text does not parse",
            "within(reflectance(goes.vis)",
            "fix the syntax error reported by the parser at the given position",
        ),
        _code(
            "GS-REF001",
            "reference",
            Severity.ERROR,
            "query references an unknown source stream",
            "reflectance(goes.nope)",
            "use a stream id from the catalog (see `repro streams`)",
        ),
        _code(
            "GS-CRS001",
            "crs",
            Severity.ERROR,
            "composition mixes coordinate reference systems",
            "ndvi(reflectance(goes.nir), reproject(reflectance(goes.vis), 'utm:10'))",
            "reproject one operand so both sides of the composition share a CRS",
        ),
        _code(
            "GS-CRS002",
            "crs",
            Severity.ERROR,
            "restriction region cannot be mapped into the stream CRS",
            "within(goes.vis, bbox(0, 85, 10, 89, crs='latlon')) on a Mercator stream",
            "give the region in (or near) the stream's CRS, or loosen it past the "
            "projection's valid domain",
        ),
        _code(
            "GS-CRS003",
            "crs",
            Severity.WARNING,
            "reprojection target equals the current CRS (no-op)",
            "reproject(reflectance(goes.vis), 'geos:-135') on the GOES fixed grid",
            "drop the redundant reproject() — it only costs resampling error",
        ),
        _code(
            "GS-VAL001",
            "value",
            Severity.ERROR,
            "unknown operator kind or kernel",
            "stretch(goes.vis, 'sigmoid')",
            "use a documented kind (stretch: linear/equalize/gaussian; reproject "
            "methods: nearest/bilinear/bicubic; tagg funcs: mean/min/max/sum/count)",
        ),
        _code(
            "GS-VAL002",
            "value",
            Severity.ERROR,
            "value restriction range is empty (lo > hi)",
            "vrange(goes.vis, 0.8, 0.2)",
            "swap the bounds: vrange(e, lo, hi) keeps values with lo <= v <= hi",
        ),
        _code(
            "GS-VAL003",
            "value",
            Severity.ERROR,
            "value restriction is disjoint from the stream's value domain",
            "vrange(reflectance(goes.vis), 2.0, 3.0) — reflectance is [0, 1]",
            "restrict within the propagated value domain shown in the message",
        ),
        _code(
            "GS-VAL004",
            "value",
            Severity.ERROR,
            "band-arity mismatch in composition",
            "sup(rgb.composite, goes.vis) — 3 channels vs 1",
            "compose streams with equal channel counts (band arity)",
        ),
        _code(
            "GS-VAL005",
            "value",
            Severity.WARNING,
            "value restriction subsumes the whole value domain (no-op)",
            "vrange(reflectance(goes.vis), -10.0, 10.0) — reflectance is [0, 1]",
            "drop the restriction or tighten it to a sub-range of the domain",
        ),
        _code(
            "GS-VAL006",
            "value",
            Severity.WARNING,
            "division composition whose divisor domain includes zero",
            "reflectance(goes.nir) / rescale(reflectance(goes.vis), 1.0, -0.5)",
            "offset or restrict the divisor away from zero, or use ndvi()/evi2() "
            "macros which guard the denominator",
        ),
        _code(
            "GS-SAT001",
            "satisfiability",
            Severity.ERROR,
            "stacked spatial restrictions have an empty intersection",
            "within(within(e, bbox(0,0,1,1)), bbox(5,5,6,6))",
            "the query can never deliver a frame; merge or widen the regions",
        ),
        _code(
            "GS-SAT002",
            "satisfiability",
            Severity.ERROR,
            "spatial restriction is disjoint from the source frame extent",
            "within(goes.vis, bbox(170, -10, 175, -5)) — outside the scan footprint",
            "the query can never deliver a frame; move the region inside the "
            "source extent shown in the message",
        ),
        _code(
            "GS-SAT003",
            "satisfiability",
            Severity.ERROR,
            "temporal restriction is provably empty",
            "during(during(e, 0, 100), 200, 300)",
            "the query can never deliver a frame; widen or align the time windows",
        ),
        _code(
            "GS-SAT004",
            "satisfiability",
            Severity.ERROR,
            "scan-sector window lies outside the sector domain",
            "sectors(e, -5, -1) — sector ids start at 0",
            "sector ids count from 0 upward; use a non-negative window",
        ),
        _code(
            "GS-OP001",
            "operator",
            Severity.ERROR,
            "non-positive scale factor or window length",
            "magnify(e, 0) / tagg(e, 'mean', 0)",
            "magnify/coarsen factors and aggregate windows must be >= 1",
        ),
        _code(
            "GS-SLO001",
            "slo",
            Severity.WARNING,
            "estimated per-frame cost exceeds the SLO lag budget",
            "a calibrated Estimate.seconds of 2.5s against SLOPolicy(max_lag_s=1.0)",
            "simplify the query, shed load ahead of it, or relax the SLO budget",
        ),
        _code(
            "GS-SLO002",
            "slo",
            Severity.WARNING,
            "SLO escalates shedding but the server has no ingest shedder",
            "DSMSServer(catalog, slo=SLOPolicy(1.0, escalate_shedding=True))",
            "pass ingest_shedder= to the server or set escalate_shedding=False",
        ),
        _code(
            "GS-DAG001",
            "dag",
            Severity.ERROR,
            "plan fingerprint collision in the shared DAG",
            "two non-equal plan nodes hashing to one fingerprint slot",
            "a corrupted or hand-edited DAG; rebuild it by re-registering queries",
        ),
        _code(
            "GS-DAG002",
            "dag",
            Severity.ERROR,
            "dangling fan-out edge (target stage not in the DAG)",
            "an Edge whose stage was removed without detaching the producer",
            "deregister via DSMSServer.deregister so edges are detached atomically",
        ),
        _code(
            "GS-DAG003",
            "dag",
            Severity.ERROR,
            "refcount-inconsistent stage (subscribers do not match registrations)",
            "a stage subscribed to a query id that is no longer registered",
            "a corrupted DAG; rebuild it by re-registering the live queries",
        ),
        _code(
            "GS-DAG004",
            "dag",
            Severity.ERROR,
            "terminal delivery edge with no delivery roots",
            "a sink edge whose roots set is empty — results go nowhere",
            "a corrupted DAG; rebuild it by re-registering the live queries",
        ),
        _code(
            "GS-DAG005",
            "dag",
            Severity.ERROR,
            "epoch ownership drift (stage epochs disagree with subscribers)",
            "a stage owned by no epoch, or stamped with a retired epoch",
            "mutate stage membership only through plan.epoch.EpochTransition",
        ),
        _code(
            "GS-DAG006",
            "dag",
            Severity.ERROR,
            "committed epoch stage set disagrees with the live subscriptions",
            "refcount drift across a hot swap: grafted stages lost an owner",
            "a corrupted swap; re-register the query to rebuild its subplan",
        ),
    )
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding, tagged with a stable code from :data:`CODES`."""

    code: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    node: str | None = None  # describe() of the AST/plan node, when known
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"undocumented diagnostic code {self.code!r}")

    @property
    def category(self) -> str:
        return CODES[self.code].category

    def resolved_hint(self) -> str:
        return self.hint if self.hint is not None else CODES[self.code].hint

    def render(self, text: str | None = None) -> str:
        lines = [f"{self.severity.value}[{self.code}]: {self.message}"]
        if self.span is not None and text is not None:
            lines.extend(_render_span(text, self.span))
        elif self.node is not None:
            lines.append(f"  --> {self.node}")
        lines.append(f"  hint: {self.resolved_hint()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "category": self.category,
            "message": self.message,
            "hint": self.resolved_hint(),
        }
        if self.span is not None:
            out["span"] = {"start": self.span.start, "end": self.span.end}
        if self.node is not None:
            out["node"] = self.node
        return out


def _render_span(text: str, span: SourceSpan) -> list[str]:
    """`  --> line:col` plus the source line with a caret underline."""
    start = max(0, min(span.start, len(text)))
    line_no = text.count("\n", 0, start) + 1
    line_start = text.rfind("\n", 0, start) + 1
    line_end = text.find("\n", line_start)
    if line_end < 0:
        line_end = len(text)
    col = start - line_start
    line = text[line_start:line_end]
    width = max(1, min(span.end, line_end) - start)
    caret = " " * col + "^" + "~" * (width - 1)
    return [f"  --> {line_no}:{col + 1}", f"   | {line}", f"   | {caret}"]


@dataclass(frozen=True)
class DiagnosticReport:
    """All diagnostics from one analysis pass, plus the analyzed text."""

    diagnostics: tuple[Diagnostic, ...] = ()
    text: str | None = None

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-level diagnostics were found."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on errors (or, with ``strict``, warnings too)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def extend(self, more: "DiagnosticReport") -> "DiagnosticReport":
        return DiagnosticReport(self.diagnostics + more.diagnostics, self.text)

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics: query analyzes clean"
        ordered = sorted(
            self.diagnostics, key=lambda d: (-d.severity.rank, d.code)
        )
        blocks = [d.render(self.text) for d in ordered]
        tail = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(blocks) + "\n" + tail

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

