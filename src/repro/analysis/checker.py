"""Static semantic analysis of query trees and canonical plans.

The algebra is closed and every operator's effect on the stream's
*static type* — CRS, spatial extent, value domain, band arity, temporal
window — is known without executing anything. :func:`analyze` propagates
that type bottom-up through the AST (with source spans when the query
came in as text), then cross-checks the canonical plan IR, and reports
everything it can prove wrong as :class:`~repro.analysis.diagnostics.
Diagnostic` values with stable codes.

What is *provable* here is deliberately conservative: bounds are
propagated as supersets (an unknown bound stays unknown), so an emitted
error means the query genuinely cannot behave as written — never a
false alarm from a loose approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from ..core.timeset import TimeInterval, TimeSet
from ..errors import GeoStreamsError
from ..geo.crs import CRS
from ..geo.region import BoundingBox, Region
from ..plan import nodes as p
from ..plan.canonical import canonicalize
from ..plan.ops import VALUE_MAP_DEFAULTS
from ..query import ast as q
from ..query.calibration import CalibrationProfile
from ..query.parser import parse_query_spanned
from .diagnostics import Diagnostic, DiagnosticReport, Severity, SourceSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.slo import SLOPolicy
    from ..query.cost import StreamProfile
    from ..server.catalog import StreamCatalog

__all__ = ["analyze", "StaticContext"]

_STRETCH_KINDS = frozenset({"linear", "equalize", "gaussian"})
_RESAMPLE_METHODS = frozenset({"nearest", "bilinear", "bicubic"})
_AGG_FUNCS = frozenset({"mean", "min", "max", "sum", "count"})
_AGG_MODES = frozenset({"sliding", "tumbling"})
_GAMMAS = frozenset({"+", "-", "*", "/", "sup", "inf", "mosaic", "ndvi", "evi2"})
# Contrast stretches normalize onto the 8-bit display range.
_STRETCH_RANGE = (0.0, 255.0)


@dataclass(frozen=True)
class StaticContext:
    """Catalog-derived facts the analyzer can lean on (all optional)."""

    known_streams: frozenset[str] | None = None
    crs_of: Mapping[str, CRS] | None = None
    extents: Mapping[str, BoundingBox] | None = None
    value_bounds: Mapping[str, tuple[float | None, float | None]] | None = None
    channels: Mapping[str, int] | None = None
    profiles: "Mapping[str, StreamProfile] | None" = None

    @classmethod
    def from_catalog(cls, catalog: "StreamCatalog") -> "StaticContext":
        ids = list(catalog.ids())
        extents: dict[str, BoundingBox] = {}
        bounds: dict[str, tuple[float | None, float | None]] = {}
        channels: dict[str, int] = {}
        for sid in ids:
            extent = catalog.extent(sid)
            if extent is not None:
                extents[sid] = extent
            vset = catalog.get(sid).metadata.value_set
            bounds[sid] = (vset.lo, vset.hi)
            channels[sid] = vset.channels
        return cls(
            known_streams=frozenset(ids),
            crs_of=dict(catalog.crs_of()),
            extents=extents,
            value_bounds=bounds,
            channels=channels,
            profiles=catalog.profiles(),
        )


@dataclass(frozen=True)
class _Info:
    """Propagated static type of a sub-expression (None = unknown)."""

    crs: CRS | None = None
    bbox: BoundingBox | None = None  # carries its own CRS
    restricted: bool = False  # bbox tightened by a restriction already?
    lo: float | None = None
    hi: float | None = None
    channels: int | None = None
    t_lo: float = -math.inf  # accumulated measured-time window
    t_hi: float = math.inf
    s_lo: float = -math.inf  # accumulated scan-sector window
    s_hi: float = math.inf


class _Checker:
    def __init__(
        self,
        ctx: StaticContext,
        spans: Mapping[int, tuple[int, int]],
    ) -> None:
        self.ctx = ctx
        self.spans = spans
        self.diagnostics: list[Diagnostic] = []

    # -- emission -----------------------------------------------------------------

    def emit(
        self,
        code: str,
        message: str,
        node: q.QueryNode,
        severity: Severity,
        hint: str | None = None,
    ) -> None:
        span = self.spans.get(id(node))
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                span=SourceSpan(*span) if span is not None else None,
                node=node.describe(),
                hint=hint,
            )
        )

    def error(self, code: str, message: str, node: q.QueryNode, hint: str | None = None) -> None:
        self.emit(code, message, node, Severity.ERROR, hint)

    def warn(self, code: str, message: str, node: q.QueryNode, hint: str | None = None) -> None:
        self.emit(code, message, node, Severity.WARNING, hint)

    # -- the propagation walk -----------------------------------------------------

    def visit(self, node: q.QueryNode) -> _Info:
        method = getattr(self, f"_visit_{type(node).__name__.lower()}", None)
        if method is not None:
            return method(node)
        # Unknown node kinds flow through their first child untouched.
        children = node.children
        return self.visit(children[0]) if children else _Info()

    def _visit_streamref(self, node: q.StreamRef) -> _Info:
        sid = node.stream_id
        known = self.ctx.known_streams
        if known is not None and sid not in known:
            self.error(
                "GS-REF001",
                f"unknown stream {sid!r}; catalog has {sorted(known)}",
                node,
            )
            return _Info()
        crs = (self.ctx.crs_of or {}).get(sid)
        bbox = (self.ctx.extents or {}).get(sid)
        lo, hi = (self.ctx.value_bounds or {}).get(sid, (None, None))
        return _Info(
            crs=crs,
            bbox=bbox,
            lo=lo,
            hi=hi,
            channels=(self.ctx.channels or {}).get(sid),
        )

    def _visit_empty(self, node: q.Empty) -> _Info:
        self.error(
            "GS-SAT003",
            f"query contains a provably empty stream ({node.reason})",
            node,
        )
        return _Info()

    def _visit_spatialrestrict(self, node: q.SpatialRestrict) -> _Info:
        info = self.visit(node.child)
        region = node.region
        region_bb = self._region_bbox(region, node)
        if getattr(region, "is_empty_hint", False):
            self.error(
                "GS-SAT001",
                "restriction region is an empty intersection of regions",
                node,
            )
            return replace(info, restricted=True)
        target_crs = info.crs or (info.bbox.crs if info.bbox is not None else None)
        if region_bb is not None and target_crs is not None and region_bb.crs != target_crs:
            try:
                region_bb = region_bb.transformed(target_crs)
            except GeoStreamsError as exc:
                self.error(
                    "GS-CRS002",
                    f"region (crs {region_bb.crs.name}) cannot be mapped into the "
                    f"stream CRS {target_crs.name}: {exc}",
                    node,
                )
                return replace(info, restricted=True)
        if (
            region_bb is not None
            and info.bbox is not None
            and region_bb.crs == info.bbox.crs
        ):
            if not region_bb.intersects(info.bbox):
                if info.restricted:
                    self.error(
                        "GS-SAT001",
                        "spatial restriction is disjoint from the extent left by "
                        "earlier restrictions — the query can never deliver a frame",
                        node,
                    )
                else:
                    self.error(
                        "GS-SAT002",
                        f"region is disjoint from the source frame extent "
                        f"{_fmt_bbox(info.bbox)} — the query can never deliver a frame",
                        node,
                    )
                return replace(info, restricted=True)
            region_bb = region_bb.intersection(info.bbox)
        return replace(info, bbox=region_bb or info.bbox, restricted=True)

    def _region_bbox(self, region: Region, node: q.QueryNode) -> BoundingBox | None:
        try:
            return region.bounding_box
        except GeoStreamsError:
            return None

    def _visit_temporalrestrict(self, node: q.TemporalRestrict) -> _Info:
        info = self.visit(node.child)
        timeset = node.timeset
        if timeset.definitely_empty or _half_open_empty(timeset):
            self.error(
                "GS-SAT003",
                "temporal restriction window is empty — the query can never "
                "deliver a frame",
                node,
            )
            return info
        lo, hi = timeset.bounds()
        if node.on_sector:
            if hi < 0:
                self.error(
                    "GS-SAT004",
                    f"scan-sector window [{lo:g}, {hi:g}] lies entirely before "
                    "sector 0 — the query can never deliver a frame",
                    node,
                )
                return info
            new_lo, new_hi = max(info.s_lo, lo), min(info.s_hi, hi)
            if new_lo > new_hi:
                self.error(
                    "GS-SAT003",
                    "stacked scan-sector windows are disjoint — the query can "
                    "never deliver a frame",
                    node,
                )
            return replace(info, s_lo=new_lo, s_hi=new_hi)
        if isinstance(timeset, TimeInterval) or not _is_recurring(timeset):
            new_lo, new_hi = max(info.t_lo, lo), min(info.t_hi, hi)
            if new_lo > new_hi:
                self.error(
                    "GS-SAT003",
                    "stacked time windows are disjoint — the query can never "
                    "deliver a frame",
                    node,
                )
            return replace(info, t_lo=new_lo, t_hi=new_hi)
        return info

    def _visit_valuerestrict(self, node: q.ValueRestrict) -> _Info:
        info = self.visit(node.child)
        lo, hi = node.lo, node.hi
        if lo is not None and hi is not None and lo > hi:
            self.error(
                "GS-VAL002",
                f"value restriction [{lo:g}, {hi:g}] is empty (lo > hi)",
                node,
            )
            return info
        if info.lo is not None and hi is not None and hi < info.lo:
            self.error(
                "GS-VAL003",
                f"value restriction [.., {hi:g}] lies entirely below the stream's "
                f"value domain [{info.lo:g}, {_fmt(info.hi)}] — no value can match",
                node,
            )
            return info
        if info.hi is not None and lo is not None and lo > info.hi:
            self.error(
                "GS-VAL003",
                f"value restriction [{lo:g}, ..] lies entirely above the stream's "
                f"value domain [{_fmt(info.lo)}, {info.hi:g}] — no value can match",
                node,
            )
            return info
        if (
            info.lo is not None
            and info.hi is not None
            and (lo is None or lo <= info.lo)
            and (hi is None or hi >= info.hi)
        ):
            self.warn(
                "GS-VAL005",
                f"value restriction subsumes the stream's whole value domain "
                f"[{info.lo:g}, {info.hi:g}] — it never filters anything",
                node,
            )
        new_lo = info.lo if lo is None else (lo if info.lo is None else max(lo, info.lo))
        new_hi = info.hi if hi is None else (hi if info.hi is None else min(hi, info.hi))
        return replace(info, lo=new_lo, hi=new_hi)

    def _visit_valuemap(self, node: q.ValueMap) -> _Info:
        info = self.visit(node.child)
        if node.kind not in VALUE_MAP_DEFAULTS:
            self.error(
                "GS-VAL001",
                f"unknown value-map kind {node.kind!r}; known kinds: "
                f"{', '.join(sorted(VALUE_MAP_DEFAULTS))}",
                node,
            )
            return replace(info, lo=None, hi=None)
        lo, hi = _value_map_bounds(node, info.lo, info.hi)
        return replace(info, lo=lo, hi=hi)

    def _visit_stretch(self, node: q.Stretch) -> _Info:
        info = self.visit(node.child)
        if node.kind not in _STRETCH_KINDS:
            self.error(
                "GS-VAL001",
                f"unknown stretch kind {node.kind!r}; known kinds: "
                f"{', '.join(sorted(_STRETCH_KINDS))}",
                node,
            )
            return replace(info, lo=None, hi=None)
        return replace(info, lo=_STRETCH_RANGE[0], hi=_STRETCH_RANGE[1])

    def _visit_magnify(self, node: q.Magnify) -> _Info:
        info = self.visit(node.child)
        if node.k < 1:
            self.error(
                "GS-OP001", f"magnify factor must be >= 1, got {node.k}", node
            )
        return info

    def _visit_coarsen(self, node: q.Coarsen) -> _Info:
        info = self.visit(node.child)
        if node.k < 1:
            self.error(
                "GS-OP001", f"coarsen factor must be >= 1, got {node.k}", node
            )
        return info

    def _visit_rotate(self, node: q.Rotate) -> _Info:
        return self.visit(node.child)

    def _visit_reproject(self, node: q.Reproject) -> _Info:
        info = self.visit(node.child)
        if node.method not in _RESAMPLE_METHODS:
            self.error(
                "GS-VAL001",
                f"unknown resampling method {node.method!r}; known methods: "
                f"{', '.join(sorted(_RESAMPLE_METHODS))}",
                node,
            )
        if info.crs is not None and node.dst_crs == info.crs:
            self.warn(
                "GS-CRS003",
                f"reprojection to {node.dst_crs.name} is a no-op: the stream is "
                "already in that CRS",
                node,
            )
        bbox = info.bbox
        if bbox is not None and bbox.crs != node.dst_crs:
            try:
                bbox = bbox.transformed(node.dst_crs)
            except GeoStreamsError:
                bbox = None
        return replace(info, crs=node.dst_crs, bbox=bbox)

    def _visit_compose(self, node: q.Compose) -> _Info:
        left = self.visit(node.left)
        right = self.visit(node.right)
        if node.gamma not in _GAMMAS:
            self.error(
                "GS-VAL001",
                f"unknown composition kernel {node.gamma!r}; known kernels: "
                f"{', '.join(sorted(_GAMMAS))}",
                node,
            )
        if left.crs is not None and right.crs is not None and left.crs != right.crs:
            self.error(
                "GS-CRS001",
                f"composition mixes CRS {left.crs.name} (left) and "
                f"{right.crs.name} (right); frames cannot be matched pointwise",
                node,
            )
        if (
            left.channels is not None
            and right.channels is not None
            and left.channels != right.channels
        ):
            self.error(
                "GS-VAL004",
                f"band-arity mismatch: left has {left.channels} channel(s), "
                f"right has {right.channels}",
                node,
            )
        if (
            node.gamma == "/"
            and right.lo is not None
            and right.hi is not None
            and right.lo <= 0.0 <= right.hi
        ):
            self.warn(
                "GS-VAL006",
                f"divisor's value domain [{right.lo:g}, {right.hi:g}] includes "
                "zero; the quotient can be non-finite",
                node,
            )
        lo, hi = _compose_bounds(node.gamma, left, right)
        bbox = left.bbox
        if bbox is not None and right.bbox is not None and bbox.crs == right.bbox.crs:
            bbox = bbox.union(right.bbox)
        return _Info(
            crs=left.crs or right.crs,
            bbox=bbox,
            restricted=left.restricted or right.restricted,
            lo=lo,
            hi=hi,
            channels=left.channels or right.channels,
            t_lo=min(left.t_lo, right.t_lo),
            t_hi=max(left.t_hi, right.t_hi),
            s_lo=min(left.s_lo, right.s_lo),
            s_hi=max(left.s_hi, right.s_hi),
        )

    def _visit_temporalagg(self, node: q.TemporalAgg) -> _Info:
        info = self.visit(node.child)
        if node.func not in _AGG_FUNCS:
            self.error(
                "GS-VAL001",
                f"unknown aggregate function {node.func!r}; known functions: "
                f"{', '.join(sorted(_AGG_FUNCS))}",
                node,
            )
        if node.mode not in _AGG_MODES:
            self.error(
                "GS-VAL001",
                f"unknown aggregate mode {node.mode!r}; known modes: "
                f"{', '.join(sorted(_AGG_MODES))}",
                node,
            )
        if node.window < 1:
            self.error(
                "GS-OP001",
                f"aggregate window must be >= 1 frame, got {node.window}",
                node,
            )
            return info
        return replace(info, lo=_agg_lo(node, info), hi=_agg_hi(node, info))

    def _visit_regionagg(self, node: q.RegionAgg) -> _Info:
        info = self.visit(node.child)
        if node.func not in _AGG_FUNCS:
            self.error(
                "GS-VAL001",
                f"unknown aggregate function {node.func!r}; known functions: "
                f"{', '.join(sorted(_AGG_FUNCS))}",
                node,
            )
        target_crs = info.crs or (info.bbox.crs if info.bbox is not None else None)
        for name, region in node.regions:
            bb = self._region_bbox(region, node)
            if bb is None or target_crs is None or bb.crs == target_crs:
                continue
            try:
                bb.transformed(target_crs)
            except GeoStreamsError as exc:
                self.error(
                    "GS-CRS002",
                    f"aggregate region {name!r} (crs {bb.crs.name}) cannot be "
                    f"mapped into the stream CRS {target_crs.name}: {exc}",
                    node,
                )
        return replace(info, lo=None, hi=None)


# -- bound arithmetic (None = unknown/unbounded, propagated conservatively) -------


def _fmt(value: float | None) -> str:
    return "?" if value is None else f"{value:g}"


def _fmt_bbox(bbox: BoundingBox) -> str:
    return (
        f"[{bbox.xmin:g}, {bbox.ymin:g}, {bbox.xmax:g}, {bbox.ymax:g}] "
        f"({bbox.crs.name})"
    )


def _half_open_empty(timeset: TimeSet) -> bool:
    return (
        isinstance(timeset, TimeInterval)
        and timeset.start == timeset.end
        and not (timeset.closed_start and timeset.closed_end)
    )


def _is_recurring(timeset: TimeSet) -> bool:
    lo, hi = timeset.bounds()
    return math.isinf(lo) and math.isinf(hi)


def _value_map_bounds(
    node: q.ValueMap, lo: float | None, hi: float | None
) -> tuple[float | None, float | None]:
    kind = node.kind
    if kind == "reflectance":
        return 0.0, 1.0
    if kind == "rescale":
        gain = float(node.param("gain", 1.0))
        offset = float(node.param("offset", 0.0))
        a = None if lo is None else lo * gain + offset
        b = None if hi is None else hi * gain + offset
        return (b, a) if gain < 0 else (a, b)
    if kind == "negate":
        return (None if hi is None else -hi), (None if lo is None else -lo)
    if kind == "absolute":
        if lo is None or hi is None:
            return 0.0, None
        return 0.0, max(abs(lo), abs(hi))
    if kind == "gamma":
        exponent = float(node.param("exponent", 1.0))
        if lo is not None and hi is not None and lo >= 0.0 and exponent > 0:
            return lo**exponent, hi**exponent
        return None, None
    return None, None


def _compose_bounds(
    gamma: str, left: _Info, right: _Info
) -> tuple[float | None, float | None]:
    if gamma == "ndvi":
        return -1.0, 1.0
    if gamma == "evi2":
        return -2.5, 2.5
    ll, lh, rl, rh = left.lo, left.hi, right.lo, right.hi
    if gamma == "+":
        lo = None if ll is None or rl is None else ll + rl
        hi = None if lh is None or rh is None else lh + rh
        return lo, hi
    if gamma == "-":
        lo = None if ll is None or rh is None else ll - rh
        hi = None if lh is None or rl is None else lh - rl
        return lo, hi
    if gamma == "*":
        if None in (ll, lh, rl, rh):
            return None, None
        assert ll is not None and lh is not None and rl is not None and rh is not None
        prods = (ll * rl, ll * rh, lh * rl, lh * rh)
        return min(prods), max(prods)
    if gamma == "sup":
        lo = max((v for v in (ll, rl) if v is not None), default=None)
        hi = None if lh is None or rh is None else max(lh, rh)
        return lo, hi
    if gamma == "inf":
        lo = None if ll is None or rl is None else min(ll, rl)
        hi = min((v for v in (lh, rh) if v is not None), default=None)
        return lo, hi
    if gamma == "mosaic":
        lo = None if ll is None or rl is None else min(ll, rl)
        hi = None if lh is None or rh is None else max(lh, rh)
        return lo, hi
    return None, None  # "/" and unknown kernels: unbounded


def _agg_lo(node: q.TemporalAgg, info: _Info) -> float | None:
    if node.func == "count":
        return 0.0
    if node.func == "sum":
        return None if info.lo is None else min(0.0, node.window * info.lo)
    return info.lo


def _agg_hi(node: q.TemporalAgg, info: _Info) -> float | None:
    if node.func == "count":
        return float(node.window)
    if node.func == "sum":
        return None if info.hi is None else max(0.0, node.window * info.hi)
    return info.hi


# -- canonical-plan cross-checks --------------------------------------------------


def _check_canonical(
    tree: q.QueryNode,
    ctx: StaticContext,
    already: set[str],
) -> list[Diagnostic]:
    """Re-derive satisfiability over the *folded* canonical plan.

    Canonicalization merges adjacent restrictions, so emptiness that the
    AST walk can only see by accumulation shows up here as a single
    self-evidently-empty node. Also verifies the fingerprint invariants
    the sharing layer depends on (structurally distinct nodes must not
    collide).
    """
    diags: list[Diagnostic] = []

    def emit(code: str, message: str, node: p.PlanNode) -> None:
        if code in already:
            return  # the AST walk already reported this condition with a span
        diags.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                node=node.describe(),
            )
        )

    try:
        plan = canonicalize(tree, crs_of=ctx.crs_of)
    except GeoStreamsError:
        # CRS resolution failures surface through the AST walk (GS-CRS002).
        return diags

    by_fingerprint: dict[str, p.PlanNode] = {}
    for node in p.walk(plan):
        fp = node.fingerprint
        other = by_fingerprint.get(fp)
        if other is not None and other != node:
            emit(
                "GS-DAG001",
                f"fingerprint collision: {node.describe()} and {other.describe()} "
                f"both hash to {fp}",
                node,
            )
        by_fingerprint[fp] = node
        if isinstance(node, p.SpatialRestrict) and getattr(
            node.region, "is_empty_hint", False
        ):
            emit(
                "GS-SAT001",
                "folded spatial restrictions have an empty intersection — the "
                "query can never deliver a frame",
                node,
            )
        if isinstance(node, p.TemporalRestrict):
            if node.timeset.definitely_empty or _half_open_empty(node.timeset):
                emit(
                    "GS-SAT003",
                    "folded temporal restrictions are provably empty — the query "
                    "can never deliver a frame",
                    node,
                )
            elif node.on_sector and node.timeset.bounds()[1] < 0:
                emit(
                    "GS-SAT004",
                    "folded scan-sector window lies entirely before sector 0",
                    node,
                )
        if isinstance(node, p.ValueRestrict):
            if node.lo is not None and node.hi is not None and node.lo > node.hi:
                emit(
                    "GS-VAL002",
                    f"folded value restriction [{node.lo:g}, {node.hi:g}] is empty",
                    node,
                )
    return diags


# -- SLO-budget check -------------------------------------------------------------


def _check_slo(
    tree: q.QueryNode,
    ctx: StaticContext,
    slo: "SLOPolicy | float",
    calibration: CalibrationProfile | None,
    has_ingest_shedder: bool | None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    budget = float(getattr(slo, "max_lag_s", slo))  # type: ignore[arg-type]
    escalates = bool(getattr(slo, "escalate_shedding", False))
    if escalates and has_ingest_shedder is False:
        diags.append(
            Diagnostic(
                code="GS-SLO002",
                severity=Severity.WARNING,
                message=(
                    "SLO policy escalates shedding on breach, but the server has "
                    "no ingest shedder to escalate"
                ),
            )
        )
    if ctx.profiles is None:
        return diags
    from ..query.cost import estimate_query

    profile = calibration if calibration is not None else CalibrationProfile.uncalibrated()
    try:
        estimate, _ = estimate_query(tree, ctx.profiles, calibration=profile)
    except GeoStreamsError:
        return diags  # unknown streams etc. are reported elsewhere
    seconds = estimate.seconds
    if seconds is not None and seconds > budget:
        calib = "calibrated" if calibration is not None else "seed-priced"
        diags.append(
            Diagnostic(
                code="GS-SLO001",
                severity=Severity.WARNING,
                message=(
                    f"{calib} per-frame cost estimate {seconds:.3f}s exceeds the "
                    f"SLO lag budget {budget:g}s — breaches are likely by "
                    "construction"
                ),
            )
        )
    return diags


# -- entry point ------------------------------------------------------------------


def analyze(
    query: "str | q.QueryNode",
    catalog: "StreamCatalog | None" = None,
    *,
    context: StaticContext | None = None,
    slo: "SLOPolicy | float | None" = None,
    calibration: CalibrationProfile | None = None,
    has_ingest_shedder: bool | None = None,
) -> DiagnosticReport:
    """Statically analyze one query; returns every provable finding.

    ``query`` may be text (diagnostics then carry source spans) or an
    algebra tree. ``catalog`` (or an explicit ``context``) supplies the
    stream facts — CRS, frame extents, value domains, cost profiles —
    that unlock the deeper checks; without it only structural checks
    run. ``slo`` (an :class:`~repro.obs.slo.SLOPolicy` or a plain lag
    budget in seconds) enables the cost-versus-budget warning, priced by
    ``calibration`` when given.
    """
    ctx = context
    if ctx is None:
        ctx = StaticContext.from_catalog(catalog) if catalog is not None else StaticContext()

    text: str | None = None
    spans: dict[int, tuple[int, int]] = {}
    if isinstance(query, str):
        text = query
        try:
            tree, spans = parse_query_spanned(query)
        except GeoStreamsError as exc:
            # QuerySyntaxError proper, but also node-construction errors
            # (e.g. an inverted TimeInterval) raised while the parser
            # builds the tree: either way the text has no analyzable AST.
            diag = Diagnostic(
                code="GS-SYN001",
                severity=Severity.ERROR,
                message=str(exc),
                span=_span_from_message(query, str(exc)),
            )
            return DiagnosticReport((diag,), text)
    else:
        tree = query

    checker = _Checker(ctx, spans)
    checker.visit(tree)
    diagnostics = list(checker.diagnostics)

    already = {d.code for d in diagnostics}
    diagnostics.extend(_check_canonical(tree, ctx, already))

    if slo is not None:
        diagnostics.extend(
            _check_slo(tree, ctx, slo, calibration, has_ingest_shedder)
        )

    return DiagnosticReport(tuple(diagnostics), text)


def _span_from_message(text: str, message: str) -> SourceSpan | None:
    """Best-effort span for syntax errors that mention a position."""
    import re

    match = re.search(r"position (\d+)", message)
    if match is None:
        return None
    start = int(match.group(1))
    if start >= len(text):
        return None
    return SourceSpan(start, min(len(text), start + 1))
