"""Static semantic analysis for GeoStreams queries and plans.

Three entry points:

* :func:`analyze` — walk a query's AST and canonical plan and report
  every statically provable problem (CRS mismatches, empty
  restrictions, band-arity violations, SLO-budget conflicts) as
  :class:`Diagnostic` values with stable codes.
* :func:`check_dag` / :func:`check_server` — audit a live shared plan
  DAG against the fingerprint/refcount invariants sharing depends on.
* The :data:`CODES` registry — the documented catalogue every
  diagnostic code is drawn from (see docs/static-analysis.md).
"""

from .checker import StaticContext, analyze
from .diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticReport,
    Severity,
    SourceSpan,
)
from .selfcheck import check_dag, check_server

__all__ = [
    "analyze",
    "StaticContext",
    "check_dag",
    "check_server",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "SourceSpan",
]
