"""Streaming execution engine: pipelines, merging, statistics."""

from .pipeline import apply_operators, chunk_time, compose_streams, iter_pipeline_operators
from .stats import OperatorReport, format_report, pipeline_report

__all__ = [
    "apply_operators",
    "compose_streams",
    "chunk_time",
    "iter_pipeline_operators",
    "OperatorReport",
    "pipeline_report",
    "format_report",
]
