"""Push-based chunk pipeline executor.

Operators are composed into lazy GeoStreams (the algebra's closure
property): ``apply_operators`` chains unary operators onto a stream, and
``compose_streams`` merges two streams through a binary operator in
arrival-time order — simulating how chunks from two spectral channels
would interleave on the wire.

Re-opening a piped stream resets its operators first, so the same
declared query can be executed repeatedly (each benchmark run, each
registered continuous query evaluation). A pipeline is therefore not
safely iterable from two places *simultaneously*: each open invalidates
every earlier iterator, and pulling a stale one raises ``StreamError``
instead of silently corrupting the freshly-reset operator state. The
DSMS gives each registered query its own operator instances.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace
from itertools import islice
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..core.chunk import Chunk, GridChunk
from ..core.columnar import resolve_columnar
from ..core.stream import GeoStream
from ..errors import StreamError
from ..faults.recovery import current_recovery
from ..obs.stats import StatsCollector, current_collector
from ..obs.trace import FrameTracer, current_frame_tracer
from ..obs.tracing import Span, Tracer, current_tracer
from ..operators.base import BinaryOperator, Operator

if TYPE_CHECKING:
    from ..faults.recovery import RecoveryContext

__all__ = ["apply_operators", "compose_streams", "chunk_time", "iter_pipeline_operators"]


def _epoch_guard(
    it: Iterator[Chunk], state: dict, epoch: int, stream_id: str
) -> Iterator[Chunk]:
    """Invalidate an iterator once its pipeline has been re-opened.

    Opening a piped stream resets the (shared, mutable) operators, so any
    iterator from an earlier open would silently interleave with corrupted
    state. The check runs *before* each pull, so no operator ever sees a
    chunk from a stale iteration.
    """
    while True:
        if state["epoch"] != epoch:
            raise StreamError(
                f"piped stream {stream_id!r} was re-opened while a previous "
                "iteration was still in progress; a pipeline is not safely "
                "iterable from two places simultaneously (collect one "
                "iteration before starting another, or plan the query twice "
                "for independent operator state)"
            )
        try:
            chunk = next(it)
        except StopIteration:
            return
        yield chunk


def chunk_time(chunk: Chunk) -> float:
    """Arrival-order key of a chunk (first point's time for point batches)."""
    if isinstance(chunk, GridChunk):
        return float(chunk.t)
    return float(chunk.t[0]) if chunk.t.size else math.inf


class _FrameHopper:
    """Per-operator frame-trace hop recorder for the pull executor.

    Pull operators reuse the stats ledger key (``plan_fingerprint`` when
    the lowering stamped one, else ``pull:<name>``) so a hop in a frame
    trace cross-references the same per-subplan exemplar.
    """

    __slots__ = ("ftr", "key", "label", "kind", "pending")

    def __init__(self, ftr: FrameTracer, op: "Operator | BinaryOperator") -> None:
        fp = getattr(op, "plan_fingerprint", None)
        self.ftr = ftr
        self.key = fp or f"pull:{op.name}"
        self.kind = "stage" if fp else "pull"
        self.label = getattr(op, "plan_label", "") or op.name
        self.pending: list = []

    def observe(
        self, chunk: Chunk | None, outs: list[Chunk], t0: float, t1: float
    ) -> list[Chunk]:
        tctx = chunk.trace if chunk is not None else None
        if tctx is not None:
            self.ftr.record_hop(
                tctx,
                key=self.key,
                label=self.label,
                kind=self.kind,
                t0=t0,
                t1=t1,
                points_in=chunk.n_points,
                points_out=sum(c.n_points for c in outs),
                chunks_out=len(outs),
            )
        elif chunk is None and self.pending:
            # Flush of a buffering operator: account it against the
            # oldest buffered context (queue wait = time spent held).
            self.ftr.record_hop(
                self.pending[0],
                key=self.key,
                label=self.label,
                kind=self.kind,
                t0=t0,
                t1=t1,
                points_in=0,
                points_out=sum(c.n_points for c in outs),
                chunks_out=len(outs),
            )
        if outs:
            ctxs = self.pending + ([tctx] if tctx is not None else [])
            if ctxs:
                out_ctx = self.ftr.output_ctx(ctxs, self.key)
                outs = [dc_replace(c, trace=out_ctx) for c in outs]
                self.pending = []
        elif tctx is not None:
            self.pending.append(tctx)
        return outs


# Block size for the columnar pull executor. Large enough to amortize
# per-block overhead and expose cross-chunk batching to process_many
# overrides, small enough to keep the pipeline streaming (a 256-row block
# of 1-row chunks is a few frames, not the whole scan).
_BLOCK_CHUNKS = 256


def _block_feed(chunks: Iterable[Chunk], op: Operator) -> Iterator[Chunk]:
    """Bare-path columnar executor: drive ``process_many`` over blocks.

    Per-chunk generator setup dominates the bare pull path once kernels
    are vectorized, so in columnar mode fixed-size blocks of chunks go
    through one ``process_many`` call each. Output chunks, order, and
    stats are identical to the per-chunk loop; only call granularity
    changes. Stats/trace/recovery paths keep per-chunk feeding — their
    accounting is defined per processing call.
    """
    it = iter(chunks)
    while True:
        block = list(islice(it, _BLOCK_CHUNKS))
        if not block:
            break
        yield from op.process_many(block)
    yield from op.flush()


def _feed(chunks: Iterable[Chunk], op: Operator) -> Iterator[Chunk]:
    ctx = current_recovery()
    collector = current_collector()
    ftr = current_frame_tracer()
    if collector is not None or ftr is not None:
        yield from _stats_feed(chunks, op, collector, ctx, ftr)
        return
    if ctx is None:
        if op.columnar:
            yield from _block_feed(chunks, op)
            return
        for chunk in chunks:
            yield from op.process(chunk)
        yield from op.flush()
        return
    # Degrade-gracefully mode: a chunk the operator cannot process is
    # quarantined to the dead-letter sink instead of killing the pipeline.
    for chunk in chunks:
        yield from ctx.guard(op, chunk)
    yield from ctx.guard_flush(op)


def _stats_feed(
    chunks: Iterable[Chunk],
    op: Operator,
    collector: StatsCollector | None,
    ctx: "RecoveryContext | None",
    ftr: FrameTracer | None = None,
) -> Iterator[Chunk]:
    """Stats/trace-collecting variant of ``_feed`` for the pull executor.

    Pull pipelines have no shared stages, but the plan lowering stamps
    each operator with its plan node's fingerprint/kind, so observed
    statistics land in the same per-subplan ledgers the push DAG uses.
    Provenance tags, when present on inputs, are merged and re-stamped;
    a frame tracer, when installed, gets one hop per processing call.
    """
    entry = None
    if collector is not None:
        entry = collector.stage(
            getattr(op, "plan_fingerprint", None) or f"pull:{op.name}",
            label=getattr(op, "plan_label", "") or op.name,
            kind=getattr(op, "plan_kind", "") or type(op).__name__,
        )
    hopper = _FrameHopper(ftr, op) if ftr is not None else None
    prov = None

    def finish(
        chunk: Chunk | None, outs: list[Chunk], t0: float, t1: float
    ) -> list[Chunk]:
        nonlocal prov
        if entry is not None:
            entry.observe(
                points_in=chunk.n_points if chunk is not None else 0,
                points_out=sum(c.n_points for c in outs),
                bytes_in=chunk.nbytes if chunk is not None else 0,
                bytes_out=sum(c.nbytes for c in outs),
                chunks_out=len(outs),
                wall_s=t1 - t0,
                chunks_in=1 if chunk is not None else 0,
            )
            if collector.provenance:
                if chunk is not None and chunk.provenance is not None:
                    prov = (
                        chunk.provenance
                        if prov is None
                        else prov.merge(chunk.provenance)
                    )
                if prov is not None and outs:
                    tag = prov.with_stage(entry.fingerprint)
                    outs = [dc_replace(c, provenance=tag) for c in outs]
        if hopper is not None:
            outs = hopper.observe(chunk, outs, t0, t1)
        return outs

    for chunk in chunks:
        t0 = perf_counter()
        outs = list(op.process(chunk)) if ctx is None else ctx.guard(op, chunk)
        yield from finish(chunk, outs, t0, perf_counter())
    t0 = perf_counter()
    outs = list(op.flush()) if ctx is None else ctx.guard_flush(op)
    yield from finish(None, outs, t0, perf_counter())


def _traced_feed(
    chunks: Iterable[Chunk],
    op: Operator,
    span: Span,
    tracer: Tracer,
    ftr: FrameTracer | None = None,
) -> Iterator[Chunk]:
    """Traced variant of ``_feed``: per-chunk wall clock into ``span``.

    Each chunk's outputs are materialized before being yielded so the
    timed section covers only this operator's work, not the downstream
    consumers pulling on the generator.
    """
    ctx = current_recovery()
    hopper = _FrameHopper(ftr, op) if ftr is not None else None
    for chunk in chunks:
        t0 = perf_counter()
        outs = list(op.process(chunk)) if ctx is None else ctx.guard(op, chunk)
        t1 = perf_counter()
        dt = t1 - t0
        span.record(
            points_in=chunk.n_points,
            points_out=sum(c.n_points for c in outs),
            chunks_out=len(outs),
            wall_s=dt,
            stream_t=chunk_time(chunk),
        )
        tracer.observe_operator(op.name, dt)
        if hopper is not None:
            outs = hopper.observe(chunk, outs, t0, t1)
        yield from outs
    t0 = perf_counter()
    outs = list(op.flush()) if ctx is None else ctx.guard_flush(op)
    t1 = perf_counter()
    span.record(
        points_in=0,
        points_out=sum(c.n_points for c in outs),
        chunks_out=len(outs),
        wall_s=t1 - t0,
        chunks_in=0,
    )
    span.finish()
    if hopper is not None:
        outs = hopper.observe(None, outs, t0, t1)
    yield from outs


def apply_operators(
    stream: GeoStream,
    operators: Sequence[Operator],
    columnar: bool | None = None,
) -> GeoStream:
    """Pipe a stream through unary operators; the result is again a GeoStream.

    ``columnar`` selects the execution mode for every operator in the
    pipeline: True for the vectorized batch kernels, False for the
    per-point oracle, None for the ``REPRO_COLUMNAR`` process default.
    """
    operators = list(operators)
    for op in operators:
        if not isinstance(op, Operator):
            raise StreamError(
                f"{type(op).__name__} is not a unary Operator; use "
                "compose_streams for binary operators"
            )
    mode = resolve_columnar(columnar)
    for op in operators:
        op.set_execution_mode(mode)
    metadata = stream.metadata
    for op in operators:
        metadata = op.output_metadata(metadata)
    state = {"epoch": 0}

    def source() -> Iterator[Chunk]:
        state["epoch"] += 1
        epoch = state["epoch"]
        for op in operators:
            op.reset()
        it: Iterator[Chunk] = stream.chunks()
        tracer = current_tracer()
        if tracer is None:
            for op in operators:
                it = _feed(it, op)
        else:
            # Parent spans follow dataflow: each operator's span hangs off
            # the one feeding it, rooted at the upstream stream's tail span.
            ftr = current_frame_tracer()
            parent = tracer.span_for_stream(stream)
            for op in operators:
                span = tracer.begin_operator(op, parent=parent)
                it = _traced_feed(it, op, span, tracer, ftr)
                parent = span
            if parent is not None:
                tracer.bind_stream(result, parent)
        return _epoch_guard(it, state, epoch, metadata.stream_id)

    result = GeoStream(metadata, source)
    # Expose the pipeline for stats inspection and plan introspection.
    result.pipeline_operators = operators  # type: ignore[attr-defined]
    result.upstreams = (stream,)  # type: ignore[attr-defined]
    return result


def compose_streams(
    left: GeoStream,
    right: GeoStream,
    operator: BinaryOperator,
    columnar: bool | None = None,
) -> GeoStream:
    """Merge two streams through a binary operator (Def. 10).

    Chunks are fed to the operator in measured-time order across both
    inputs, reproducing the arrival interleaving a receiving station sees;
    the operator's buffering behaviour under a given interleaving is then
    exactly what Section 3.3 analyses. ``columnar`` selects the execution
    mode as in :func:`apply_operators`.
    """
    if not isinstance(operator, BinaryOperator):
        raise StreamError(f"{type(operator).__name__} is not a BinaryOperator")
    operator.set_execution_mode(resolve_columnar(columnar))
    metadata = operator.output_metadata(left.metadata, right.metadata)
    state = {"epoch": 0}

    def source() -> Iterator[Chunk]:
        state["epoch"] += 1
        epoch = state["epoch"]
        operator.reset()
        li, ri = left.chunks(), right.chunks()
        tracer = current_tracer()
        if tracer is None:
            return _epoch_guard(
                _merge(li, ri, operator), state, epoch, metadata.stream_id
            )
        lspan = tracer.span_for_stream(left)
        rspan = tracer.span_for_stream(right)
        span = tracer.begin_operator(
            operator,
            parent=lspan,
            inputs=[s.span_id for s in (lspan, rspan) if s is not None],
        )
        tracer.bind_stream(result, span)
        return _epoch_guard(
            _traced_merge(li, ri, operator, span, tracer, current_frame_tracer()),
            state, epoch, metadata.stream_id,
        )

    result = GeoStream(metadata, source)
    result.pipeline_operators = [operator]  # type: ignore[attr-defined]
    result.upstreams = (left, right)  # type: ignore[attr-defined]
    return result


def _merge(
    left: Iterator[Chunk], right: Iterator[Chunk], operator: BinaryOperator
) -> Iterator[Chunk]:
    ctx = current_recovery()
    collector = current_collector()
    ftr = current_frame_tracer()
    entry = None
    prov = None
    if collector is not None:
        entry = collector.stage(
            getattr(operator, "plan_fingerprint", None) or f"pull:{operator.name}",
            label=getattr(operator, "plan_label", "") or operator.name,
            kind=getattr(operator, "plan_kind", "") or type(operator).__name__,
        )
    hopper = _FrameHopper(ftr, operator) if ftr is not None else None

    def observe(
        chunk: Chunk | None, outs: list[Chunk], t0: float, t1: float
    ) -> list[Chunk]:
        nonlocal prov
        if entry is not None:
            entry.observe(
                points_in=chunk.n_points if chunk is not None else 0,
                points_out=sum(c.n_points for c in outs),
                bytes_in=chunk.nbytes if chunk is not None else 0,
                bytes_out=sum(c.nbytes for c in outs),
                chunks_out=len(outs),
                wall_s=t1 - t0,
                chunks_in=1 if chunk is not None else 0,
            )
            if collector.provenance:
                if chunk is not None and chunk.provenance is not None:
                    prov = (
                        chunk.provenance
                        if prov is None
                        else prov.merge(chunk.provenance)
                    )
                if prov is not None and outs:
                    tag = prov.with_stage(entry.fingerprint)
                    outs = [dc_replace(c, provenance=tag) for c in outs]
        if hopper is not None:
            outs = hopper.observe(chunk, outs, t0, t1)
        return outs

    def step(side: str, chunk: Chunk) -> Iterable[Chunk]:
        if entry is None and hopper is None:
            if ctx is None:
                return operator.process_side(side, chunk)
            return ctx.guard(operator, chunk, side)
        t0 = perf_counter()
        outs = (
            list(operator.process_side(side, chunk))
            if ctx is None
            else ctx.guard(operator, chunk, side)
        )
        return observe(chunk, outs, t0, perf_counter())

    lc = next(left, None)
    rc = next(right, None)
    while lc is not None or rc is not None:
        take_left = rc is None or (lc is not None and chunk_time(lc) <= chunk_time(rc))
        if take_left:
            assert lc is not None
            yield from step("left", lc)
            lc = next(left, None)
        else:
            assert rc is not None
            yield from step("right", rc)
            rc = next(right, None)
    if entry is None and hopper is None:
        if ctx is None:
            yield from operator.flush()
        else:
            yield from ctx.guard_flush(operator)
        return
    t0 = perf_counter()
    outs = list(operator.flush()) if ctx is None else ctx.guard_flush(operator)
    yield from observe(None, outs, t0, perf_counter())


def _traced_merge(
    left: Iterator[Chunk],
    right: Iterator[Chunk],
    operator: BinaryOperator,
    span: Span,
    tracer: Tracer,
    ftr: FrameTracer | None = None,
) -> Iterator[Chunk]:
    """Traced variant of ``_merge`` (same interleaving, timed sides)."""
    ctx = current_recovery()
    hopper = _FrameHopper(ftr, operator) if ftr is not None else None

    def step(side: str, chunk: Chunk) -> list[Chunk]:
        t0 = perf_counter()
        outs = (
            list(operator.process_side(side, chunk))
            if ctx is None
            else ctx.guard(operator, chunk, side)
        )
        t1 = perf_counter()
        dt = t1 - t0
        span.record(
            points_in=chunk.n_points,
            points_out=sum(c.n_points for c in outs),
            chunks_out=len(outs),
            wall_s=dt,
            stream_t=chunk_time(chunk),
        )
        tracer.observe_operator(operator.name, dt)
        if hopper is not None:
            outs = hopper.observe(chunk, outs, t0, t1)
        return outs

    lc = next(left, None)
    rc = next(right, None)
    while lc is not None or rc is not None:
        take_left = rc is None or (lc is not None and chunk_time(lc) <= chunk_time(rc))
        if take_left:
            assert lc is not None
            yield from step("left", lc)
            lc = next(left, None)
        else:
            assert rc is not None
            yield from step("right", rc)
            rc = next(right, None)
    t0 = perf_counter()
    outs = list(operator.flush()) if ctx is None else ctx.guard_flush(operator)
    t1 = perf_counter()
    span.record(
        points_in=0,
        points_out=sum(c.n_points for c in outs),
        chunks_out=len(outs),
        wall_s=t1 - t0,
        chunks_in=0,
    )
    span.finish()
    if hopper is not None:
        outs = hopper.observe(None, outs, t0, t1)
    yield from outs


def iter_pipeline_operators(stream: GeoStream) -> Iterator[Operator | BinaryOperator]:
    """Walk a piped stream's operator DAG upstream-first (for stats reports)."""
    upstreams = getattr(stream, "upstreams", ())
    for upstream in upstreams:
        yield from iter_pipeline_operators(upstream)
    yield from getattr(stream, "pipeline_operators", [])
