"""Execution statistics reporting.

Benchmarks and the DSMS inspect operator-level counters through these
helpers; the report format is what EXPERIMENTS.md rows are generated from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.stream import GeoStream
from ..operators.base import BinaryOperator, Operator, OperatorStats
from .pipeline import iter_pipeline_operators

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry

__all__ = ["OperatorReport", "pipeline_report", "format_report"]


@dataclass(frozen=True)
class OperatorReport:
    """Snapshot of one operator's counters after a run."""

    name: str
    repr: str
    points_in: int
    points_out: int
    chunks_in: int
    chunks_out: int
    max_buffered_points: int
    max_buffered_bytes: int
    nonblocking: bool
    mean_wait_time: float = 0.0
    max_wait_time: float = 0.0
    accounting_errors: int = 0

    @staticmethod
    def from_operator(op: Operator | BinaryOperator) -> "OperatorReport":
        s: OperatorStats = op.stats
        return OperatorReport(
            name=op.name,
            repr=repr(op),
            points_in=s.points_in,
            points_out=s.points_out,
            chunks_in=s.chunks_in,
            chunks_out=s.chunks_out,
            max_buffered_points=s.max_buffered_points,
            max_buffered_bytes=s.max_buffered_bytes,
            nonblocking=s.is_nonblocking,
            mean_wait_time=s.mean_wait_time,
            max_wait_time=s.wait_time_max,
            accounting_errors=s.accounting_errors,
        )


def pipeline_report(stream: GeoStream) -> list[OperatorReport]:
    """Reports for every operator reachable upstream of ``stream``.

    Call after consuming the stream; counters reflect the most recent run.
    """
    return [OperatorReport.from_operator(op) for op in iter_pipeline_operators(stream)]


def format_report(
    reports: Sequence[OperatorReport], registry: "MetricsRegistry | None" = None
) -> str:
    """Human-readable table of operator counters.

    Columns mirror the :class:`OperatorReport` fields: point and chunk
    throughput, buffering high-water marks, and both mean and max wait
    times (a composition's typical vs worst-case partner wait differ by
    orders of magnitude under sequential band scans).

    Passing a :class:`~repro.obs.registry.MetricsRegistry` appends a
    quantile section: interpolated p50/p95/p99 for every histogram the
    run published (delivery lag, per-operator wall time, ...).
    """
    header = (
        f"{'operator':<28} {'pts_in':>10} {'pts_out':>10} {'chunks_in/out':>13} "
        f"{'max_buf_pts':>12} {'max_buf_KB':>11} {'mean_wait_s':>12} {'max_wait_s':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        chunks = f"{r.chunks_in}/{r.chunks_out}"
        mean_wait = f"{r.mean_wait_time:.1f}" if r.mean_wait_time else "-"
        max_wait = f"{r.max_wait_time:.1f}" if r.max_wait_time else "-"
        lines.append(
            f"{r.repr:<28.28} {r.points_in:>10} {r.points_out:>10} {chunks:>13} "
            f"{r.max_buffered_points:>12} {r.max_buffered_bytes / 1024:>11.1f} "
            f"{mean_wait:>12} {max_wait:>11}"
        )
    if registry is not None:
        quantile_lines = []
        for metric in registry:
            if metric.kind != "histogram":
                continue
            snap = metric.snapshot()
            if not snap["count"]:
                continue
            label_text = ",".join(f"{k}={v}" for k, v in sorted(snap["labels"].items()))
            name = snap["name"] + (f"{{{label_text}}}" if label_text else "")

            def fmt(v: float | None) -> str:
                return f"{v:.4g}" if v is not None else "-"

            quantile_lines.append(
                f"  {name:<48.48} p50 {fmt(snap['p50']):>9} "
                f"p95 {fmt(snap['p95']):>9} p99 {fmt(snap['p99']):>9} "
                f"(n={snap['count']})"
            )
        if quantile_lines:
            lines.append("")
            lines.append("histogram quantiles (interpolated from buckets):")
            lines.extend(quantile_lines)
    return "\n".join(lines)
