"""Multi-stream arrival scheduling.

The DSMS consumes several source streams (one per spectral channel) and
must process chunks in global arrival order — the interleaving a
receiving station would see on the downlink. ``merge_sources`` performs a
k-way merge by measured timestamp; ties break by registration order so
runs are deterministic.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Iterator, Mapping

from ..core.chunk import Chunk
from ..core.stream import GeoStream
from ..errors import RecoveryExhausted, SourceDisconnected
from ..faults.recovery import current_recovery
from ..obs.tracing import current_tracer
from .pipeline import chunk_time

__all__ = ["merge_sources"]


def _advance(it: Iterator[Chunk], stream_id: str) -> Chunk | None:
    """Next chunk of one source, dropping the source on terminal failure.

    With a recovery context installed, a source whose reconnect budget is
    exhausted (or that disconnects without a resilient wrapper) is removed
    from the merge while the other sources keep flowing — the k-way scan
    degrades instead of dying. Without a context, failures propagate.
    """
    try:
        return next(it, None)
    except (RecoveryExhausted, SourceDisconnected) as exc:
        ctx = current_recovery()
        if ctx is None:
            raise
        ctx.quarantine(None, reason="source-lost", stage=stream_id, error=exc)
        return None


def merge_sources(
    sources: Mapping[str, GeoStream],
) -> Iterator[tuple[str, Chunk]]:
    """Yield (stream_id, chunk) across all sources in timestamp order."""
    tracer = current_tracer()
    span = (
        tracer.begin_span(
            "merge-sources", kind="scheduler", sources=sorted(sources)
        )
        if tracer is not None
        else None
    )
    started = perf_counter()
    heap: list[tuple[float, int, int, str, Chunk, Iterator[Chunk]]] = []
    seq = 0
    for order, (stream_id, stream) in enumerate(sources.items()):
        it = iter(stream.chunks())
        first = _advance(it, stream_id)
        if first is not None:
            heapq.heappush(heap, (chunk_time(first), order, seq, stream_id, first, it))
            seq += 1
    try:
        while heap:
            t, order, _, stream_id, chunk, it = heapq.heappop(heap)
            if span is not None:
                span.record(
                    points_in=chunk.n_points,
                    points_out=chunk.n_points,
                    chunks_out=1,
                    wall_s=0.0,
                    stream_t=t,
                )
            yield stream_id, chunk
            nxt = _advance(it, stream_id)
            if nxt is not None:
                heapq.heappush(heap, (chunk_time(nxt), order, seq, stream_id, nxt, it))
                seq += 1
    finally:
        if span is not None:
            # The merge's own work is negligible; its wall clock is the
            # whole scan (downstream consumers run between yields).
            span.wall_time_s = perf_counter() - started
            span.finish()
