"""Fault specification: which faults to inject, how often, under which seed.

Real GOES feeds are not the always-on downlink of Fig. 3: scans drop,
counts corrupt, sectors truncate, links stall and disconnect. A
:class:`FaultSpec` describes one such weather pattern *deterministically*
— the same spec and seed always injects the same faults into the same
stream — so chaos tests can assert exact recovery behaviour.

Spec grammar (the CLI's ``--inject-faults`` argument)::

    SPEC     := "default" | "none" | field ("," field)*
    field    := KEY "=" VALUE
    KEY      := drop | dup | reorder | bitflip | outrange | truncate
              | stall | disconnect | seed
    drop/dup/reorder/bitflip/outrange/truncate take a probability in [0, 1]
    stall    := PROB | PROB ":" SECONDS       (simulated-time delay)
    disconnect := COUNT | COUNT "@" CHUNKS    (disconnects per scan, position)
    seed     := INT

Examples::

    drop=0.05,dup=0.02,seed=42
    stall=0.1:30,disconnect=2@20
    default                       # every class at its default intensity
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import FaultError

__all__ = ["FaultSpec", "FAULT_KINDS", "DEFAULT_INTENSITY"]

# Every fault class the injector knows, in injection-decision order.
FAULT_KINDS = (
    "drop",       # chunk silently lost
    "dup",        # chunk delivered twice
    "reorder",    # chunk swapped with its successor
    "bitflip",    # counts corrupted by a flipped high bit
    "outrange",   # counts pushed beyond the declared value set
    "truncate",   # the rest of the chunk's scan sector is lost
    "stall",      # simulated-time delay before delivery
    "disconnect", # the source connection drops mid-scan
)

# Default per-class intensity used by ``FaultSpec.default()`` /
# ``FaultSpec.single()`` — the "default intensity" the chaos acceptance
# criterion refers to. High enough that even a 3-frame test stream is
# guaranteed to see each class under the pinned seeds.
DEFAULT_INTENSITY: dict[str, float] = {
    "drop": 0.15,
    "dup": 0.15,
    "reorder": 0.20,
    "bitflip": 0.12,
    "outrange": 0.12,
    "truncate": 0.10,
    "stall": 0.15,
    "disconnect": 1.0,  # count, not probability
}


def _prob(key: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise FaultError(f"fault spec: {key} needs a number, got {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"fault spec: {key} probability {value} outside [0, 1]")
    return value


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic description of the faults to inject into a stream."""

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    bitflip: float = 0.0
    outrange: float = 0.0
    truncate: float = 0.0
    stall: float = 0.0
    stall_seconds: float = 30.0
    disconnect: int = 0
    disconnect_after: int = 20  # chunks delivered before each disconnect

    def __post_init__(self) -> None:
        for key in ("drop", "dup", "reorder", "bitflip", "outrange", "truncate", "stall"):
            value = getattr(self, key)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"fault spec: {key} probability {value} outside [0, 1]")
        if self.stall_seconds < 0:
            raise FaultError("fault spec: stall seconds must be >= 0")
        if self.disconnect < 0 or self.disconnect_after < 1:
            raise FaultError("fault spec: disconnect count must be >= 0, position >= 1")

    # -- constructors -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the spec grammar (see module docstring)."""
        text = text.strip()
        if not text or text == "none":
            return cls()
        fields: dict[str, object] = {}
        base = cls()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "default":
                base = cls.default(seed=int(fields.get("seed", 0)))  # type: ignore[arg-type]
                continue
            if "=" not in part:
                raise FaultError(f"fault spec: expected key=value, got {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                try:
                    fields["seed"] = int(value)
                except ValueError:
                    raise FaultError(f"fault spec: seed must be an integer, got {value!r}") from None
            elif key == "stall":
                prob, _, seconds = value.partition(":")
                fields["stall"] = _prob("stall", prob)
                if seconds:
                    try:
                        fields["stall_seconds"] = float(seconds)
                    except ValueError:
                        raise FaultError(
                            f"fault spec: stall takes PROB[:SECONDS], got {value!r}"
                        ) from None
            elif key == "disconnect":
                count, _, after = value.partition("@")
                try:
                    fields["disconnect"] = int(count)
                    if after:
                        fields["disconnect_after"] = int(after)
                except ValueError:
                    raise FaultError(
                        f"fault spec: disconnect takes COUNT[@CHUNKS], got {value!r}"
                    ) from None
            elif key in FAULT_KINDS:
                fields[key] = _prob(key, value)
            else:
                raise FaultError(
                    f"fault spec: unknown key {key!r}; expected one of "
                    f"{FAULT_KINDS + ('seed',)}"
                )
        return replace(base, **fields)  # type: ignore[arg-type]

    @classmethod
    def default(cls, seed: int = 0) -> "FaultSpec":
        """Every fault class at its default intensity."""
        return cls(
            seed=seed,
            drop=DEFAULT_INTENSITY["drop"],
            dup=DEFAULT_INTENSITY["dup"],
            reorder=DEFAULT_INTENSITY["reorder"],
            bitflip=DEFAULT_INTENSITY["bitflip"],
            outrange=DEFAULT_INTENSITY["outrange"],
            truncate=DEFAULT_INTENSITY["truncate"],
            stall=DEFAULT_INTENSITY["stall"],
            disconnect=int(DEFAULT_INTENSITY["disconnect"]),
        )

    @classmethod
    def single(cls, kind: str, seed: int = 0) -> "FaultSpec":
        """Only one fault class, at its default intensity."""
        if kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        if kind == "disconnect":
            return cls(seed=seed, disconnect=int(DEFAULT_INTENSITY[kind]))
        return cls(seed=seed, **{kind: DEFAULT_INTENSITY[kind]})  # type: ignore[arg-type]

    # -- introspection ------------------------------------------------------

    @property
    def active_kinds(self) -> tuple[str, ...]:
        """The fault classes this spec actually injects."""
        out = [
            k
            for k in ("drop", "dup", "reorder", "bitflip", "outrange", "truncate", "stall")
            if getattr(self, k) > 0.0
        ]
        if self.disconnect > 0:
            out.append("disconnect")
        return tuple(out)

    def to_string(self) -> str:
        """Round-trippable spec text (``FaultSpec.parse`` inverse)."""
        parts = [f"seed={self.seed}"]
        for key in ("drop", "dup", "reorder", "bitflip", "outrange", "truncate"):
            value = getattr(self, key)
            if value > 0.0:
                parts.append(f"{key}={value:g}")
        if self.stall > 0.0:
            parts.append(f"stall={self.stall:g}:{self.stall_seconds:g}")
        if self.disconnect > 0:
            parts.append(f"disconnect={self.disconnect}@{self.disconnect_after}")
        return ",".join(parts)

    def __str__(self) -> str:
        return self.to_string()
