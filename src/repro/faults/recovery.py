"""Failure recovery: backoff, quarantine, frame guarding, resilient sources.

TerraServer's operational lesson (Barclay/Gray/Slutz) is that availability
comes from *systematic failure drills*, not failure-free design. This
module is the drill's recovery side, matched one-to-one to the fault
classes of :mod:`repro.faults.injector`:

========================  ==============================================
fault                     recovery path
========================  ==============================================
disconnect                :func:`resilient_stream` — retry with
                          exponential backoff + jitter and a deadline,
                          resuming after the last delivered chunk
drop / truncate           :class:`FrameGuard` quarantines the incomplete
                          frame so partial imagery is never delivered
dup                       :class:`FrameGuard` suppresses the duplicate
reorder                   :class:`FrameGuard` re-sorts the frame's rows
                          into canonical scan order before release
bitflip / outrange        :class:`FrameGuard` value-set validation routes
                          the poison chunk to the dead-letter sink
stall                     a simulated clock records the delay; the DSMS
                          escalates load shedding under sustained stall
operator error            the engine/push network quarantines the chunk
                          via :meth:`RecoveryContext.guard` instead of
                          crashing the pipeline
========================  ==============================================

Everything is deterministic under a fixed seed (the stream-as-function
view of Herbst et al.: a recovered stream must be *semantically equal* to
the unfaulted one for every timestamp it still delivers), and everything
is observable through ``repro_faults_*`` metrics.

Recovery is opt-in, mirroring the observability layer: install a
:class:`RecoveryContext` (usually via the :func:`recovering` context
manager) and the engine, push compiler, stream generator, and DSMS all
degrade gracefully instead of raising. With no context installed they
behave exactly as before — fail fast.
"""

from __future__ import annotations

import contextlib
import random
import time as _time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Iterator, Optional

import numpy as np

from ..core.chunk import Chunk, GridChunk
from ..core.stream import GeoStream
from ..core.valueset import ValueSet
from ..errors import GeoStreamsError, RecoveryExhausted, SourceDisconnected
from ..obs.registry import get_registry, metrics_enabled
from ..obs.timeline import current_journal
from ..obs.trace import current_frame_tracer
from ..operators.base import BinaryOperator, Operator

__all__ = [
    "SimClock",
    "SystemClock",
    "BackoffPolicy",
    "DeadLetter",
    "DeadLetterSink",
    "RecoveryContext",
    "current_recovery",
    "install_recovery",
    "clear_recovery",
    "recovering",
    "resilient_stream",
    "FrameGuard",
]


# -- clocks -----------------------------------------------------------------


class SimClock:
    """Deterministic simulated clock: ``sleep`` advances time instantly.

    The stall injector and the backoff scheduler both sleep on a clock;
    using a :class:`SimClock` makes stalls and retry schedules exact and
    free of wall-clock time, so chaos tests are bit-reproducible and
    timing-robust on loaded CI machines.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.total_slept = 0.0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self._now += seconds
        self.total_slept += seconds
        self.sleeps.append(seconds)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:g}, slept={self.total_slept:g}s)"


class SystemClock:
    """Wall-clock implementation of the same interface (production use)."""

    def now(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        _time.sleep(max(0.0, seconds))


# -- backoff ----------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter and a hard deadline.

    ``schedule()`` is a pure function of the policy (including its seed):
    retry delay *i* is ``min(base * factor**i, max_delay)`` stretched by a
    jitter factor in ``[1, 1 + jitter]`` drawn from a seeded RNG. Recovery
    gives up — raising :class:`~repro.errors.RecoveryExhausted` — after
    ``max_retries`` attempts or once cumulative backoff would exceed
    ``deadline`` seconds, whichever comes first.
    """

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.25
    max_retries: int = 8
    deadline: float = 600.0
    seed: int = 0

    def schedule(self) -> list[float]:
        """The full deterministic delay sequence for one recovery episode."""
        rng = random.Random(self.seed)
        return [
            min(self.base * self.factor**i, self.max_delay) * (1.0 + self.jitter * rng.random())
            for i in range(self.max_retries)
        ]


# -- dead-letter sink -------------------------------------------------------


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined item: the poison data plus why and where it died."""

    item: object
    reason: str
    stage: str
    error: str = ""


class DeadLetterSink:
    """Bounded store of quarantined chunks/records (never crashes the run).

    Poison data is routed here instead of propagating an exception through
    the pipeline; the ``repro_faults_quarantined_total`` counter (labelled
    by reason) and the ``repro_faults_dead_letter_depth`` gauge track it.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.entries: list[DeadLetter] = []
        self.total = 0
        self.dropped = 0  # entries evicted once capacity was reached

    def add(self, item: object, reason: str, stage: str = "", error: str = "") -> None:
        self.total += 1
        if len(self.entries) >= self.capacity:
            self.entries.pop(0)
            self.dropped += 1
        self.entries.append(DeadLetter(item, reason, stage, error))
        if metrics_enabled():
            registry = get_registry()
            registry.counter("repro_faults_quarantined_total", reason=reason).inc()
            registry.gauge("repro_faults_dead_letter_depth").set(len(self.entries))

    @property
    def by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.reason] = out.get(entry.reason, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"DeadLetterSink({self.total} quarantined, {len(self.entries)} held)"


# -- recovery context -------------------------------------------------------


@dataclass
class RecoveryContext:
    """Shared recovery state: clock, backoff policy, dead-letter, knobs.

    Installing a context (see :func:`recovering`) switches the engine, the
    push compiler, the stream generator, and the DSMS from fail-fast to
    degrade-gracefully. All recovery decisions and all quarantined data
    flow through this object, so one context gives a complete post-mortem
    of a chaotic run.
    """

    clock: SimClock | SystemClock = field(default_factory=SimClock)
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    dead_letter: DeadLetterSink = field(default_factory=DeadLetterSink)
    # Per-chunk operator wall-clock budget; exceeding it only counts (the
    # result is still used — a slow answer beats no answer).
    op_timeout_s: Optional[float] = None
    # A clock gap at least this long between consecutive scan chunks is a
    # stall; the DSMS escalates its ingest shedder when it sees one.
    stall_threshold_s: float = 10.0
    # Consecutive normal-gap chunks before escalated shedding relaxes.
    stall_relax_after: int = 16
    # -- episode counters ---------------------------------------------------
    retries: int = 0
    stalls_observed: int = 0
    op_timeouts: dict[str, int] = field(default_factory=dict)
    sources_lost: int = 0

    # -- quarantine ---------------------------------------------------------

    def quarantine(
        self, item: object, reason: str, stage: str = "", error: Exception | None = None
    ) -> None:
        self.dead_letter.add(item, reason, stage, str(error) if error else "")
        journal = current_journal()
        if journal is not None:
            # Same string the flight recorder pins with, so the journal
            # entry clicks through to the quarantined frame's capture.
            journal.append(
                "dead-letter",
                reason=f"{reason} stage={stage}" if stage else reason,
                link=f"recovery:quarantined:{reason}",
                t=self.clock.now(),
            )
        ftr = current_frame_tracer()
        if ftr is not None:
            tctx = getattr(item, "trace", None)
            if tctx is not None:
                # Dead-lettered data auto-pins its frame trace: the flight
                # recorder keeps the hop history of exactly the frames that
                # lost chunks to quarantine.
                ftr.annotate(tctx, f"recovery:quarantined:{reason}", pin=True)

    # -- pipeline guard -----------------------------------------------------

    def guard(
        self, op: "Operator | BinaryOperator", chunk: Chunk, side: str | None = None
    ) -> list[Chunk]:
        """Run one operator step, quarantining the chunk on library errors.

        The poison chunk goes to the dead-letter sink and the pipeline
        continues; only non-GeoStreams exceptions (genuine bugs) propagate.
        """
        t0 = _time.perf_counter() if self.op_timeout_s is not None else 0.0
        try:
            outs = list(
                op.process_side(side, chunk) if side is not None else op.process(chunk)
            )
        except GeoStreamsError as exc:
            self.quarantine(chunk, reason="operator-error", stage=op.name, error=exc)
            return []
        if (
            self.op_timeout_s is not None
            and _time.perf_counter() - t0 > self.op_timeout_s
        ):
            self.note_timeout(op.name)
        return outs

    def guard_flush(self, op: "Operator | BinaryOperator") -> list[Chunk]:
        try:
            return list(op.flush())
        except GeoStreamsError as exc:
            self.quarantine(None, reason="flush-error", stage=op.name, error=exc)
            return []

    # -- event notes --------------------------------------------------------

    def note_retry(self, stream_id: str, delay: float) -> None:
        self.retries += 1
        if metrics_enabled():
            registry = get_registry()
            registry.counter("repro_faults_retries_total", stream=stream_id).inc()
            registry.gauge("repro_faults_backoff_seconds", stream=stream_id).set(delay)
        journal = current_journal()
        if journal is not None:
            # "recovery:reconnect" is a prefix of the resilient stream's
            # trace annotation, so captures() can match the pinned frame.
            journal.append(
                "reconnect",
                reason=f"stream={stream_id} backoff={delay:g}s",
                link="recovery:reconnect",
                t=self.clock.now(),
            )

    def note_exhausted(self, stream_id: str) -> None:
        self.sources_lost += 1
        if metrics_enabled():
            get_registry().counter(
                "repro_faults_recovery_exhausted_total", stream=stream_id
            ).inc()
        journal = current_journal()
        if journal is not None:
            journal.append(
                "recovery-exhausted",
                reason=f"stream={stream_id}",
                t=self.clock.now(),
            )

    def note_stall(self) -> None:
        self.stalls_observed += 1
        if metrics_enabled():
            get_registry().counter("repro_faults_stalls_total").inc()
        journal = current_journal()
        if journal is not None:
            journal.append("stall", t=self.clock.now())

    def note_timeout(self, op_name: str) -> None:
        self.op_timeouts[op_name] = self.op_timeouts.get(op_name, 0) + 1
        if metrics_enabled():
            get_registry().counter("repro_faults_op_timeouts_total", op=op_name).inc()


_current: RecoveryContext | None = None


def current_recovery() -> RecoveryContext | None:
    """The installed recovery context, or None (fail-fast mode)."""
    return _current


def install_recovery(context: RecoveryContext) -> RecoveryContext:
    global _current
    _current = context
    return context


def clear_recovery() -> None:
    global _current
    _current = None


@contextlib.contextmanager
def recovering(context: RecoveryContext | None = None) -> Iterator[RecoveryContext]:
    """Install a recovery context for the duration of a block (nestable)."""
    context = context if context is not None else RecoveryContext()
    previous = _current
    install_recovery(context)
    try:
        yield context
    finally:
        if previous is None:
            clear_recovery()
        else:
            install_recovery(previous)


# -- resilient source -------------------------------------------------------


def resilient_stream(
    stream: GeoStream,
    policy: BackoffPolicy | None = None,
    clock: SimClock | SystemClock | None = None,
    context: RecoveryContext | None = None,
) -> GeoStream:
    """Wrap a GeoStream with per-source reconnect + backoff recovery.

    When iterating the underlying stream raises
    :class:`~repro.errors.SourceDisconnected`, the wrapper sleeps the next
    backoff delay on the clock, re-opens the source, fast-forwards past the
    chunks it already delivered (sources replay deterministically from the
    start — see :class:`~repro.core.stream.GeoStream` re-openability), and
    resumes with **no duplicates and no gaps**. After ``max_retries``
    attempts or once the backoff deadline is exceeded it raises
    :class:`~repro.errors.RecoveryExhausted`.
    """
    ctx = context
    policy = policy or (ctx.backoff if ctx is not None else BackoffPolicy())
    clock = clock or (ctx.clock if ctx is not None else SimClock())

    def source() -> Iterator[Chunk]:
        return _resilient_iter(stream, policy, clock, ctx)

    return GeoStream(stream.metadata, source)


def _resilient_iter(
    stream: GeoStream,
    policy: BackoffPolicy,
    clock: SimClock | SystemClock,
    ctx: RecoveryContext | None,
) -> Iterator[Chunk]:
    sid = stream.stream_id
    delays = policy.schedule()
    delivered = 0
    attempt = 0
    slept = 0.0
    while True:
        skip = delivered
        try:
            for chunk in stream.chunks():
                if skip:
                    skip -= 1
                    continue
                delivered += 1
                yield chunk
            return
        except SourceDisconnected as exc:
            if attempt >= policy.max_retries:
                if ctx is not None:
                    ctx.note_exhausted(sid)
                raise RecoveryExhausted(
                    f"source {sid!r}: gave up after {attempt} reconnect attempts"
                ) from exc
            delay = delays[attempt]
            if slept + delay > policy.deadline:
                if ctx is not None:
                    ctx.note_exhausted(sid)
                raise RecoveryExhausted(
                    f"source {sid!r}: backoff deadline {policy.deadline}s exceeded "
                    f"after {attempt} attempts"
                ) from exc
            attempt += 1
            slept += delay
            if ctx is not None:
                ctx.note_retry(sid, delay)
            elif metrics_enabled():
                get_registry().counter("repro_faults_retries_total", stream=sid).inc()
            ftr = current_frame_tracer()
            if ftr is not None:
                # The next chunks admitted from this stream carry the
                # reconnect in their trace annotations.
                ftr.note_stream_event(
                    sid, f"recovery:reconnect:attempt={attempt} backoff={delay:g}s"
                )
            clock.sleep(delay)


# -- frame guard ------------------------------------------------------------


class FrameGuard(Operator):
    """Source-side validation gate: only complete, valid frames pass.

    Sits between a (possibly faulty) source and the query pipelines. Per
    chunk it checks timestamp sanity and value-set membership; poison
    chunks go to the dead-letter sink. Valid chunks buffer per frame and a
    frame's chunks are released **only when every scan row has arrived**,
    re-sorted into canonical row order with the ``last_in_frame`` marker
    repaired — so duplicates are suppressed, reordering is undone, and a
    frame that lost any row (drop, truncation, quarantined corruption) is
    quarantined whole rather than delivered partially blank.

    The guarantee downstream: every frame that leaves the guard is
    bit-identical to the frame a fault-free scan would have produced
    (stream-as-function equivalence on surviving timestamps).
    """

    name = "frame-guard"

    def __init__(
        self,
        value_set: ValueSet | None = None,
        context: RecoveryContext | None = None,
        max_open_frames: int = 3,
    ) -> None:
        super().__init__()
        if max_open_frames < 1:
            raise GeoStreamsError("max_open_frames must be >= 1")
        self.value_set = value_set
        self._context = context
        self.max_open_frames = max_open_frames
        self._frames: dict[object, dict[int, GridChunk]] = {}
        self._order: list[object] = []
        self.frames_quarantined = 0
        self.chunks_quarantined = 0
        self.frames_released = 0

    def _reset_state(self) -> None:
        self._frames = {}
        self._order = []
        self.frames_quarantined = 0
        self.chunks_quarantined = 0
        self.frames_released = 0

    # -- validation ---------------------------------------------------------

    def _invalid_reason(self, chunk: Chunk) -> str | None:
        if isinstance(chunk, GridChunk):
            if not np.isfinite(chunk.t):
                return "bad-timestamp"
            vs = self.value_set
            if (
                vs is not None
                and chunk.values.dtype == vs.dtype
                and not vs.contains(chunk.values)
            ):
                return "invalid-values"
            return None
        if not np.all(np.isfinite(chunk.t)):
            return "bad-timestamp"
        return None

    def _quarantine(self, chunk: Chunk | None, reason: str) -> None:
        self.chunks_quarantined += 1
        ctx = self._context if self._context is not None else current_recovery()
        if ctx is not None:
            ctx.quarantine(chunk, reason=reason, stage=self.name)

    # -- frame assembly -----------------------------------------------------

    def _process(self, chunk: Chunk) -> Iterator[Chunk]:
        reason = self._invalid_reason(chunk)
        if reason is not None:
            self._quarantine(chunk, reason)
            return
        if not isinstance(chunk, GridChunk) or chunk.frame is None:
            yield chunk
            return
        key = (chunk.frame.frame_id, chunk.band)
        bucket = self._frames.get(key)
        if bucket is None:
            bucket = {}
            self._frames[key] = bucket
            self._order.append(key)
            # A frame still open when `max_open_frames` newer frames have
            # started never completed: some row was lost. Quarantine it.
            while len(self._order) > self.max_open_frames:
                self._evict(self._order[0])
        if chunk.row0 in bucket:
            self._quarantine(chunk, "duplicate-chunk")
            return
        bucket[chunk.row0] = chunk
        self.stats.buffer_add_chunk(chunk)
        covered = sum(c.lattice.height for c in bucket.values())
        if covered >= chunk.frame.lattice.height:
            yield from self._release(key)

    def _release(self, key: object) -> Iterator[Chunk]:
        bucket = self._frames.pop(key)
        self._order.remove(key)
        self.frames_released += 1
        rows = [bucket[row0] for row0 in sorted(bucket)]
        for i, chunk in enumerate(rows):
            self.stats.buffer_remove_chunk(chunk)
            want_last = i == len(rows) - 1
            if chunk.last_in_frame != want_last:
                chunk = dc_replace(chunk, last_in_frame=want_last)
            yield chunk

    def _evict(self, key: object) -> None:
        bucket = self._frames.pop(key)
        self._order.remove(key)
        self.frames_quarantined += 1
        for row0 in sorted(bucket):
            self.stats.buffer_remove_chunk(bucket[row0])
            self._quarantine(bucket[row0], "incomplete-frame")

    def _flush(self) -> tuple[Chunk, ...]:
        for key in list(self._order):
            self._evict(key)
        return ()

    def __repr__(self) -> str:
        return (
            f"FrameGuard(open={len(self._order)}, released={self.frames_released}, "
            f"quarantined={self.frames_quarantined})"
        )
