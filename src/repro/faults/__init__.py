"""Fault injection and failure recovery (``repro.faults``).

A seeded chaos layer for the GeoStreams DSMS: :class:`FaultSpec` describes
a deterministic fault mix, :class:`FaultInjector` applies it to any
GeoStream or raw-record feed, and the recovery side —
:func:`resilient_stream`, :class:`FrameGuard`, :class:`RecoveryContext`,
the DSMS's router fallback and shedding escalation — keeps continuous
queries correct and live through it. See ``docs/faults.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .injector import FaultInjector
from .recovery import (
    BackoffPolicy,
    DeadLetter,
    DeadLetterSink,
    FrameGuard,
    RecoveryContext,
    SimClock,
    SystemClock,
    clear_recovery,
    current_recovery,
    install_recovery,
    recovering,
    resilient_stream,
)
from .spec import DEFAULT_INTENSITY, FAULT_KINDS, FaultSpec

if TYPE_CHECKING:
    from ..server.catalog import StreamCatalog

__all__ = [
    "FaultSpec",
    "FAULT_KINDS",
    "DEFAULT_INTENSITY",
    "FaultInjector",
    "BackoffPolicy",
    "DeadLetter",
    "DeadLetterSink",
    "FrameGuard",
    "RecoveryContext",
    "SimClock",
    "SystemClock",
    "current_recovery",
    "install_recovery",
    "clear_recovery",
    "recovering",
    "resilient_stream",
    "harden_catalog",
]


def harden_catalog(
    catalog: "StreamCatalog", spec: FaultSpec, context: RecoveryContext | None = None
) -> "tuple[StreamCatalog, FaultInjector, RecoveryContext]":
    """Fault-inject *and* harden every stream of a catalog.

    For each registered source this builds the full drill pipeline::

        source -> FaultInjector.wrap_stream -> resilient_stream -> FrameGuard

    i.e. faults go in at the source, reconnect-with-backoff absorbs the
    disconnects, and the frame guard quarantines whatever corruption the
    other classes produced — so only complete, bit-exact frames reach the
    DSMS. Returns ``(hardened_catalog, injector, context)``; run the DSMS
    under ``recovering(context)`` so the engine and server share the same
    recovery state.
    """
    from ..obs.trace import trace_source  # lazy: avoids an import cycle
    from ..server.catalog import StreamCatalog  # lazy: avoids an import cycle

    ctx = context if context is not None else RecoveryContext()
    injector = FaultInjector(spec, clock=ctx.clock)
    hardened = StreamCatalog()
    for sid, stream in catalog.items():
        # Trace contexts are assigned *upstream* of the injector so a
        # faulted chunk's trace already exists when the injector annotates
        # it. With no frame tracer installed trace_source is a no-op wrap.
        faulty = injector.wrap_stream(trace_source(stream))
        guarded = resilient_stream(faulty, context=ctx).pipe(
            FrameGuard(value_set=stream.metadata.value_set, context=ctx)
        )
        hardened.register(
            guarded.with_metadata(stream_id=sid), catalog.extent(sid)
        )
    return hardened, injector, ctx
