"""Seeded, deterministic fault injection for GeoStreams and raw records.

The injector wraps either a :class:`~repro.core.stream.GeoStream` (chunk
level) or a raw-record byte iterator (wire level, upstream of the stream
generator) and perturbs it according to a :class:`~repro.faults.spec.FaultSpec`:

* **drop** — the chunk/record is silently lost,
* **dup** — it is delivered twice,
* **reorder** — it is swapped with its successor,
* **bitflip** — its counts are corrupted (high bit flipped; at the wire
  level this also breaks the CRC),
* **outrange** — its counts are pushed to the dtype maximum, outside the
  declared value set,
* **truncate** — the rest of its frame's scan sector is lost,
* **stall** — delivery pauses ``stall_seconds`` on the (simulated) clock,
* **disconnect** — the source raises
  :class:`~repro.errors.SourceDisconnected` mid-scan.

Determinism contract: fault decisions come from a ``random.Random`` seeded
by ``spec.seed ^ crc32(stream_id)`` and **re-created identically on every
re-open** of the wrapped stream. A reconnecting consumer therefore replays
the exact same faulted prefix, which is what lets
:func:`repro.faults.recovery.resilient_stream` resume by skipping the
chunks it already delivered. Only the *disconnect position* scales with
the open count (attempt *n* survives ``disconnect_after * n`` chunks), so
every reconnect makes strictly more progress than the last.

Every injection increments both ``injector.counts[kind]`` and the
``repro_faults_injected_total{kind=...}`` metric — chaos tests assert the
two stay exactly equal.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import replace as dc_replace
from typing import Iterable, Iterator

import numpy as np

from ..core.chunk import Chunk, GridChunk
from ..core.stream import GeoStream
from ..errors import SourceDisconnected
from ..obs.registry import get_registry, metrics_enabled
from ..obs.timeline import current_journal
from ..obs.trace import FrameTracer, current_frame_tracer
from .recovery import SimClock, SystemClock, current_recovery
from .spec import FAULT_KINDS, FaultSpec

__all__ = ["FaultInjector"]


def _corrupt_bitflip(values: np.ndarray, rng: random.Random) -> np.ndarray:
    """Flip the high bit of one count (or poison one float with inf)."""
    out = values.copy()
    flat = out.reshape(-1)
    idx = rng.randrange(flat.shape[0])
    if np.issubdtype(out.dtype, np.integer):
        high_bit = np.array(1, dtype=out.dtype) << (out.dtype.itemsize * 8 - 1)
        flat[idx] = flat[idx] ^ high_bit
    else:
        flat[idx] = np.inf
    return out


def _corrupt_outrange(values: np.ndarray) -> np.ndarray:
    """Push every count to the dtype maximum (outside bounded value sets)."""
    if np.issubdtype(values.dtype, np.integer):
        return np.full_like(values, np.iinfo(values.dtype).max)
    return np.full_like(values, np.finfo(values.dtype).max)


class FaultInjector:
    """Applies one :class:`FaultSpec` to any number of streams, with shared counts."""

    def __init__(self, spec: FaultSpec, clock: SimClock | SystemClock | None = None) -> None:
        self.spec = spec
        self.clock = clock
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- bookkeeping --------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.counts[kind] += 1
        if metrics_enabled():
            get_registry().counter("repro_faults_injected_total", kind=kind).inc()
        journal = current_journal()
        if journal is not None:
            # Stamped with the injector's own (sim) clock and never the
            # tracer's state, so the journal is bit-identical whether or
            # not tracing is installed. The link matches the pin reason
            # `_note_trace` writes on the affected frame's capture.
            journal.append(
                "fault",
                reason=kind,
                link=f"fault:{kind}",
                t=self._resolve_clock().now(),
            )

    @staticmethod
    def _note_trace(ftr: "FrameTracer | None", chunk: Chunk, kind: str) -> None:
        """Annotate (and auto-pin) the chunk's frame trace, if it has one.

        Annotations never touch the injection rng, so traced and untraced
        chaos runs stay bit-identical.
        """
        if ftr is None:
            return
        tctx = chunk.trace
        if tctx is not None:
            ftr.annotate(tctx, f"fault:{kind}", pin=True)

    def _resolve_clock(self) -> SimClock | SystemClock:
        if self.clock is not None:
            return self.clock
        ctx = current_recovery()
        if ctx is not None:
            return ctx.clock
        self.clock = SimClock()
        return self.clock

    def _stall(self, rng: random.Random) -> bool:
        if self.spec.stall > 0.0 and rng.random() < self.spec.stall:
            self._count("stall")
            self._resolve_clock().sleep(self.spec.stall_seconds)
            return True
        return False

    # -- chunk-level injection ----------------------------------------------

    def wrap_stream(self, stream: GeoStream) -> GeoStream:
        """A GeoStream that replays ``stream`` through this fault spec.

        The returned stream keeps the original metadata; its open counter
        lives in the wrapper (one counter per ``wrap_stream`` call), so
        disconnect schedules are tracked per wrapped source.
        """
        spec = self.spec
        seed = spec.seed ^ zlib.crc32(stream.stream_id.encode("utf-8"))
        opens = [0]

        def source() -> Iterator[Chunk]:
            opens[0] += 1
            return self._faulted_chunks(stream, seed, opens[0])

        return GeoStream(stream.metadata, source)

    def _faulted_chunks(self, stream: GeoStream, seed: int, open_no: int) -> Iterator[Chunk]:
        spec = self.spec
        # Same seed on every open: the faulted prefix replays identically,
        # so reconnect-and-skip recovery is exact.
        rng = random.Random(seed)
        # Frame-trace annotation hook: fetched once per open, rng-free.
        ftr = current_frame_tracer()
        disconnecting = open_no <= spec.disconnect
        survive = spec.disconnect_after * open_no
        yielded = 0
        held: Chunk | None = None  # reorder: chunk waiting for its successor
        truncated: object = None  # frame key whose remaining chunks are lost

        def emit(chunk: Chunk) -> Iterator[Chunk]:
            nonlocal yielded
            will_disconnect = disconnecting and yielded + 1 >= survive
            if will_disconnect:
                # Annotate before yielding: the chunk may reach delivery
                # (and finalize its trace) before this generator resumes.
                self._note_trace(ftr, chunk, "disconnect")
            yield chunk
            yielded += 1
            if will_disconnect:
                self._count("disconnect")
                raise SourceDisconnected(
                    f"source {stream.stream_id!r}: injected disconnect after "
                    f"{yielded} chunks (open #{open_no})"
                )

        for chunk in stream.chunks():
            frame_key = None
            if isinstance(chunk, GridChunk) and chunk.frame is not None:
                frame_key = (chunk.frame.frame_id, chunk.band)
            if truncated is not None and frame_key == truncated:
                self._note_trace(ftr, chunk, "truncate")
                continue  # rest of the truncated sector never arrives
            if spec.truncate > 0.0 and frame_key is not None and (
                rng.random() < spec.truncate
            ):
                self._count("truncate")
                self._note_trace(ftr, chunk, "truncate")
                truncated = frame_key
                continue
            if spec.drop > 0.0 and rng.random() < spec.drop:
                self._count("drop")
                self._note_trace(ftr, chunk, "drop")
                continue
            if spec.bitflip > 0.0 and rng.random() < spec.bitflip:
                self._count("bitflip")
                self._note_trace(ftr, chunk, "bitflip")
                chunk = dc_replace(chunk, values=_corrupt_bitflip(chunk.values, rng))
            if spec.outrange > 0.0 and rng.random() < spec.outrange:
                self._count("outrange")
                self._note_trace(ftr, chunk, "outrange")
                chunk = dc_replace(chunk, values=_corrupt_outrange(chunk.values))
            if self._stall(rng):
                self._note_trace(ftr, chunk, "stall")
            if spec.dup > 0.0 and rng.random() < spec.dup:
                self._count("dup")
                self._note_trace(ftr, chunk, "dup")
                yield from emit(chunk)
                yield from emit(chunk)
                continue
            if held is not None:
                self._note_trace(ftr, chunk, "reorder")
                yield from emit(chunk)
                yield from emit(held)
                held = None
                continue
            if spec.reorder > 0.0 and rng.random() < spec.reorder:
                self._count("reorder")
                self._note_trace(ftr, chunk, "reorder")
                held = chunk
                continue
            yield from emit(chunk)
        if held is not None:
            yield from emit(held)

    # -- wire-level injection -----------------------------------------------

    def records(self, raw: Iterable[bytes], label: str = "records") -> Iterator[bytes]:
        """Inject faults into a raw-record byte stream (upstream of the
        stream generator).

        Bit flips corrupt the counts body so the record's CRC no longer
        matches — exactly the failure a noisy downlink produces — and the
        generator's recovery path quarantines the bad record. Truncation
        drops the remainder of the flipped record's frame.
        """
        from ..ingest.generator import RECORD_HEADER  # lazy: avoids an import cycle

        spec = self.spec
        rng = random.Random(spec.seed ^ zlib.crc32(label.encode("utf-8")))
        held: bytes | None = None
        truncated: tuple[int, int] | None = None

        def frame_key(data: bytes) -> tuple[int, int] | None:
            if len(data) < RECORD_HEADER.size:
                return None
            _, sector, frame, *_rest = RECORD_HEADER.unpack(data[: RECORD_HEADER.size])
            return (sector, frame)

        for data in raw:
            key = frame_key(data)
            if truncated is not None and key == truncated:
                continue
            if spec.truncate > 0.0 and key is not None and rng.random() < spec.truncate:
                self._count("truncate")
                truncated = key
                continue
            if spec.drop > 0.0 and rng.random() < spec.drop:
                self._count("drop")
                continue
            if spec.bitflip > 0.0 and rng.random() < spec.bitflip:
                self._count("bitflip")
                body_start = RECORD_HEADER.size
                if len(data) > body_start + 4:
                    idx = body_start + rng.randrange(len(data) - body_start - 4)
                    data = data[:idx] + bytes([data[idx] ^ 0x80]) + data[idx + 1 :]
            self._stall(rng)
            if spec.dup > 0.0 and rng.random() < spec.dup:
                self._count("dup")
                yield data
                yield data
                continue
            if held is not None:
                yield data
                yield held
                held = None
                continue
            if spec.reorder > 0.0 and rng.random() < spec.reorder:
                self._count("reorder")
                held = data
                continue
            yield data
        if held is not None:
            yield held

    def __repr__(self) -> str:
        active = {k: v for k, v in self.counts.items() if v}
        return f"FaultInjector({self.spec.to_string()!r}, injected={active})"
