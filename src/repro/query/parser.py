"""Textual query language.

The prototype's web interface converts user selections into "specialized
HTTP requests" that the server parses into algebra expressions
(Section 4). This module is that parser: a small functional language over
the closed algebra, with infix band arithmetic. The paper's Section 3.4
example reads::

    within(reproject(stretch(ndvi(goes.nir, goes.vis), 'linear'), 'utm:10'),
           bbox(500000, 4000000, 700000, 4400000, crs='utm:10'))

Grammar (recursive descent, standard precedence)::

    expr    := add
    add     := mul (('+' | '-') mul)*
    mul     := unary (('*' | '/') unary)*
    unary   := '-' unary | primary
    primary := NUMBER | STRING | IDENT '(' args ')' | IDENT | '(' expr ')'
    args    := [arg (',' arg)*]        arg := [IDENT '='] expr

Infix operators between two stream expressions become stream compositions
(Def. 10); between a stream and a number they become pointwise rescales
(Def. 8); between two numbers they fold to constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

from ..core.timeset import RecurringInterval, TimeInterval
from ..errors import QuerySyntaxError
from ..geo import crs as crs_mod
from ..geo.crs import CRS
from ..geo.region import BoundingBox, ConstraintRegion, PolygonRegion, Region
from . import ast as q

__all__ = ["parse_query", "parse_query_spanned", "resolve_crs"]

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d*(?:[eE][-+]?\d+)?|-?\.\d+(?:[eE][-+]?\d+)?|-?\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<string>'[^']*'|\"[^\"]*\")"
    r"|(?P<punct>[()+\-*/,=])"
    r")"
)


def resolve_crs(name: str) -> CRS:
    """Resolve a CRS name used in query text to a CRS object.

    Accepted forms: ``latlon``, ``plate_carree``, ``mercator``,
    ``sinusoidal``, ``utm:10`` / ``utm:10N`` / ``utm:33S``,
    ``geos`` / ``geos:-135`` (GOES fixed grid at that longitude),
    ``lcc`` (CONUS Lambert conformal conic). Delegates to
    :func:`repro.geo.crs.from_spec`.
    """
    from ..errors import CRSError

    try:
        return crs_mod.from_spec(name)
    except CRSError as exc:
        raise QuerySyntaxError(str(exc)) from exc


@dataclass
class _Token:
    kind: str  # number | ident | string | punct
    value: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QuerySyntaxError(f"cannot tokenize query at position {pos}: {remainder[:20]!r}")
        pos = match.end()
        for kind in ("number", "ident", "string", "punct"):
            value = match.group(kind)
            if value is not None:
                # '-' adjacent to a number is tokenized as part of the
                # number only when it cannot be a binary minus.
                if kind == "number" and value.startswith("-") and tokens and (
                    tokens[-1].kind in ("number", "ident", "string")
                    or tokens[-1].value == ")"
                ):
                    tokens.append(_Token("punct", "-", match.start()))
                    tokens.append(_Token("number", value[1:], match.start() + 1))
                else:
                    tokens.append(_Token(kind, value, match.start()))
                break
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        # id(node) -> (start, end) character span. Nodes are frozen and
        # equality-comparable, so identity is the only safe key; the map
        # is meaningful only while the parsed tree is alive.
        self.spans: dict[int, tuple[int, int]] = {}

    # -- token helpers ----------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of query: {self.text!r}")
        self.index += 1
        return tok

    def _expect(self, value: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != value:
            raise QuerySyntaxError(
                f"expected {value!r} at position {tok.pos}, got {tok.value!r}"
            )

    def _accept(self, value: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.value == value:
            self.index += 1
            return True
        return False

    # -- span bookkeeping ---------------------------------------------------------

    def _mark(self) -> int:
        tok = self._peek()
        return tok.pos if tok is not None else len(self.text)

    def _note(self, value: Any, start: int) -> Any:
        """Record the source span of a freshly produced AST node."""
        if isinstance(value, q.QueryNode) and id(value) not in self.spans:
            if self.index > 0:
                last = self.tokens[self.index - 1]
                end = last.pos + len(last.value)
            else:  # pragma: no cover - a node needs at least one token
                end = start
            self.spans[id(value)] = (start, end)
        return value

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Any:
        value = self.expr()
        tok = self._peek()
        if tok is not None:
            raise QuerySyntaxError(
                f"trailing input at position {tok.pos}: {tok.value!r}"
            )
        return value

    def expr(self) -> Any:
        return self.add()

    def add(self) -> Any:
        start = self._mark()
        left = self.mul()
        while True:
            if self._accept("+"):
                left = self._note(_combine(left, self.mul(), "+"), start)
            elif self._accept("-"):
                left = self._note(_combine(left, self.mul(), "-"), start)
            else:
                return left

    def mul(self) -> Any:
        start = self._mark()
        left = self.unary()
        while True:
            if self._accept("*"):
                left = self._note(_combine(left, self.unary(), "*"), start)
            elif self._accept("/"):
                left = self._note(_combine(left, self.unary(), "/"), start)
            else:
                return left

    def unary(self) -> Any:
        start = self._mark()
        if self._accept("-"):
            operand = self.unary()
            if isinstance(operand, (int, float)):
                return -operand
            if isinstance(operand, q.QueryNode):
                negated = q.ValueMap(operand, "rescale", (("gain", -1.0), ("offset", 0.0)))
                return self._note(negated, start)
            raise QuerySyntaxError("unary minus applies to numbers or stream expressions")
        return self.primary()

    def primary(self) -> Any:
        tok = self._next()
        if tok.kind == "number":
            text = tok.value
            return float(text) if any(c in text for c in ".eE") else int(text)
        if tok.kind == "string":
            return tok.value[1:-1]
        if tok.kind == "punct" and tok.value == "(":
            inner = self.expr()
            self._expect(")")
            return inner
        if tok.kind == "ident":
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.value == "(":
                self._next()
                args, kwargs = self.arguments()
                return self._note(_call_function(tok.value, args, kwargs, tok.pos), tok.pos)
            return self._note(q.StreamRef(tok.value), tok.pos)
        raise QuerySyntaxError(f"unexpected token {tok.value!r} at position {tok.pos}")

    def arguments(self) -> tuple[list[Any], dict[str, Any]]:
        args: list[Any] = []
        kwargs: dict[str, Any] = {}
        if self._accept(")"):
            return args, kwargs
        while True:
            tok = self._peek()
            nxt = (
                self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            )
            if (
                tok is not None
                and tok.kind == "ident"
                and nxt is not None
                and nxt.kind == "punct"
                and nxt.value == "="
            ):
                self.index += 2
                kwargs[tok.value] = self.expr()
            else:
                if kwargs:
                    raise QuerySyntaxError(
                        "positional argument after keyword argument"
                    )
                args.append(self.expr())
            if self._accept(")"):
                return args, kwargs
            self._expect(",")


def _combine(left: Any, right: Any, op: str) -> Any:
    """Infix semantics: composition, pointwise rescale, or constant fold."""
    num_l = isinstance(left, (int, float))
    num_r = isinstance(right, (int, float))
    if num_l and num_r:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if left == 0 and op == "/":
            return 0.0
        if op == "/":
            if right == 0:
                raise QuerySyntaxError("division by zero in constant expression")
            return left / right
    if isinstance(left, q.QueryNode) and isinstance(right, q.QueryNode):
        return q.Compose(left, right, op)
    if isinstance(left, q.QueryNode) and num_r:
        value = float(right)
        if op == "+":
            return q.ValueMap(left, "rescale", (("gain", 1.0), ("offset", value)))
        if op == "-":
            return q.ValueMap(left, "rescale", (("gain", 1.0), ("offset", -value)))
        if op == "*":
            return q.ValueMap(left, "rescale", (("gain", value), ("offset", 0.0)))
        if op == "/":
            if value == 0:
                raise QuerySyntaxError("division of a stream by zero")
            return q.ValueMap(left, "rescale", (("gain", 1.0 / value), ("offset", 0.0)))
    if num_l and isinstance(right, q.QueryNode):
        value = float(left)
        if op == "+":
            return q.ValueMap(right, "rescale", (("gain", 1.0), ("offset", value)))
        if op == "*":
            return q.ValueMap(right, "rescale", (("gain", value), ("offset", 0.0)))
        if op == "-":
            return q.ValueMap(right, "rescale", (("gain", -1.0), ("offset", value)))
        raise QuerySyntaxError("constant / stream is not expressible as a rescale")
    raise QuerySyntaxError(
        f"operator {op!r} cannot combine {type(left).__name__} and {type(right).__name__}"
    )


# -- function table --------------------------------------------------------------


def _need_node(value: Any, fn: str, arg: str = "expression") -> q.QueryNode:
    if not isinstance(value, q.QueryNode):
        raise QuerySyntaxError(f"{fn}() expects a stream {arg}, got {type(value).__name__}")
    return value


def _need_number(value: Any, fn: str) -> float:
    if not isinstance(value, (int, float)):
        raise QuerySyntaxError(f"{fn}() expects a number, got {type(value).__name__}")
    return float(value)


def _need_region(value: Any, fn: str) -> Region:
    if not isinstance(value, Region):
        raise QuerySyntaxError(f"{fn}() expects a region, got {type(value).__name__}")
    return value


def _fn_bbox(args: list[Any], kwargs: dict[str, Any]) -> Region:
    if len(args) != 4:
        raise QuerySyntaxError("bbox() takes (xmin, ymin, xmax, ymax [, crs=...])")
    crs = resolve_crs(kwargs.pop("crs", "latlon"))
    if kwargs:
        raise QuerySyntaxError(f"bbox() got unexpected keywords {sorted(kwargs)}")
    vals = [_need_number(a, "bbox") for a in args]
    return BoundingBox(vals[0], vals[1], vals[2], vals[3], crs)


def _fn_disk(args: list[Any], kwargs: dict[str, Any]) -> Region:
    if len(args) != 3:
        raise QuerySyntaxError("disk() takes (cx, cy, radius [, crs=...])")
    crs = resolve_crs(kwargs.pop("crs", "latlon"))
    if kwargs:
        raise QuerySyntaxError(f"disk() got unexpected keywords {sorted(kwargs)}")
    cx, cy, r = (_need_number(a, "disk") for a in args)
    return ConstraintRegion.disk(cx, cy, r, crs)


def _fn_polygon(args: list[Any], kwargs: dict[str, Any]) -> Region:
    crs = resolve_crs(kwargs.pop("crs", "latlon"))
    if kwargs:
        raise QuerySyntaxError(f"polygon() got unexpected keywords {sorted(kwargs)}")
    if len(args) < 6 or len(args) % 2 != 0:
        raise QuerySyntaxError("polygon() takes x1, y1, x2, y2, x3, y3, ... pairs")
    coords = [_need_number(a, "polygon") for a in args]
    vertices = list(zip(coords[0::2], coords[1::2]))
    return PolygonRegion(vertices, crs)


def _fn_within(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 2 or kwargs:
        raise QuerySyntaxError("within() takes (expression, region)")
    return q.SpatialRestrict(_need_node(args[0], "within"), _need_region(args[1], "within"))


def _fn_during(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 3 or kwargs:
        raise QuerySyntaxError("during() takes (expression, t_start, t_end)")
    node = _need_node(args[0], "during")
    t0, t1 = _need_number(args[1], "during"), _need_number(args[2], "during")
    return q.TemporalRestrict(node, TimeInterval(t0, t1, closed_end=False))


def _fn_sectors(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 3 or kwargs:
        raise QuerySyntaxError("sectors() takes (expression, first, last)")
    node = _need_node(args[0], "sectors")
    s0, s1 = _need_number(args[1], "sectors"), _need_number(args[2], "sectors")
    return q.TemporalRestrict(node, TimeInterval(s0, s1), on_sector=True)


def _fn_daily(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 3:
        raise QuerySyntaxError("daily() takes (expression, start_offset, end_offset [, period=...])")
    period = _need_number(kwargs.pop("period", 86_400.0), "daily")
    if kwargs:
        raise QuerySyntaxError(f"daily() got unexpected keywords {sorted(kwargs)}")
    node = _need_node(args[0], "daily")
    start, end = _need_number(args[1], "daily"), _need_number(args[2], "daily")
    return q.TemporalRestrict(node, RecurringInterval(start, end, period))


def _fn_vrange(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 3 or kwargs:
        raise QuerySyntaxError("vrange() takes (expression, lo, hi)")
    node = _need_node(args[0], "vrange")
    return q.ValueRestrict(node, _need_number(args[1], "vrange"), _need_number(args[2], "vrange"))


def _fn_stretch(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if not 1 <= len(args) <= 2 or kwargs:
        raise QuerySyntaxError("stretch() takes (expression [, kind])")
    kind = args[1] if len(args) == 2 else "linear"
    if not isinstance(kind, str):
        raise QuerySyntaxError("stretch() kind must be a string")
    return q.Stretch(_need_node(args[0], "stretch"), kind)


def _fn_reproject(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 2:
        raise QuerySyntaxError("reproject() takes (expression, crs_name [, method=...])")
    method = kwargs.pop("method", "bilinear")
    if kwargs:
        raise QuerySyntaxError(f"reproject() got unexpected keywords {sorted(kwargs)}")
    if not isinstance(args[1], str):
        raise QuerySyntaxError("reproject() CRS must be a string name")
    return q.Reproject(_need_node(args[0], "reproject"), resolve_crs(args[1]), str(method))


def _fn_tagg(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 3:
        raise QuerySyntaxError("tagg() takes (expression, func, window [, mode=...])")
    mode = kwargs.pop("mode", "sliding")
    if kwargs:
        raise QuerySyntaxError(f"tagg() got unexpected keywords {sorted(kwargs)}")
    node = _need_node(args[0], "tagg")
    func = args[1]
    if not isinstance(func, str):
        raise QuerySyntaxError("tagg() func must be a string")
    return q.TemporalAgg(node, func, int(_need_number(args[2], "tagg")), str(mode))


def _fn_stagg(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    """Spatio-temporal aggregate (ref [27]): coarsen k then window-aggregate."""
    if len(args) != 4:
        raise QuerySyntaxError("stagg() takes (expression, func, spatial_k, window [, mode=...])")
    mode = kwargs.pop("mode", "sliding")
    if kwargs:
        raise QuerySyntaxError(f"stagg() got unexpected keywords {sorted(kwargs)}")
    node = _need_node(args[0], "stagg")
    func = args[1]
    if not isinstance(func, str):
        raise QuerySyntaxError("stagg() func must be a string")
    spatial_k = int(_need_number(args[2], "stagg"))
    window = int(_need_number(args[3], "stagg"))
    return q.TemporalAgg(q.Coarsen(node, spatial_k), func, window, str(mode))


def _fn_ragg(args: list[Any], kwargs: dict[str, Any]) -> q.QueryNode:
    if len(args) != 4 or kwargs:
        raise QuerySyntaxError("ragg() takes (expression, func, name, region)")
    node = _need_node(args[0], "ragg")
    func, name = args[1], args[2]
    if not isinstance(func, str) or not isinstance(name, str):
        raise QuerySyntaxError("ragg() func and name must be strings")
    region = _need_region(args[3], "ragg")
    return q.RegionAgg(node, ((name, region),), func)


_FUNCTIONS: dict[str, Callable[[list[Any], dict[str, Any]], Any]] = {
    "bbox": _fn_bbox,
    "disk": _fn_disk,
    "polygon": _fn_polygon,
    "within": _fn_within,
    "during": _fn_during,
    "sectors": _fn_sectors,
    "daily": _fn_daily,
    "vrange": _fn_vrange,
    "stretch": _fn_stretch,
    "reproject": _fn_reproject,
    "tagg": _fn_tagg,
    "ragg": _fn_ragg,
    "stagg": _fn_stagg,
}


def _fn_simple_unary(name: str) -> Callable[[list[Any], dict[str, Any]], Any]:
    def handler(args: list[Any], kwargs: dict[str, Any]) -> Any:
        if kwargs:
            raise QuerySyntaxError(f"{name}() got unexpected keywords {sorted(kwargs)}")
        if name in ("equalize", "gaussian"):
            if len(args) != 1:
                raise QuerySyntaxError(f"{name}() takes (expression)")
            return q.Stretch(_need_node(args[0], name), name if name != "gaussian" else "gaussian")
        if name == "reflectance":
            if not 1 <= len(args) <= 2:
                raise QuerySyntaxError("reflectance() takes (expression [, bits])")
            bits = _need_number(args[1], name) if len(args) == 2 else 10.0
            return q.ValueMap(_need_node(args[0], name), "reflectance", (("bits", bits),))
        if name == "rescale":
            if not 2 <= len(args) <= 3:
                raise QuerySyntaxError("rescale() takes (expression, gain [, offset])")
            gain = _need_number(args[1], name)
            offset = _need_number(args[2], name) if len(args) == 3 else 0.0
            return q.ValueMap(
                _need_node(args[0], name), "rescale", (("gain", gain), ("offset", offset))
            )
        if name in ("magnify", "coarsen"):
            if len(args) != 2:
                raise QuerySyntaxError(f"{name}() takes (expression, k)")
            k = int(_need_number(args[1], name))
            node = _need_node(args[0], name)
            return q.Magnify(node, k) if name == "magnify" else q.Coarsen(node, k)
        if name == "rotate":
            if len(args) != 2:
                raise QuerySyntaxError("rotate() takes (expression, degrees)")
            return q.Rotate(_need_node(args[0], name), _need_number(args[1], name))
        if name in ("ndvi", "evi2", "sup", "inf", "mosaic"):
            if len(args) != 2:
                raise QuerySyntaxError(f"{name}() takes two stream expressions")
            return q.Compose(_need_node(args[0], name), _need_node(args[1], name), name)
        raise QuerySyntaxError(f"unknown function {name!r}")

    return handler


for _name in ("equalize", "gaussian", "reflectance", "rescale", "magnify", "coarsen", "rotate", "ndvi", "evi2", "sup", "inf", "mosaic"):
    _FUNCTIONS[_name] = _fn_simple_unary(_name)


def _call_function(name: str, args: list[Any], kwargs: dict[str, Any], pos: int) -> Any:
    handler = _FUNCTIONS.get(name)
    if handler is None:
        raise QuerySyntaxError(
            f"unknown function {name!r} at position {pos}; available: "
            f"{', '.join(sorted(_FUNCTIONS))}"
        )
    return handler(args, kwargs)


def parse_query(text: str) -> q.QueryNode:
    """Parse query text into an algebra tree."""
    return parse_query_spanned(text)[0]


def parse_query_spanned(text: str) -> tuple[q.QueryNode, dict[int, tuple[int, int]]]:
    """Parse query text, also returning each node's source span.

    The second element maps ``id(node)`` to ``(start, end)`` character
    offsets into ``text`` — by identity because algebra nodes compare
    structurally. The static analyzer uses it to point diagnostics at
    the offending sub-expression. Spans are only valid while the
    returned tree is referenced.
    """
    parser = _Parser(text)
    result = parser.parse()
    if not isinstance(result, q.QueryNode):
        raise QuerySyntaxError(
            f"query text denotes a {type(result).__name__}, not a stream expression"
        )
    return result, parser.spans
