"""Online re-planning policy: when to roll a registered query's plan epoch.

PR 5 closed the observability half of the loop — per-stage observed
``StageStats``, calibrated cost estimates, SLO breach edges. This module
closes the control half: an :class:`AdaptivePolicy` watches those
signals and decides *when* the DSMS should re-plan a live query (an
``EpochTransition`` hot swap, see ``repro.plan.epoch``).

Two triggers, both with hysteresis so the planner never flaps:

* **SLO breach persistence** — a query must be observed in breach for
  ``breach_chunks`` consecutive chunk observations before a re-plan
  fires; a single late frame never triggers one.
* **Cost divergence** — observed per-stage wall clock diverging from the
  :class:`~repro.query.calibration.CalibrationProfile` estimate by more
  than ``divergence_ratio`` (the stream mix has shifted away from what
  the plan was priced for).

After a decision, the query enters a ``cooldown_chunks`` refractory
period, and at most ``max_replans`` re-plans ever fire per query — a
bad estimate can cost a bounded number of transitions, never a livelock
of swaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .calibration import CalibrationProfile, CalibrationSample

__all__ = ["AdaptivePolicy", "AdaptiveDecision"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """One re-plan the policy wants: why, and the shed-rate to install."""

    query: int
    reason: str  # "slo-breach" | "cost-divergence"
    # Managed pressure for the ingest shedder under the new epoch (None:
    # leave the reflexive stall/SLO valves in control). The re-planner
    # supersedes the open-loop panic escalation: pressure restarts from
    # the value the new epoch's calibrated cost supports.
    shed_pressure: float | None = None


@dataclass
class _QueryControl:
    breach_streak: int = 0
    cooldown: int = 0
    replans: int = 0
    observations: int = 0


@dataclass
class AdaptivePolicy:
    """Decides when observed reality has diverged enough to re-plan.

    ``observe`` is called once per scanned chunk per query (cheap:
    counter arithmetic only); ``observe_costs`` prices observed stage
    statistics against the calibration profile and may be called at any
    coarser cadence (frame boundaries, end of run).
    """

    breach_chunks: int = 12  # consecutive breached observations to trigger
    divergence_ratio: float = 4.0  # observed/estimated wall ratio to trigger
    min_wall_s: float = 1e-4  # ignore stages too cheap to price reliably
    cooldown_chunks: int = 64  # refractory period between re-plans
    max_replans: int = 2  # per query, for the process lifetime
    manage_shedding: bool = True  # pin the shed rate after a re-plan
    managed_pressure: float = 1.0  # the pressure a re-planned epoch restarts at
    calibration: Optional["CalibrationProfile"] = None
    _states: dict[int, _QueryControl] = field(default_factory=dict, repr=False)

    def _state(self, query: int) -> _QueryControl:
        state = self._states.get(query)
        if state is None:
            state = self._states[query] = _QueryControl()
        return state

    def _fire(self, state: _QueryControl, query: int, reason: str) -> AdaptiveDecision:
        state.replans += 1
        state.cooldown = self.cooldown_chunks
        state.breach_streak = 0
        return AdaptiveDecision(
            query=query,
            reason=reason,
            shed_pressure=self.managed_pressure if self.manage_shedding else None,
        )

    def _armed(self, state: _QueryControl) -> bool:
        return state.cooldown == 0 and state.replans < self.max_replans

    def observe(self, query: int, *, breached: bool) -> AdaptiveDecision | None:
        """One chunk observation: update hysteresis, maybe decide.

        ``breached`` is the SLO monitor's current verdict for the query.
        Returns a decision on the chunk where the breach streak first
        reaches ``breach_chunks`` (and the query is armed), else None.
        """
        state = self._state(query)
        state.observations += 1
        if state.cooldown > 0:
            state.cooldown -= 1
        state.breach_streak = state.breach_streak + 1 if breached else 0
        if state.breach_streak >= self.breach_chunks and self._armed(state):
            return self._fire(state, query, "slo-breach")
        return None

    def observe_costs(
        self, query: int, samples: Iterable["CalibrationSample"]
    ) -> AdaptiveDecision | None:
        """Price observed stage statistics; decide on sustained divergence.

        ``samples`` are ``(kind, work_units, wall_s)`` triples — the same
        shape :meth:`DSMSServer.calibration_samples` produces. A stage
        whose observed wall clock exceeds ``divergence_ratio`` times the
        calibrated estimate (and is expensive enough to matter) means the
        plan is priced against a stream mix that no longer exists.
        """
        if self.calibration is None:
            return None
        state = self._state(query)
        if not self._armed(state):
            return None
        for sample in samples:
            if sample.wall_s < self.min_wall_s or sample.work_units <= 0:
                continue
            estimated = self.calibration.seconds(sample.kind, sample.work_units)
            if estimated <= 0:
                continue
            if sample.wall_s / estimated >= self.divergence_ratio:
                return self._fire(state, query, "cost-divergence")
        return None

    def replans_fired(self, query: int) -> int:
        state = self._states.get(query)
        return state.replans if state else 0
