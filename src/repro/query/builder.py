"""Fluent Python builder for query trees.

The textual language (:mod:`repro.query.parser`) serves remote clients;
Python applications compose the same algebra with method chaining::

    from repro.query import Q

    tree = (
        Q.ndvi("goes.nir", "goes.vis")
        .stretch("linear")
        .reproject(utm(10))
        .within(roi)
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable

from ..core.timeset import RecurringInterval, TimeInterval, TimeSet
from ..errors import QueryError
from ..geo.crs import CRS
from ..geo.region import Region
from . import ast as q

__all__ = ["Q", "QueryBuilder"]


class QueryBuilder:
    """Wraps a query node and grows it with chained operators."""

    def __init__(self, node: q.QueryNode) -> None:
        self._node = node

    def build(self) -> q.QueryNode:
        """The accumulated query tree."""
        return self._node

    # -- restrictions ------------------------------------------------------------

    def within(self, region: Region) -> "QueryBuilder":
        return QueryBuilder(q.SpatialRestrict(self._node, region))

    def during(self, t_start: float, t_end: float) -> "QueryBuilder":
        interval = TimeInterval(t_start, t_end, closed_end=False)
        return QueryBuilder(q.TemporalRestrict(self._node, interval))

    def when(self, timeset: TimeSet, on_sector: bool = False) -> "QueryBuilder":
        return QueryBuilder(q.TemporalRestrict(self._node, timeset, on_sector))

    def sectors(self, first: int, last: int) -> "QueryBuilder":
        interval = TimeInterval(float(first), float(last))
        return QueryBuilder(q.TemporalRestrict(self._node, interval, on_sector=True))

    def daily(self, start_offset: float, end_offset: float, period: float = 86_400.0) -> "QueryBuilder":
        return QueryBuilder(
            q.TemporalRestrict(self._node, RecurringInterval(start_offset, end_offset, period))
        )

    def vrange(self, lo: float | None, hi: float | None) -> "QueryBuilder":
        return QueryBuilder(q.ValueRestrict(self._node, lo, hi))

    # -- transforms --------------------------------------------------------------

    def reflectance(self, bits: int = 10) -> "QueryBuilder":
        return QueryBuilder(q.ValueMap(self._node, "reflectance", (("bits", float(bits)),)))

    def rescale(self, gain: float, offset: float = 0.0) -> "QueryBuilder":
        return QueryBuilder(
            q.ValueMap(self._node, "rescale", (("gain", gain), ("offset", offset)))
        )

    def stretch(self, kind: str = "linear") -> "QueryBuilder":
        return QueryBuilder(q.Stretch(self._node, kind))

    def magnify(self, k: int) -> "QueryBuilder":
        return QueryBuilder(q.Magnify(self._node, k))

    def coarsen(self, k: int) -> "QueryBuilder":
        return QueryBuilder(q.Coarsen(self._node, k))

    def rotate(self, angle_deg: float) -> "QueryBuilder":
        return QueryBuilder(q.Rotate(self._node, angle_deg))

    def reproject(self, dst_crs: CRS, method: str = "bilinear") -> "QueryBuilder":
        return QueryBuilder(q.Reproject(self._node, dst_crs, method))

    # -- compositions ---------------------------------------------------------------

    def compose(self, other: "QueryBuilder | q.QueryNode", gamma: str) -> "QueryBuilder":
        right = other.build() if isinstance(other, QueryBuilder) else other
        if not isinstance(right, q.QueryNode):
            raise QueryError("compose() expects a QueryBuilder or QueryNode")
        return QueryBuilder(q.Compose(self._node, right, gamma))

    def __add__(self, other: "QueryBuilder") -> "QueryBuilder":
        return self.compose(other, "+")

    def __sub__(self, other: "QueryBuilder") -> "QueryBuilder":
        return self.compose(other, "-")

    def __mul__(self, other: "QueryBuilder") -> "QueryBuilder":
        return self.compose(other, "*")

    def __truediv__(self, other: "QueryBuilder") -> "QueryBuilder":
        return self.compose(other, "/")

    # -- aggregates --------------------------------------------------------------

    def temporal_agg(self, func: str, window: int, mode: str = "sliding") -> "QueryBuilder":
        return QueryBuilder(q.TemporalAgg(self._node, func, window, mode))

    def region_agg(
        self, regions: dict[str, Region] | Iterable[tuple[str, Region]], func: str = "mean"
    ) -> "QueryBuilder":
        pairs = tuple(regions.items() if isinstance(regions, dict) else regions)
        return QueryBuilder(q.RegionAgg(self._node, pairs, func))

    def __repr__(self) -> str:
        return f"QueryBuilder({self._node.describe()})"


class _QFactory:
    """Entry points for building queries (exposed as ``Q``)."""

    @staticmethod
    def stream(stream_id: str) -> QueryBuilder:
        return QueryBuilder(q.StreamRef(stream_id))

    @staticmethod
    def wrap(node: q.QueryNode) -> QueryBuilder:
        return QueryBuilder(node)

    @staticmethod
    def ndvi(nir: str, vis: str) -> QueryBuilder:
        return QueryBuilder(q.Compose(q.StreamRef(nir), q.StreamRef(vis), "ndvi"))

    @staticmethod
    def evi2(nir: str, vis: str) -> QueryBuilder:
        return QueryBuilder(q.Compose(q.StreamRef(nir), q.StreamRef(vis), "evi2"))


Q = _QFactory()
