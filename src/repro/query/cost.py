"""Operator cost model (Section 3's space/time discussion, quantified).

For each query node the model predicts, per source frame:

* ``work`` — point touches (time proxy),
* ``buffer`` — points of intermediate image data the operator must hold,

from stream profiles (frame geometry per source stream). The predictions
deliberately use only information the paper says is available — known
maximum frame sizes, scan organizations, region geometry — and experiment
A1 compares them against the engine's measured buffer high-water marks.

The optimizer uses the aggregate estimate to pick between equivalent
rewrites; "optimizing queries with respect to regions of interest has the
greatest benefit" falls out of the spatial-selectivity term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..core.stream import Organization, StreamMetadata
from ..errors import PlanError, RegionError
from ..geo.crs import CRS
from ..geo.region import BoundingBox
from . import ast as q
from .calibration import CalibrationProfile

__all__ = ["StreamProfile", "Estimate", "NodeCost", "estimate_query", "REPROJECT_BAND_FRACTION"]

# Fraction of a frame a re-projection is assumed to buffer when emitting
# incrementally (row-band reprojection; see operators/reprojection.py).
REPROJECT_BAND_FRACTION = 0.2


@dataclass(frozen=True)
class StreamProfile:
    """What the planner knows about a source stream's geometry."""

    frame_points: int
    frame_bbox: BoundingBox
    row_width: int
    organization: Organization
    crs: CRS

    @staticmethod
    def from_metadata(metadata: StreamMetadata, frame_bbox: BoundingBox) -> "StreamProfile":
        if metadata.max_frame_shape is None:
            raise PlanError(
                f"stream {metadata.stream_id!r} has no max_frame_shape; cost "
                "estimation needs the known frame size (Section 3.2)"
            )
        h, w = metadata.max_frame_shape
        return StreamProfile(
            frame_points=h * w,
            frame_bbox=frame_bbox,
            row_width=w,
            organization=metadata.organization,
            crs=metadata.crs,
        )


@dataclass(frozen=True)
class Estimate:
    """Running estimate while folding over a query tree."""

    points: float  # points per source frame flowing at this level
    bbox: BoundingBox | None
    crs: CRS
    row_width: float
    organization: Organization
    work: float
    buffer: float  # total buffered points across operators so far
    max_op_buffer: float
    # Predicted wall seconds per frame; only set when a CalibrationProfile
    # was supplied (work is otherwise a unitless point-touch count).
    seconds: float | None = None

    def charged(self, work: float = 0.0, op_buffer: float = 0.0) -> "Estimate":
        return replace(
            self,
            work=self.work + work,
            buffer=self.buffer + op_buffer,
            max_op_buffer=max(self.max_op_buffer, op_buffer),
        )


@dataclass(frozen=True)
class NodeCost:
    """Per-node breakdown entry for EXPLAIN output and the A1 ablation."""

    node: q.QueryNode
    points_in: float
    points_out: float
    op_buffer: float
    op_work: float


def _spatial_selectivity(bbox: BoundingBox | None, region_bbox: BoundingBox, crs: CRS) -> tuple[float, float, BoundingBox | None]:
    """(area fraction, width fraction, new bbox) of a restriction."""
    if region_bbox.crs != crs:
        try:
            region_bbox = region_bbox.transformed(crs)
        except RegionError:
            return 0.0, 0.0, None
    if bbox is None:
        return 1.0, 1.0, region_bbox
    inter = bbox.intersection(region_bbox)
    if inter is None or bbox.area == 0:
        return 0.0, 0.0, None
    return (
        inter.area / bbox.area,
        (inter.width / bbox.width) if bbox.width else 1.0,
        inter,
    )


def estimate_query(
    node: q.QueryNode,
    profiles: Mapping[str, StreamProfile],
    calibration: CalibrationProfile | None = None,
) -> tuple[Estimate, list[NodeCost]]:
    """Estimate per-frame cost of a query tree bottom-up.

    With a :class:`~repro.query.calibration.CalibrationProfile` the
    returned estimate also carries ``seconds`` — the work units priced by
    measured per-operator-kind coefficients.
    """
    breakdown: list[NodeCost] = []

    def visit(n: q.QueryNode) -> Estimate:
        if isinstance(n, q.Empty):
            from ..geo.crs import LATLON

            est = Estimate(
                points=0.0,
                bbox=None,
                crs=LATLON,
                row_width=0.0,
                organization=Organization.IMAGE_BY_IMAGE,
                work=0.0,
                buffer=0.0,
                max_op_buffer=0.0,
            )
            breakdown.append(NodeCost(n, 0.0, 0.0, 0.0, 0.0))
            return est
        if isinstance(n, q.StreamRef):
            try:
                p = profiles[n.stream_id]
            except KeyError:
                raise PlanError(f"no profile for stream {n.stream_id!r}") from None
            est = Estimate(
                points=float(p.frame_points),
                bbox=p.frame_bbox,
                crs=p.crs,
                row_width=float(p.row_width),
                organization=p.organization,
                work=0.0,
                buffer=0.0,
                max_op_buffer=0.0,
            )
            breakdown.append(NodeCost(n, 0.0, est.points, 0.0, 0.0))
            return est

        if isinstance(n, q.Compose):
            left = visit(n.left)
            right = visit(n.right)
            points = min(left.points, right.points)
            if left.organization is Organization.IMAGE_BY_IMAGE:
                op_buffer = min(left.points, right.points)  # a full image waits
            else:
                op_buffer = max(left.row_width, right.row_width)  # one row waits
            work = left.points + right.points
            est = Estimate(
                points=points,
                bbox=left.bbox,
                crs=left.crs,
                row_width=min(left.row_width, right.row_width),
                organization=left.organization,
                work=left.work + right.work + work,
                buffer=left.buffer + right.buffer + op_buffer,
                max_op_buffer=max(left.max_op_buffer, right.max_op_buffer, op_buffer),
            )
            breakdown.append(NodeCost(n, work, points, op_buffer, work))
            return est

        child = visit(n.children[0]) if n.children else None
        if child is None:
            raise PlanError(f"unhandled leaf node {type(n).__name__}")

        if isinstance(n, q.SpatialRestrict):
            frac, wfrac, bbox = _spatial_selectivity(
                child.bbox, n.region.bounding_box, child.crs
            )
            points = child.points * frac
            est = replace(
                child, points=points, bbox=bbox, row_width=child.row_width * wfrac
            ).charged(work=child.points)
            breakdown.append(NodeCost(n, child.points, points, 0.0, child.points))
            return est

        if isinstance(n, (q.TemporalRestrict, q.ValueRestrict, q.ValueMap)):
            est = child.charged(work=child.points)
            breakdown.append(NodeCost(n, child.points, child.points, 0.0, child.points))
            return est

        if isinstance(n, q.Stretch):
            est = child.charged(work=2.0 * child.points, op_buffer=child.points)
            breakdown.append(
                NodeCost(n, child.points, child.points, child.points, 2.0 * child.points)
            )
            return est

        if isinstance(n, q.Magnify):
            k2 = float(n.k * n.k)
            points = child.points * k2
            est = replace(
                child, points=points, row_width=child.row_width * n.k
            ).charged(work=points)
            breakdown.append(NodeCost(n, child.points, points, 0.0, points))
            return est

        if isinstance(n, q.Coarsen):
            k2 = float(n.k * n.k)
            points = child.points / k2
            op_buffer = n.k * child.row_width
            est = replace(
                child, points=points, row_width=child.row_width / n.k
            ).charged(work=child.points, op_buffer=op_buffer)
            breakdown.append(NodeCost(n, child.points, points, op_buffer, child.points))
            return est

        if isinstance(n, q.Rotate):
            # Output covers the rotated extent; points grow by <= 2x.
            work = 2.0 * child.points
            est = child.charged(work=work, op_buffer=child.points)
            breakdown.append(NodeCost(n, child.points, child.points, child.points, work))
            return est

        if isinstance(n, q.Reproject):
            op_buffer = REPROJECT_BAND_FRACTION * child.points
            work = 4.0 * child.points  # bilinear: four taps per output point
            bbox = None
            if child.bbox is not None:
                try:
                    bbox = child.bbox.transformed(n.dst_crs)
                except RegionError:
                    bbox = None
            est = replace(child, bbox=bbox, crs=n.dst_crs).charged(
                work=work, op_buffer=op_buffer
            )
            breakdown.append(NodeCost(n, child.points, child.points, op_buffer, work))
            return est

        if isinstance(n, q.TemporalAgg):
            op_buffer = float(n.window) * child.points
            est = child.charged(work=child.points * n.window, op_buffer=op_buffer)
            breakdown.append(
                NodeCost(n, child.points, child.points, op_buffer, child.points * n.window)
            )
            return est

        if isinstance(n, q.RegionAgg):
            points = float(len(n.regions))
            est = replace(child, points=points).charged(work=child.points)
            breakdown.append(NodeCost(n, child.points, points, 0.0, child.points))
            return est

        raise PlanError(f"cost model does not know node type {type(n).__name__}")

    total = visit(node)
    if calibration is not None:
        total = replace(total, seconds=calibration.cost_seconds(breakdown))
    return total, breakdown
