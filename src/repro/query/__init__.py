"""Query layer: AST, textual parser, fluent builder, optimizer, planner, costs."""

from . import ast
from .adaptive import AdaptiveDecision, AdaptivePolicy
from .builder import Q, QueryBuilder
from .calibration import CalibrationProfile, CalibrationSample
from .cost import Estimate, NodeCost, StreamProfile, estimate_query
from .optimizer import OptimizeResult, infer_crs, optimize
from .parser import parse_query, resolve_crs
from .planner import plan_query

__all__ = [
    "ast",
    "Q",
    "QueryBuilder",
    "parse_query",
    "resolve_crs",
    "optimize",
    "OptimizeResult",
    "infer_crs",
    "plan_query",
    "estimate_query",
    "StreamProfile",
    "Estimate",
    "NodeCost",
    "CalibrationProfile",
    "CalibrationSample",
    "AdaptivePolicy",
    "AdaptiveDecision",
]
