"""Physical planning: lower a query tree onto operator pipelines.

The planner maps each AST node to a fresh operator instance (fresh so
that concurrently registered queries never share mutable state) and
builds the lazy GeoStream for the whole expression. It also exposes
``explain``, combining the optimizer trace with per-node cost estimates.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..core.stream import GeoStream
from ..core.valueset import NDVI_VALUES, ValueSet
from ..engine.pipeline import compose_streams
from ..errors import PlanError
from ..operators.composition import StreamComposition, normalized_difference
from ..operators.aggregate import RegionAggregate as RegionAggregateOp
from ..operators.aggregate import TemporalAggregate as TemporalAggregateOp
from ..operators.base import Operator
from ..operators.reprojection import Reproject as ReprojectOp
from ..operators.restriction import (
    SpatialRestriction,
    TemporalRestriction,
    ValueRestriction,
)
from ..operators.spatial_transform import Coarsen as CoarsenOp
from ..operators.spatial_transform import Magnify as MagnifyOp
from ..operators.spatial_transform import Rotate as RotateOp
from ..operators.value_transform import (
    CountsToReflectance,
    FrameStretch,
    PointwiseTransform,
    Rescale,
)
from . import ast as q

__all__ = ["plan_query", "build_value_map"]


def _empty_stream(reason: str) -> GeoStream:
    """A stream that never produces chunks (optimizer-proven empty query)."""
    from ..core.stream import Organization, StreamMetadata
    from ..core.valueset import FLOAT32
    from ..geo.crs import LATLON

    metadata = StreamMetadata(
        stream_id=f"(empty:{reason})" if reason else "(empty)",
        band="",
        crs=LATLON,
        organization=Organization.IMAGE_BY_IMAGE,
        value_set=FLOAT32,
        description=f"provably empty: {reason}" if reason else "provably empty",
    )
    return GeoStream(metadata, lambda: iter(()))


def build_value_map(node: q.ValueMap) -> Operator:
    """Instantiate the operator for a named pointwise value transform."""
    kind = node.kind
    if kind == "rescale":
        return Rescale(node.param("gain", 1.0), node.param("offset", 0.0))
    if kind == "reflectance":
        return CountsToReflectance(bits=int(node.param("bits", 10.0)))
    if kind == "gamma":
        exponent = node.param("exponent", 1.0)
        return PointwiseTransform(
            lambda v: np.power(np.clip(v.astype(np.float64), 0.0, None), exponent),
            label=f"gamma({exponent:g})",
        )
    if kind == "negate":
        return PointwiseTransform(lambda v: -v.astype(np.float64), label="negate")
    if kind == "absolute":
        return PointwiseTransform(lambda v: np.abs(v.astype(np.float64)), label="abs")
    raise PlanError(f"unknown value transform kind {kind!r}")


def _composition_operator(gamma: str, timestamp_policy: str) -> StreamComposition:
    if gamma == "ndvi":
        return StreamComposition(
            normalized_difference,
            timestamp_policy=timestamp_policy,
            band="ndvi",
            output_value_set=NDVI_VALUES,
        )
    if gamma == "evi2":

        def kernel(n: np.ndarray, r: np.ndarray) -> np.ndarray:
            denom = n + 2.4 * r + 1.0
            with np.errstate(divide="ignore", invalid="ignore"):
                out = 2.5 * (n - r) / denom
            return np.where(np.isfinite(out), out, np.nan)

        return StreamComposition(
            kernel,
            timestamp_policy=timestamp_policy,
            band="evi2",
            output_value_set=ValueSet("evi2", np.float32, lo=-2.5, hi=2.5),
        )
    return StreamComposition(gamma, timestamp_policy=timestamp_policy)


def plan_query(
    node: q.QueryNode,
    catalog: Mapping[str, GeoStream] | Callable[[str], GeoStream],
) -> GeoStream:
    """Build the executable GeoStream for a query tree.

    ``catalog`` resolves stream ids to source GeoStreams (a mapping or a
    resolver function). Fresh operator instances are created per call.
    """

    def resolve(stream_id: str) -> GeoStream:
        if callable(catalog):
            return catalog(stream_id)
        try:
            return catalog[stream_id]
        except KeyError:
            raise PlanError(f"unknown stream {stream_id!r}") from None

    def lower(n: q.QueryNode) -> GeoStream:
        if isinstance(n, q.StreamRef):
            return resolve(n.stream_id)
        if isinstance(n, q.Empty):
            return _empty_stream(n.reason)
        if isinstance(n, q.Compose):
            left = lower(n.left)
            right = lower(n.right)
            policy = left.metadata.timestamp_policy
            return compose_streams(left, right, _composition_operator(n.gamma, policy))

        child = lower(n.children[0])
        if isinstance(n, q.SpatialRestrict):
            region = n.region
            if region.crs != child.crs:
                # Safety net: the optimizer normally maps regions across
                # CRSs; do it here too so unoptimized plans still run.
                region = region.transformed(child.crs)
            return child.pipe(SpatialRestriction(region))
        if isinstance(n, q.TemporalRestrict):
            return child.pipe(TemporalRestriction(n.timeset, on_sector=n.on_sector))
        if isinstance(n, q.ValueRestrict):
            return child.pipe(ValueRestriction(lo=n.lo, hi=n.hi))
        if isinstance(n, q.ValueMap):
            return child.pipe(build_value_map(n))
        if isinstance(n, q.Stretch):
            return child.pipe(FrameStretch(n.kind))
        if isinstance(n, q.Magnify):
            return child.pipe(MagnifyOp(n.k))
        if isinstance(n, q.Coarsen):
            return child.pipe(CoarsenOp(n.k))
        if isinstance(n, q.Rotate):
            return child.pipe(RotateOp(n.angle_deg))
        if isinstance(n, q.Reproject):
            return child.pipe(ReprojectOp(n.dst_crs, method=n.method))
        if isinstance(n, q.TemporalAgg):
            return child.pipe(TemporalAggregateOp(n.window, n.func, n.mode))
        if isinstance(n, q.RegionAgg):
            return child.pipe(RegionAggregateOp(dict(n.regions), n.func))
        raise PlanError(f"planner does not know node type {type(n).__name__}")

    return lower(node)
