"""Physical planning: lower a query tree onto operator pipelines.

The planner is a thin lowering over the plan IR (``repro.plan``): the
query tree is canonicalized — commutative compositions ordered, adjacent
restrictions folded, regions resolved into their input CRS — and the
canonical plan is turned into a lazy GeoStream with fresh operator
instances per call (fresh so that concurrently registered queries never
share mutable state). The push compiler lowers from the same IR, so
operator construction lives in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.stream import GeoStream
from ..errors import PlanError
from . import ast as q

__all__ = ["plan_query"]


def plan_query(
    node: q.QueryNode,
    catalog: Mapping[str, GeoStream] | Callable[[str], GeoStream],
    columnar: bool | None = None,
) -> GeoStream:
    """Build the executable GeoStream for a query tree.

    ``catalog`` resolves stream ids to source GeoStreams (a mapping or a
    resolver function). Fresh operator instances are created per call.
    ``columnar`` selects the operators' execution mode (None: the
    ``REPRO_COLUMNAR`` process default).
    """
    # Imported lazily: repro.plan itself imports the query package.
    from ..plan import canonicalize, plan_to_stream

    def resolve(stream_id: str) -> GeoStream:
        if callable(catalog):
            return catalog(stream_id)
        try:
            return catalog[stream_id]
        except KeyError:
            raise PlanError(f"unknown stream {stream_id!r}") from None

    # Resolve every referenced source up front: their CRSs and timestamp
    # policies feed canonicalization (and unknown streams fail early).
    sources: dict[str, GeoStream] = {}
    for ref in (n for n in q.walk(node) if isinstance(n, q.StreamRef)):
        if ref.stream_id not in sources:
            sources[ref.stream_id] = resolve(ref.stream_id)
    plan = canonicalize(
        node,
        crs_of={sid: s.crs for sid, s in sources.items()},
        policy_of={sid: s.metadata.timestamp_policy for sid, s in sources.items()},
        default_policy="measured",
    )
    return plan_to_stream(
        plan,
        lambda sid: sources[sid] if sid in sources else resolve(sid),
        columnar=columnar,
    )
