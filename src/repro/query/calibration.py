"""Cost-model calibration from observed stage statistics.

The static cost model (:mod:`repro.query.cost`) predicts ``work`` in
*point touches* — a unit, not a wall time. A :class:`CalibrationProfile`
closes the loop: from accumulated :class:`~repro.obs.stats.StageStats`
it fits one *seconds per point-touch* coefficient per operator kind
(plan-node class name), so ``estimate_query``/``estimate_plan`` can
price rewritings in measured seconds instead of seed guesses.

The fit is a per-kind ratio estimator — ``Σ observed wall seconds /
Σ estimated work units`` over every stage of that kind — which is the
least-squares slope through the origin weighted by work. An
*uncalibrated* profile prices every kind with one seed constant
(:data:`DEFAULT_SECONDS_PER_UNIT`); ``benchmarks/bench_f5_calibration``
shows the fitted profile's relative error is far smaller.

Profiles persist to JSON so a calibration run can feed later planning
sessions (``CalibrationProfile.save`` / ``load``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..errors import PlanError

__all__ = [
    "CalibrationSample",
    "CalibrationProfile",
    "DEFAULT_SECONDS_PER_UNIT",
    "kind_of",
]

# Seed guess before any run has been measured: one microsecond per point
# touch (1M touches/s). Deliberately conservative — vectorized numpy
# operators run orders of magnitude faster, which is exactly the gap
# calibration closes.
DEFAULT_SECONDS_PER_UNIT = 1e-6

# AST node kinds and their plan-IR spellings share one ledger.
_KIND_ALIASES = {"StreamRef": "SourceScan", "Empty": "EmptyPlan"}


def kind_of(node: object) -> str:
    """Calibration kind of an AST or plan node: its class name, unified."""
    name = type(node).__name__
    return _KIND_ALIASES.get(name, name)


@dataclass(frozen=True)
class CalibrationSample:
    """One observation: a stage of ``kind`` spent ``wall_s`` on ``work_units``."""

    kind: str
    work_units: float
    wall_s: float


@dataclass(frozen=True)
class CalibrationProfile:
    """Per-operator-kind seconds-per-work-unit coefficients."""

    coefficients: Mapping[str, float] = field(default_factory=dict)
    default_coefficient: float = DEFAULT_SECONDS_PER_UNIT
    n_samples: int = 0
    # The operator kinds the fit actually observed, in sorted order. A
    # plan whose kind set differs was priced against a different operator
    # mix — the profile is *stale* for it (see :meth:`stale_kinds`).
    kinds: tuple[str, ...] = ()

    def coefficient(self, kind: str) -> float:
        return self.coefficients.get(kind, self.default_coefficient)

    @property
    def kind_fingerprint(self) -> str:
        """Stable digest of the fitted operator-kind set.

        Persisted in the profile JSON so tooling can detect staleness
        without parsing the coefficient table: two profiles fitted over
        the same operator mix share a fingerprint.
        """
        digest = hashlib.sha1("\n".join(self.kinds).encode("utf-8"))
        return digest.hexdigest()[:12]

    def stale_kinds(
        self, live_kinds: Iterable[str]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """(unfitted, unused): how a live plan's kind set diverges.

        ``unfitted`` — kinds the plan runs that the fit never observed
        (priced by the fallback coefficient); ``unused`` — kinds the fit
        observed that the plan no longer contains. Both empty means the
        profile matches the plan's operator mix exactly.
        """
        live = set(live_kinds)
        fitted = set(self.kinds)
        return tuple(sorted(live - fitted)), tuple(sorted(fitted - live))

    def seconds(self, kind: str, work_units: float) -> float:
        return self.coefficient(kind) * work_units

    def cost_seconds(self, breakdown: Sequence) -> float:
        """Predicted wall seconds for a ``NodeCost`` breakdown (per frame)."""
        return sum(self.seconds(kind_of(c.node), c.op_work) for c in breakdown)

    @classmethod
    def uncalibrated(
        cls, default: float = DEFAULT_SECONDS_PER_UNIT
    ) -> "CalibrationProfile":
        """The seed profile: one constant for every operator kind."""
        return cls(coefficients={}, default_coefficient=default, n_samples=0)

    @classmethod
    def fit(
        cls,
        samples: Iterable[CalibrationSample],
        default: float | None = None,
    ) -> "CalibrationProfile":
        """Fit per-kind coefficients; unknown kinds fall back to ``default``.

        With ``default=None`` the fallback is the *pooled* coefficient
        across every sample, so even unseen operator kinds are priced
        from this machine's measured throughput.
        """
        work: dict[str, float] = {}
        wall: dict[str, float] = {}
        n = 0
        for s in samples:
            if s.work_units <= 0:
                continue
            n += 1
            work[s.kind] = work.get(s.kind, 0.0) + float(s.work_units)
            wall[s.kind] = wall.get(s.kind, 0.0) + float(s.wall_s)
        coefficients = {kind: wall[kind] / work[kind] for kind in work}
        if default is None:
            total_work = sum(work.values())
            default = (
                sum(wall.values()) / total_work
                if total_work > 0
                else DEFAULT_SECONDS_PER_UNIT
            )
        return cls(
            coefficients=coefficients,
            default_coefficient=default,
            n_samples=n,
            kinds=tuple(sorted(work)),
        )

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "default_coefficient": self.default_coefficient,
                "n_samples": self.n_samples,
                "coefficients": dict(sorted(self.coefficients.items())),
                "kinds": list(self.kinds),
                "kind_fingerprint": self.kind_fingerprint,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"invalid calibration profile JSON: {exc}") from exc
        if not isinstance(payload, dict) or "coefficients" not in payload:
            raise PlanError("calibration profile JSON must carry 'coefficients'")
        profile = cls(
            coefficients={str(k): float(v) for k, v in payload["coefficients"].items()},
            default_coefficient=float(
                payload.get("default_coefficient", DEFAULT_SECONDS_PER_UNIT)
            ),
            n_samples=int(payload.get("n_samples", 0)),
            kinds=tuple(str(k) for k in payload.get("kinds", ())),
        )
        recorded = payload.get("kind_fingerprint")
        if recorded is not None and recorded != profile.kind_fingerprint:
            raise PlanError(
                f"calibration profile kind fingerprint {recorded!r} does not "
                f"match its kind set (expected {profile.kind_fingerprint!r}); "
                "the file was hand-edited or truncated — re-fit it"
            )
        return profile

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationProfile":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
