"""Query rewriting (Section 3.4).

The paper's running example: in
``((f_val((G1 - G2) / (G2 + G1))) f_UTM) |R`` the final spatial
restriction R "can be pushed inwards and applied first to G1 and G2
before any composition. However, because in the query R is based on the
UTM coordinate system, R needs to be mapped to the coordinate system C."
And: "the query optimizer has to identify such rewrites in particular for
spatial selections, as these result in the most significant space and
time gains."

Implemented rules (each records its name when applied):

* ``merge-spatial`` / ``merge-temporal`` — collapse stacked restrictions
  by intersecting regions / time sets.
* ``push-spatial-valuemap`` — R(f_val(G)) = f_val(R(G)) (exact for
  pointwise transforms).
* ``push-spatial-stretch`` — same through frame stretches; *inexact*:
  the stretch then normalizes over the restricted region instead of the
  full frame (usually the intent; disable with ``allow_inexact=False``).
* ``push-spatial-compose`` — R(G1 γ G2) = R(G1) γ R(G2).
* ``push-spatial-reproject`` — insert a conservative source-CRS bounding
  box below the re-projection (the region mapped through the CRS change),
  keeping the exact restriction on top. This is the paper's R -> C
  mapping; the inner box prunes data early, the outer restriction keeps
  semantics exact.
* ``push-spatial-magnify`` — restrict before magnification. *Inexact* at
  pixel boundaries (a coarse pixel centered just outside R may own fine
  sub-pixels inside R), so gated behind ``allow_inexact`` like the
  stretch pushdown; the outer restriction is kept either way.
* ``push-temporal-*`` — temporal restrictions commute with every unary
  operator and distribute over composition.
* ``temporal-first`` — evaluate the O(1)-per-chunk temporal test before
  per-point spatial tests.
* ``drop-identity`` — remove Magnify/Coarsen k=1 and Rotate 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.timeset import intersect_timesets
from ..errors import RegionError
from ..geo.crs import CRS
from ..geo.region import BoundingBox, intersect_regions
from . import ast as q

__all__ = ["optimize", "OptimizeResult", "infer_crs"]


@dataclass
class OptimizeResult:
    """An optimized tree plus the trace of applied rule names."""

    node: q.QueryNode
    applied: list[str]

    def explain(self) -> str:
        rules = ", ".join(self.applied) if self.applied else "(no rewrites)"
        return f"applied: {rules}\n{self.node.pretty()}"


def infer_crs(node: q.QueryNode, crs_of_stream: Mapping[str, CRS]) -> CRS | None:
    """The CRS a node's output lives in, given source-stream CRSs.

    Every operator preserves the coordinate system except re-projection.
    Returns None when a referenced stream is unknown.
    """
    if isinstance(node, q.StreamRef):
        return crs_of_stream.get(node.stream_id)
    if isinstance(node, q.Reproject):
        return node.dst_crs
    if isinstance(node, q.Compose):
        return infer_crs(node.left, crs_of_stream)
    if node.children:
        return infer_crs(node.children[0], crs_of_stream)
    return None


class _Rewriter:
    def __init__(
        self,
        crs_of_stream: Mapping[str, CRS],
        allow_inexact: bool,
    ) -> None:
        self.crs_of_stream = crs_of_stream
        self.allow_inexact = allow_inexact
        self.applied: list[str] = []

    # -- individual rules; return a replacement node or None ------------------

    def merge_spatial(self, node: q.QueryNode) -> q.QueryNode | None:
        if not (
            isinstance(node, q.SpatialRestrict)
            and isinstance(node.child, q.SpatialRestrict)
        ):
            return None
        inner = node.child
        if node.region.crs != inner.region.crs:
            return None
        if node.region is inner.region or node.region == inner.region:
            return inner  # identical restriction twice
        merged = intersect_regions(node.region, inner.region)
        return q.SpatialRestrict(inner.child, merged)

    def merge_temporal(self, node: q.QueryNode) -> q.QueryNode | None:
        if not (
            isinstance(node, q.TemporalRestrict)
            and isinstance(node.child, q.TemporalRestrict)
            and node.on_sector == node.child.on_sector
        ):
            return None
        inner = node.child
        if node.timeset == inner.timeset:
            return inner
        merged = intersect_timesets(node.timeset, inner.timeset)
        return q.TemporalRestrict(inner.child, merged, node.on_sector)

    @staticmethod
    def _pruned_below(subtree: q.QueryNode, box: BoundingBox) -> bool:
        """True when the subtree already contains a spatial restriction at
        least as tight as ``box`` (same CRS), so inserting another one
        would only loop: the inserted restriction sinks toward the leaves
        on later passes, and without this check the push rule would keep
        re-firing on the then-unrestricted intermediate node."""
        slack = box.expanded(
            1e-9 * (abs(box.width) + abs(box.height) + 1.0)
        )
        for sub in q.walk(subtree):
            if isinstance(sub, q.SpatialRestrict) and sub.region.crs == box.crs:
                inner_box = sub.region.bounding_box
                if slack.contains_box(inner_box):
                    return True
        return False

    def push_spatial(self, node: q.QueryNode) -> q.QueryNode | None:
        if not isinstance(node, q.SpatialRestrict):
            return None
        child = node.child
        region = node.region

        if isinstance(child, q.ValueMap):
            self._note("push-spatial-valuemap")
            return child.with_children(q.SpatialRestrict(child.child, region))

        if isinstance(child, q.Stretch):
            if not self.allow_inexact:
                return None
            self._note("push-spatial-stretch")
            return child.with_children(q.SpatialRestrict(child.child, region))

        if isinstance(child, q.Compose):
            self._note("push-spatial-compose")
            return q.Compose(
                q.SpatialRestrict(child.left, region),
                q.SpatialRestrict(child.right, region),
                child.gamma,
            )

        if isinstance(child, q.Magnify):
            # Inexact at pixel boundaries: a coarse pixel whose *center*
            # lies just outside R can still own fine sub-pixels whose
            # centers are inside R; pruning it first loses those points.
            # (Hypothesis found this; see test_property_algebra.)
            if not self.allow_inexact:
                return None
            if self._pruned_below(child, region.bounding_box):
                return None  # pruning already in place
            self._note("push-spatial-magnify")
            # Keep the outer restriction for pixel-exact boundaries; the
            # inner bounding box does the bulk pruning before zooming.
            return q.SpatialRestrict(
                child.with_children(
                    q.SpatialRestrict(child.child, region.bounding_box)
                ),
                region,
            )

        if isinstance(child, q.Reproject):
            src_crs = infer_crs(child.child, self.crs_of_stream)
            if src_crs is None:
                return None
            try:
                mapped = region.bounding_box.transformed(src_crs)
            except RegionError:
                return None
            # Margin for the resampling kernel's footprint at the region
            # boundary (source resolution is unknown at this level, so a
            # small relative margin stands in for a few pixels).
            mapped = mapped.expanded(0.03 * mapped.width, 0.03 * mapped.height)
            # Do not re-insert if pruning is already in place below.
            if self._pruned_below(child, mapped):
                return None
            self._note("push-spatial-reproject")
            return q.SpatialRestrict(
                child.with_children(q.SpatialRestrict(child.child, mapped)),
                region,
            )
        return None

    def push_temporal(self, node: q.QueryNode) -> q.QueryNode | None:
        if not isinstance(node, q.TemporalRestrict):
            return None
        child = node.child
        # ValueMap and Magnify are chunk-at-a-time and timestamp-preserving,
        # so the push is always exact. Stretch/Coarsen/Rotate/Reproject
        # buffer multi-row bands or whole frames whose rows carry different
        # measured timestamps: restricting the *input* rows by measured time
        # can split a frame and change the result at interval boundaries.
        # Sector-id restrictions are frame-granular, so they stay exact.
        exact = isinstance(child, (q.ValueMap, q.Magnify)) or node.on_sector
        if isinstance(
            child,
            (q.ValueMap, q.Stretch, q.Magnify, q.Coarsen, q.Rotate, q.Reproject),
        ) and (exact or self.allow_inexact):
            self._note("push-temporal-unary")
            return child.with_children(
                q.TemporalRestrict(child.child, node.timeset, node.on_sector)
            )
        if isinstance(child, q.Compose):
            self._note("push-temporal-compose")
            return q.Compose(
                q.TemporalRestrict(child.left, node.timeset, node.on_sector),
                q.TemporalRestrict(child.right, node.timeset, node.on_sector),
                child.gamma,
            )
        return None

    def temporal_first(self, node: q.QueryNode) -> q.QueryNode | None:
        # TemporalRestrict(SpatialRestrict(x)) -> SpatialRestrict(TemporalRestrict(x)):
        # the whole-chunk temporal check then runs before per-point tests.
        if isinstance(node, q.TemporalRestrict) and isinstance(
            node.child, q.SpatialRestrict
        ):
            inner = node.child
            return q.SpatialRestrict(
                q.TemporalRestrict(inner.child, node.timeset, node.on_sector),
                inner.region,
            )
        return None

    def push_value_through_rescale(self, node: q.QueryNode) -> q.QueryNode | None:
        """V-restriction through an affine value map is exact: invert the
        bounds. gain*v + offset in [lo, hi]  <=>  v in [(lo-offset)/gain,
        (hi-offset)/gain] (swapped when gain < 0)."""
        if not (
            isinstance(node, q.ValueRestrict)
            and isinstance(node.child, q.ValueMap)
            and node.child.kind == "rescale"
        ):
            return None
        vm = node.child
        gain = vm.param("gain", 1.0)
        offset = vm.param("offset", 0.0)
        if gain == 0.0:
            return None  # constant output; restriction can't be inverted
        lo = (node.lo - offset) / gain if node.lo is not None else None
        hi = (node.hi - offset) / gain if node.hi is not None else None
        if gain < 0:
            lo, hi = hi, lo
        self._note("push-value-rescale")
        return vm.with_children(q.ValueRestrict(vm.child, lo, hi))

    def prune_empty(self, node: q.QueryNode) -> q.QueryNode | None:
        """Replace provably-empty subtrees with an Empty leaf."""
        from ..geo.region import IntersectionRegion

        if isinstance(node, q.SpatialRestrict):
            region = node.region
            if isinstance(region, IntersectionRegion) and region.is_empty_hint:
                return q.Empty("disjoint spatial restrictions")
            bbox = region.bounding_box
            if bbox.is_degenerate and bbox.area == 0.0 and bbox.width == 0.0 and bbox.height == 0.0:
                # A zero-extent box only arises from an empty intersection.
                return q.Empty("degenerate region")
        if isinstance(node, q.TemporalRestrict) and node.timeset.definitely_empty:
            return q.Empty("empty time set")
        if isinstance(node, q.ValueRestrict):
            if node.lo is not None and node.hi is not None and node.lo > node.hi:
                return q.Empty("inverted value range")
        # Emptiness propagates through every operator.
        if isinstance(node, q.Compose):
            if isinstance(node.left, q.Empty) or isinstance(node.right, q.Empty):
                return q.Empty("composition with an empty input")
        elif node.children and isinstance(node.children[0], q.Empty) and not isinstance(
            node, q.Empty
        ):
            return node.children[0]
        return None

    def drop_identity(self, node: q.QueryNode) -> q.QueryNode | None:
        if isinstance(node, q.Magnify) and node.k == 1:
            return node.child
        if isinstance(node, q.Coarsen) and node.k == 1:
            return node.child
        if isinstance(node, q.Rotate) and node.angle_deg % 360.0 == 0.0:
            return node.child
        return None

    # -- driving ------------------------------------------------------------------

    _NAMED_RULES: tuple[tuple[str, str], ...] = (
        ("prune-empty", "prune_empty"),
        ("merge-spatial", "merge_spatial"),
        ("merge-temporal", "merge_temporal"),
        ("drop-identity", "drop_identity"),
        ("temporal-first", "temporal_first"),
        ("push-spatial", "push_spatial"),
        ("push-temporal", "push_temporal"),
        ("push-value-rescale", "push_value_through_rescale"),
    )

    def _note(self, name: str) -> None:
        self.applied.append(name)

    def rewrite(self, node: q.QueryNode) -> q.QueryNode:
        # Bottom-up: rewrite children first, then try rules at this node.
        children = node.children
        if children:
            new_children = tuple(self.rewrite(c) for c in children)
            if any(nc is not oc for nc, oc in zip(new_children, children)):
                node = node.with_children(*new_children)
        # Rules that record their own (more specific) trace entries.
        self_noting = {"push-spatial", "push-temporal", "push-value-rescale"}
        for name, method in self._NAMED_RULES:
            replacement = getattr(self, method)(node)
            if replacement is not None:
                if name not in self_noting:
                    self._note(name)
                return self.rewrite(replacement)
        return node


def optimize(
    node: q.QueryNode,
    crs_of_stream: Mapping[str, CRS] | None = None,
    allow_inexact: bool = True,
    max_passes: int = 8,
) -> OptimizeResult:
    """Rewrite a query tree to fixpoint (or ``max_passes``)."""
    rewriter = _Rewriter(crs_of_stream or {}, allow_inexact)
    current = node
    for _ in range(max_passes):
        new = rewriter.rewrite(current)
        if new == current:
            break
        current = new
    return OptimizeResult(current, rewriter.applied)
