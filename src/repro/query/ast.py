"""Query expressions: the closed algebra as an AST (Section 3).

Every node denotes a GeoStream; operators take GeoStream-denoting children
and denote GeoStreams again, so arbitrary nesting is well-formed — the
closure property "allows the formulation of complex queries ... and also
provides a basis for query optimization techniques, such as query
rewriting" (Section 3). The optimizer rewrites these trees; the planner
lowers them onto physical operator pipelines.

Nodes are immutable; rewriting produces new trees via ``with_children``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterator, Tuple

from ..core.timeset import TimeSet
from ..errors import QueryError
from ..geo.crs import CRS
from ..geo.region import Region

__all__ = [
    "QueryNode",
    "StreamRef",
    "Empty",
    "SpatialRestrict",
    "TemporalRestrict",
    "ValueRestrict",
    "ValueMap",
    "Stretch",
    "Magnify",
    "Coarsen",
    "Rotate",
    "Reproject",
    "Compose",
    "TemporalAgg",
    "RegionAgg",
    "walk",
    "count_nodes",
]


@dataclass(frozen=True)
class QueryNode:
    """Base class for all query expression nodes."""

    @property
    def children(self) -> Tuple["QueryNode", ...]:
        return tuple(
            getattr(self, f.name)
            for f in fields(self)
            if isinstance(getattr(self, f.name), QueryNode)
        )

    def with_children(self, *children: "QueryNode") -> "QueryNode":
        """Copy of this node with its child slots replaced, in field order."""
        child_fields = [
            f.name for f in fields(self) if isinstance(getattr(self, f.name), QueryNode)
        ]
        if len(children) != len(child_fields):
            raise QueryError(
                f"{type(self).__name__} has {len(child_fields)} children, "
                f"got {len(children)}"
            )
        return replace(self, **dict(zip(child_fields, children)))

    # -- pretty-printing -------------------------------------------------------

    def describe(self) -> str:
        """One-line operator description (overridden by subclasses)."""
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        """Indented tree rendering, used by EXPLAIN output."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class StreamRef(QueryNode):
    """A reference to a registered source GeoStream (leaf)."""

    stream_id: str

    def describe(self) -> str:
        return f"Stream({self.stream_id})"


@dataclass(frozen=True)
class Empty(QueryNode):
    """A provably-empty stream (leaf).

    Produced by the optimizer when restrictions cannot be satisfied —
    e.g. two spatial restrictions with disjoint regions, or a temporal
    restriction over an empty time set. Registering such a query costs
    nothing at execution time.
    """

    reason: str = ""

    def describe(self) -> str:
        return f"Empty({self.reason})" if self.reason else "Empty"


@dataclass(frozen=True)
class SpatialRestrict(QueryNode):
    """G|R — keep points inside a spatial region (Def. 6)."""

    child: QueryNode
    region: Region

    def describe(self) -> str:
        b = self.region.bounding_box
        return (
            f"SpatialRestrict({type(self.region).__name__} "
            f"[{b.xmin:g},{b.ymin:g}..{b.xmax:g},{b.ymax:g}] @{self.region.crs.name})"
        )


@dataclass(frozen=True)
class TemporalRestrict(QueryNode):
    """G|T — keep points whose timestamp is in T (Def. 7)."""

    child: QueryNode
    timeset: TimeSet
    on_sector: bool = False

    def describe(self) -> str:
        kind = "sector" if self.on_sector else "time"
        return f"TemporalRestrict({kind}: {self.timeset!r})"


@dataclass(frozen=True)
class ValueRestrict(QueryNode):
    """G|V — keep points whose value lies in [lo, hi] (Section 3.1)."""

    child: QueryNode
    lo: float | None = None
    hi: float | None = None

    def describe(self) -> str:
        return f"ValueRestrict([{self.lo}, {self.hi}])"


@dataclass(frozen=True)
class ValueMap(QueryNode):
    """Pointwise value transform f_val (Def. 8).

    ``kind`` selects a named transform: 'rescale' (gain, offset),
    'reflectance' (bits), 'gamma' (exponent), 'negate', 'absolute'.
    """

    child: QueryNode
    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def param(self, name: str, default: float | None = None) -> float:
        for key, value in self.params:
            if key == name:
                return value
        if default is None:
            raise QueryError(f"value transform {self.kind!r} missing parameter {name!r}")
        return default

    def describe(self) -> str:
        args = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return f"ValueMap({self.kind}{', ' if args else ''}{args})"


@dataclass(frozen=True)
class Stretch(QueryNode):
    """Frame-buffered contrast scaling (Section 3.2)."""

    child: QueryNode
    kind: str = "linear"  # linear | equalize | gaussian

    def describe(self) -> str:
        return f"Stretch({self.kind})"


@dataclass(frozen=True)
class Magnify(QueryNode):
    """Resolution increase by k (Fig. 2a, zero-buffer direction)."""

    child: QueryNode
    k: int = 2

    def describe(self) -> str:
        return f"Magnify(k={self.k})"


@dataclass(frozen=True)
class Coarsen(QueryNode):
    """Resolution decrease by 1/k (Fig. 2a, k-row buffering direction)."""

    child: QueryNode
    k: int = 2

    def describe(self) -> str:
        return f"Coarsen(k={self.k})"


@dataclass(frozen=True)
class Rotate(QueryNode):
    """Rotation about the frame center (frame-buffered warp)."""

    child: QueryNode
    angle_deg: float = 0.0

    def describe(self) -> str:
        return f"Rotate({self.angle_deg:g} deg)"


@dataclass(frozen=True)
class Reproject(QueryNode):
    """Re-projection to a new coordinate system (Fig. 2b)."""

    child: QueryNode
    dst_crs: CRS
    method: str = "bilinear"

    def describe(self) -> str:
        return f"Reproject(to={self.dst_crs.name}, {self.method})"


@dataclass(frozen=True)
class Compose(QueryNode):
    """G1 γ G2 — pointwise stream composition (Def. 10).

    ``gamma`` is one of '+', '-', '*', '/', 'sup', 'inf', or the macro
    kernels 'ndvi' / 'evi2' which expand to their band-math definitions.
    """

    left: QueryNode
    right: QueryNode
    gamma: str = "+"

    def describe(self) -> str:
        return f"Compose({self.gamma})"


@dataclass(frozen=True)
class TemporalAgg(QueryNode):
    """Per-pixel window aggregate (Section 6 extension, ref [27])."""

    child: QueryNode
    func: str = "mean"
    window: int = 2
    mode: str = "sliding"

    def describe(self) -> str:
        return f"TemporalAgg({self.func}, window={self.window}, {self.mode})"


@dataclass(frozen=True)
class RegionAgg(QueryNode):
    """Per-region scalar aggregates per frame (ref [27])."""

    child: QueryNode
    regions: tuple[tuple[str, Region], ...] = ()
    func: str = "mean"

    def describe(self) -> str:
        names = ", ".join(name for name, _ in self.regions)
        return f"RegionAgg({self.func}: {names})"


def walk(node: QueryNode) -> Iterator[QueryNode]:
    """Depth-first pre-order traversal."""
    yield node
    for child in node.children:
        yield from walk(child)


def count_nodes(node: QueryNode) -> int:
    return sum(1 for _ in walk(node))
