"""Observed per-stage runtime statistics for the shared plan DAG.

The cost model (:mod:`repro.query.cost`) prices plans from static
guesses; this module closes the loop by *measuring* each physical stage:
chunks/points/bytes in and out, wall time, selectivity, and a streaming
reservoir of per-chunk latencies for p50/p95/p99. Statistics accumulate
per subplan **fingerprint**, so a stage shared by many queries has one
ledger — exactly the granularity ``EXPLAIN ANALYZE`` and
:class:`~repro.query.calibration.CalibrationProfile` need.

Collection follows the registry's opt-in discipline: the DAG executor
checks :func:`current_collector` once per chunk and does no timing, no
provenance tagging, and no dict work when no collector is installed.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Iterator, Optional

from ..core.provenance import Provenance
from .registry import ObservabilityError

if TYPE_CHECKING:
    from ..plan.stages import PlanDAG

__all__ = [
    "Reservoir",
    "StageStats",
    "StatsCollector",
    "current_collector",
    "enable_stats",
    "disable_stats",
    "lineage",
    "format_lineage",
]


class Reservoir:
    """Fixed-size uniform sample of a stream (Vitter's algorithm R).

    Deterministic: the RNG is seeded from the owning stage's fingerprint,
    so repeated runs over the same data report the same quantiles.
    """

    __slots__ = ("capacity", "seen", "_sample", "_rng", "_sorted")

    def __init__(self, capacity: int = 256, seed: int | str = 0) -> None:
        if capacity < 1:
            raise ObservabilityError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.seen = 0
        self._sample: list[float] = []
        if isinstance(seed, str):
            seed = int.from_bytes(seed.encode("utf-8")[:8] or b"\0", "big")
        self._rng = random.Random(seed)
        self._sorted: list[float] | None = None

    def add(self, value: float) -> None:
        self.seen += 1
        self._sorted = None
        if len(self._sample) < self.capacity:
            self._sample.append(float(value))
            return
        j = self._rng.randrange(self.seen)
        if j < self.capacity:
            self._sample[j] = float(value)

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile of the sample; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            return None
        if self._sorted is None:
            self._sorted = sorted(self._sample)
        s = self._sorted
        pos = q * (len(s) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        frac = pos - lo
        return s[lo] * (1.0 - frac) + s[hi] * frac

    def __len__(self) -> int:
        return len(self._sample)


class StageStats:
    """Observed totals for one physical stage, keyed by subplan fingerprint."""

    __slots__ = (
        "fingerprint",
        "label",
        "kind",
        "calls",
        "chunks_in",
        "chunks_out",
        "points_in",
        "points_out",
        "bytes_in",
        "bytes_out",
        "wall_s",
        "latencies",
    )

    def __init__(self, fingerprint: str, label: str = "", kind: str = "") -> None:
        self.fingerprint = fingerprint
        self.label = label
        self.kind = kind
        self.calls = 0
        self.chunks_in = 0
        self.chunks_out = 0
        self.points_in = 0
        self.points_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.wall_s = 0.0
        self.latencies = Reservoir(seed=fingerprint)

    def observe(
        self,
        *,
        points_in: int,
        points_out: int,
        bytes_in: int,
        bytes_out: int,
        chunks_out: int,
        wall_s: float,
        chunks_in: int = 1,
    ) -> None:
        self.calls += 1
        self.chunks_in += chunks_in
        self.chunks_out += chunks_out
        self.points_in += points_in
        self.points_out += points_out
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out
        self.wall_s += wall_s
        self.latencies.add(wall_s)

    @property
    def selectivity(self) -> float | None:
        """points_out / points_in; None before any input."""
        if self.points_in == 0:
            return None
        return self.points_out / self.points_in

    @property
    def p50(self) -> float | None:
        return self.latencies.quantile(0.50)

    @property
    def p95(self) -> float | None:
        return self.latencies.quantile(0.95)

    @property
    def p99(self) -> float | None:
        return self.latencies.quantile(0.99)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "kind": self.kind,
            "calls": self.calls,
            "chunks_in": self.chunks_in,
            "chunks_out": self.chunks_out,
            "points_in": self.points_in,
            "points_out": self.points_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "wall_s": self.wall_s,
            "selectivity": self.selectivity,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
        }

    def __repr__(self) -> str:
        return (
            f"StageStats({self.label or self.fingerprint}: "
            f"{self.chunks_in}->{self.chunks_out} chunks, "
            f"{self.points_in}->{self.points_out} points, "
            f"{self.wall_s * 1e3:.2f} ms)"
        )


class StatsCollector:
    """Accumulates :class:`StageStats` per subplan fingerprint.

    One collector spans a whole observed run; the DAG executor fetches a
    stage's ledger once and publishes through it. Also flags the engine
    to tag chunks with :class:`~repro.core.provenance.Provenance`.
    """

    def __init__(self, reservoir_capacity: int = 256, provenance: bool = True) -> None:
        self.reservoir_capacity = reservoir_capacity
        self.provenance = provenance
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}
        # (stream_id -> scans seen) so sources can stamp scan ordinals.
        self.scans: dict[str, int] = {}
        self.frames_scanned: dict[str, int] = {}

    def stage(self, fingerprint: str, label: str = "", kind: str = "") -> StageStats:
        with self._lock:
            entry = self._stages.get(fingerprint)
            if entry is None:
                entry = StageStats(fingerprint, label=label, kind=kind)
                entry.latencies = Reservoir(
                    capacity=self.reservoir_capacity, seed=fingerprint
                )
                self._stages[fingerprint] = entry
            elif label and not entry.label:
                entry.label = label
                entry.kind = kind
            return entry

    def get(self, fingerprint: str) -> Optional[StageStats]:
        return self._stages.get(fingerprint)

    def note_scan(self, stream_id: str, last_in_frame: bool) -> int:
        """Record one raw source chunk; returns its scan ordinal."""
        ordinal = self.scans.get(stream_id, 0)
        self.scans[stream_id] = ordinal + 1
        if last_in_frame:
            self.frames_scanned[stream_id] = self.frames_scanned.get(stream_id, 0) + 1
        return ordinal

    @property
    def stages(self) -> dict[str, StageStats]:
        return self._stages

    def __iter__(self) -> Iterator[StageStats]:
        return iter(list(self._stages.values()))

    def __len__(self) -> int:
        return len(self._stages)

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self]

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()
            self.scans.clear()
            self.frames_scanned.clear()


# -- process-local collector, mirroring the metrics on/off switch ---------------

_collector: StatsCollector | None = None


def current_collector() -> StatsCollector | None:
    """Hot-path guard: stage statistics are recorded only when not None."""
    return _collector


def enable_stats(collector: StatsCollector | None = None) -> StatsCollector:
    global _collector
    _collector = collector if collector is not None else StatsCollector()
    return _collector


def disable_stats() -> None:
    global _collector
    _collector = None


# -- lineage queries ------------------------------------------------------------


def lineage(obj: object) -> Provenance | None:
    """The provenance tag of a chunk or delivered frame, if any.

    Accepts anything with a ``provenance`` attribute (chunks,
    ``DeliveredFrame``); returns None for untagged objects.
    """
    return getattr(obj, "provenance", None)


def format_lineage(obj: object, dag: "PlanDAG | None" = None) -> str:
    """Human-readable answer to "which stages and scans produced you?".

    With a ``PlanDAG`` the stage fingerprints are resolved to operator
    descriptions; without one the raw fingerprints are listed.
    """
    prov = obj if isinstance(obj, Provenance) else lineage(obj)
    if prov is None:
        return "lineage: untagged (run under a stats collector to record provenance)"

    def runs(ordinals: tuple[int, ...]) -> str:
        # Collapse consecutive ordinals: (0,1,2,5,7,8) -> "0..2, 5, 7..8".
        spans: list[str] = []
        start = prev = ordinals[0]
        for o in list(ordinals[1:]) + [None]:  # type: ignore[list-item]
            if o == prev + 1:
                prev = o
                continue
            spans.append(str(start) if start == prev else f"{start}..{prev}")
            if o is not None:
                start = prev = o
        return ", ".join(spans)

    lines = ["lineage:"]
    for sid in sorted(prov.stream_ids):
        ordinals = prov.scan_ordinals(sid)
        lines.append(f"  scans: {sid} ordinals [{runs(ordinals)}]")
    if prov.dropped_sources:
        lines.append(f"  scans: (+{prov.dropped_sources} earlier, beyond tag capacity)")
    describe = {}
    if dag is not None:
        describe = {
            stage.node.fingerprint: stage.node.describe() for stage in dag.order
        }
    for fp in sorted(prov.stages):
        desc = describe.get(fp)
        lines.append(f"  stage {fp}" + (f": {desc}" if desc else ""))
    if not prov.stages:
        lines.append("  stage: (raw scan, no operators applied)")
    return "\n".join(lines)
