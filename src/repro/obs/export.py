"""Exporters: JSON-lines snapshots and Prometheus text format.

Two consumers, two formats. Benchmarks and tests want a machine-readable
record of a whole run — :func:`collect_run` merges operator reports,
tracer spans, and registry state into one serializable record, and
:func:`snapshot_lines` / :func:`write_jsonl` flatten that into one JSON
object per line (``type`` discriminates: meta / operator / span / counter
/ gauge / histogram). Scrapers want the Prometheus exposition format —
:func:`to_prometheus` renders the registry with proper label escaping.

This module deliberately knows nothing about the engine: operator reports
arrive as dataclasses (or dicts) and are serialized generically, so the
exporters cannot create import cycles with the instrumented code.
"""

from __future__ import annotations

import io
import json
import math
import pathlib
import re
import time
from dataclasses import asdict, is_dataclass
from typing import Iterable, Optional, Sequence

from .registry import MetricsRegistry, get_registry
from .tracing import Tracer, current_tracer

__all__ = [
    "collect_run",
    "snapshot_lines",
    "write_jsonl",
    "to_prometheus",
]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _report_dict(report: object) -> dict:
    """Serialize an OperatorReport (or any dataclass / mapping) generically."""
    if is_dataclass(report) and not isinstance(report, type):
        out = asdict(report)
    elif isinstance(report, dict):
        out = dict(report)
    else:
        raise TypeError(f"cannot serialize operator report of type {type(report)!r}")
    out["type"] = "operator"
    return out


def collect_run(
    reports: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    label: str = "",
) -> dict:
    """Merge one run's operator reports, spans, and metrics into a record.

    ``tracer`` defaults to the active tracer (if any); ``registry``
    defaults to the process registry. The result round-trips through JSON.
    """
    if tracer is None:
        tracer = current_tracer()
    if registry is None:
        registry = get_registry()
    return {
        "type": "run",
        "label": label,
        "time_unix": time.time(),
        "operators": [_report_dict(r) for r in reports],
        "spans": tracer.to_dicts() if tracer is not None else [],
        "metrics": registry.snapshot(),
    }


def snapshot_lines(
    reports: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    label: str = "",
) -> list[dict]:
    """Flatten :func:`collect_run` into JSON-lines records (header first)."""
    run = collect_run(reports=reports, tracer=tracer, registry=registry, label=label)
    lines: list[dict] = [
        {
            "type": "meta",
            "label": run["label"],
            "time_unix": run["time_unix"],
            "n_operators": len(run["operators"]),
            "n_spans": len(run["spans"]),
            "n_metrics": len(run["metrics"]),
        }
    ]
    lines.extend(run["operators"])
    lines.extend(run["spans"])
    lines.extend(run["metrics"])
    return lines


def write_jsonl(
    path: str | pathlib.Path, records: Iterable[dict], append: bool = False
) -> int:
    """Write records one JSON object per line; returns the line count."""
    path = pathlib.Path(path)
    if path.parent != path:
        path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("a" if append else "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            n += 1
    return n


# -- Prometheus text exposition format ----------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _metric_name(name: str) -> str:
    name = _NAME_SANITIZE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_LABEL_SANITIZE.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    if registry is None:
        registry = get_registry()
    out = io.StringIO()
    seen_types: set[str] = set()
    for metric in registry:
        snap = metric.snapshot()
        name = _metric_name(snap["name"])
        if name not in seen_types:
            out.write(f"# TYPE {name} {snap['type']}\n")
            seen_types.add(name)
        labels = snap["labels"]
        if snap["type"] in ("counter", "gauge"):
            out.write(f"{name}{_format_labels(labels)} {_format_value(snap['value'])}\n")
            continue
        # Histogram: cumulative buckets, then sum and count.
        running = 0
        for bound, count in zip(snap["buckets"], snap["counts"]):
            running += count
            le = _format_labels(labels, {"le": _format_value(bound)})
            out.write(f"{name}_bucket{le} {running}\n")
        le = _format_labels(labels, {"le": "+Inf"})
        out.write(f"{name}_bucket{le} {snap['count']}\n")
        out.write(f"{name}_sum{_format_labels(labels)} {_format_value(snap['sum'])}\n")
        out.write(f"{name}_count{_format_labels(labels)} {snap['count']}\n")
        # Interpolated quantiles (summary-style companion series).
        for key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            value = snap.get(key)
            if value is not None:
                ql = _format_labels(labels, {"quantile": q})
                out.write(f"{name}{ql} {_format_value(value)}\n")
    return out.getvalue()
