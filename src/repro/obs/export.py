"""Exporters: JSON-lines snapshots, Prometheus text, and trace formats.

Two consumers, two formats. Benchmarks and tests want a machine-readable
record of a whole run — :func:`collect_run` merges operator reports,
tracer spans, and registry state into one serializable record, and
:func:`snapshot_lines` / :func:`write_jsonl` flatten that into one JSON
object per line (``type`` discriminates: meta / operator / span / counter
/ gauge / histogram). Scrapers want the Prometheus exposition format —
:func:`to_prometheus` renders the registry with proper label escaping.

Span trees are *normalized* on export: push-network spans record their
parent in consumer order (see ``Span.direction``), and
:func:`normalize_spans` re-parents those edges into dataflow order so
exported trees read source-to-sink regardless of execution mode. The raw
``Tracer.to_dicts()`` output is left untouched.

Frame traces (:mod:`repro.obs.trace`) export two ways:
:func:`traces_to_chrome` emits Chrome trace-event JSON (load it in
``chrome://tracing`` / Perfetto) and :func:`traces_to_otlp` emits an
OTLP-shaped ``resourceSpans`` document.

This module deliberately knows nothing about the engine: operator reports
arrive as dataclasses (or dicts) and are serialized generically, so the
exporters cannot create import cycles with the instrumented code.
"""

from __future__ import annotations

import io
import json
import math
import pathlib
import re
import time
from dataclasses import asdict, is_dataclass
from typing import Iterable, Optional, Sequence

from .registry import MetricsRegistry, get_registry
from .trace import FrameHop, FrameTrace, hop_tree, span_id_for
from .tracing import Tracer, current_tracer

__all__ = [
    "collect_run",
    "snapshot_lines",
    "write_jsonl",
    "to_prometheus",
    "register_build_info",
    "normalize_spans",
    "traces_to_chrome",
    "traces_to_otlp",
]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _report_dict(report: object) -> dict:
    """Serialize an OperatorReport (or any dataclass / mapping) generically."""
    if is_dataclass(report) and not isinstance(report, type):
        out = asdict(report)
    elif isinstance(report, dict):
        out = dict(report)
    else:
        raise TypeError(f"cannot serialize operator report of type {type(report)!r}")
    out["type"] = "operator"
    return out


def normalize_spans(spans: Sequence[dict]) -> list[dict]:
    """Re-parent consumer-direction spans into dataflow order.

    Pull-pipeline spans already parent producer-to-consumer
    (``direction == "dataflow"``) and pass through unchanged. Compiled
    push networks open stage spans parented on their *consumer*
    (``direction == "consumer"``); here each such edge is reversed so the
    consumer's exported parent is one of its producers. On fan-in the
    lowest-id producer wins and the rest land in
    ``attrs["extra_parents"]`` — the tree stays a tree but no lineage is
    lost. Input dicts are not mutated.
    """
    out = [dict(span) for span in spans]
    by_id = {span["span_id"]: span for span in out}
    producers: dict[int, list[int]] = {}
    for span in out:
        if span.get("direction") != "consumer":
            continue
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            producers.setdefault(parent, []).append(span["span_id"])
        # The producer becomes a dataflow root unless some edge below
        # re-parents it onto its own producer.
        span["parent_id"] = None
        span["direction"] = "dataflow"
    for consumer_id, prods in producers.items():
        consumer = by_id[consumer_id]
        prods.sort()
        consumer["parent_id"] = prods[0]
        if len(prods) > 1:
            attrs = dict(consumer.get("attrs") or {})
            attrs["extra_parents"] = prods[1:]
            consumer["attrs"] = attrs
    return out


def collect_run(
    reports: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    label: str = "",
) -> dict:
    """Merge one run's operator reports, spans, and metrics into a record.

    ``tracer`` defaults to the active tracer (if any); ``registry``
    defaults to the process registry. Spans are normalized to dataflow
    order (see :func:`normalize_spans`). The result round-trips through
    JSON.
    """
    if tracer is None:
        tracer = current_tracer()
    if registry is None:
        registry = get_registry()
    return {
        "type": "run",
        "label": label,
        "time_unix": time.time(),
        "operators": [_report_dict(r) for r in reports],
        "spans": normalize_spans(tracer.to_dicts()) if tracer is not None else [],
        "metrics": registry.snapshot(),
    }


def snapshot_lines(
    reports: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    label: str = "",
) -> list[dict]:
    """Flatten :func:`collect_run` into JSON-lines records (header first)."""
    run = collect_run(reports=reports, tracer=tracer, registry=registry, label=label)
    lines: list[dict] = [
        {
            "type": "meta",
            "label": run["label"],
            "time_unix": run["time_unix"],
            "n_operators": len(run["operators"]),
            "n_spans": len(run["spans"]),
            "n_metrics": len(run["metrics"]),
        }
    ]
    lines.extend(run["operators"])
    lines.extend(run["spans"])
    lines.extend(run["metrics"])
    return lines


def write_jsonl(
    path: str | pathlib.Path, records: Iterable[dict], append: bool = False
) -> int:
    """Write records one JSON object per line; returns the line count."""
    path = pathlib.Path(path)
    if path.parent != path:
        path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("a" if append else "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            n += 1
    return n


# -- Prometheus text exposition format ----------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _metric_name(name: str) -> str:
    name = _NAME_SANITIZE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_LABEL_SANITIZE.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# Operator-facing help text for the well-known metric families. Families
# not listed fall back to a generated one-liner; either way every family
# gets exactly one ``# HELP`` line in the exposition output.
_HELP: dict[str, str] = {
    "repro_build_info": "Build identity (constant 1; labels carry the facts).",
    "repro_slo_lag_seconds": "Current delivery lag per query (worst of event/clock lag).",
    "repro_slo_watermark_seconds": "Newest delivered event time per query.",
    "repro_slo_breached": "1 while the query is inside an SLO breach episode.",
    "repro_slo_breaches_total": "Rising-edge SLO breaches per query.",
    "repro_faults_injected_total": "Injected faults by kind.",
    "repro_faults_shed_escalations_total": "Load-shed pressure escalations.",
    "repro_faults_dead_letter_total": "Items quarantined to the dead-letter sink.",
    "dsms_chunks_scanned_total": "Chunks admitted from all scanned sources.",
    "dsms_stream_clock_seconds": "Stream-time clock of the latest routed chunk.",
    "dsms_delivery_lag_seconds": "Per-delivery lag between stream clock and frame time.",
    "repro_plan_epoch_swaps_total": "Committed live plan-epoch swaps.",
}


def _help_text(name: str) -> str:
    text = _HELP.get(name, f"repro metric {name}.")
    # HELP escaping per the exposition format: backslash and newline
    # (quotes are NOT escaped in help text, unlike label values).
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_series(out: io.StringIO, name: str, snap: dict) -> None:
    labels = snap["labels"]
    if snap["type"] in ("counter", "gauge"):
        out.write(f"{name}{_format_labels(labels)} {_format_value(snap['value'])}\n")
        return
    # Histogram: cumulative buckets, then sum and count.
    running = 0
    for bound, count in zip(snap["buckets"], snap["counts"]):
        running += count
        le = _format_labels(labels, {"le": _format_value(bound)})
        out.write(f"{name}_bucket{le} {running}\n")
    le = _format_labels(labels, {"le": "+Inf"})
    out.write(f"{name}_bucket{le} {snap['count']}\n")
    out.write(f"{name}_sum{_format_labels(labels)} {_format_value(snap['sum'])}\n")
    out.write(f"{name}_count{_format_labels(labels)} {snap['count']}\n")
    # Interpolated quantiles (summary-style companion series).
    for key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
        value = snap.get(key)
        if value is not None:
            ql = _format_labels(labels, {"quantile": q})
            out.write(f"{name}{ql} {_format_value(value)}\n")


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in the Prometheus text exposition format.

    Series are grouped by metric *family* (labeled series of one metric
    registered at different times still render contiguously), and each
    family gets exactly one ``# HELP`` and one ``# TYPE`` line — the
    exposition format forbids repeating or interleaving them.
    """
    if registry is None:
        registry = get_registry()
    families: dict[str, list[dict]] = {}
    for metric in registry:
        snap = metric.snapshot()
        families.setdefault(_metric_name(snap["name"]), []).append(snap)
    out = io.StringIO()
    for name, snaps in families.items():  # first-registered family order
        out.write(f"# HELP {name} {_help_text(name)}\n")
        out.write(f"# TYPE {name} {snaps[0]['type']}\n")
        for snap in snaps:
            _render_series(out, name, snap)
    return out.getvalue()


def register_build_info(
    registry: Optional[MetricsRegistry] = None, columnar: bool | None = None
) -> None:
    """Register the ``repro_build_info`` gauge (constant 1).

    Labels identify the build: package version, Python version, and the
    columnar execution mode. Get-or-create semantics make this safe to
    call once per server construction *and* once per scrape.
    """
    import importlib
    import platform

    if registry is None:
        registry = get_registry()
    if columnar is None:
        from ..core.columnar import columnar_default

        columnar = columnar_default()
    version = getattr(importlib.import_module("repro"), "__version__", "unknown")
    registry.gauge(
        "repro_build_info",
        version=version,
        python=platform.python_version(),
        columnar="1" if columnar else "0",
    ).set(1.0)


# -- frame-trace exporters -----------------------------------------------------


def _trace_base_s(trace: FrameTrace) -> float:
    """Timeline origin: earliest queue-entry instant across the hops."""
    starts = [
        hop.first_s - hop.queue_s for hop in trace.hops if hop.first_s != float("inf")
    ]
    return min(starts) if starts else 0.0


def _hop_parent_key(trace: FrameTrace, hop: FrameHop) -> str | None:
    keys = {h.key for h in trace.hops}
    in_trace = sorted(parent for parent in hop.parents if parent in keys)
    return in_trace[0] if in_trace else None


def traces_to_chrome(traces: Sequence[FrameTrace]) -> dict:
    """Render frame traces as Chrome trace-event JSON (Perfetto-loadable).

    One *process* per frame trace, one *thread* per hop; every hop emits a
    queue-wait slice followed by a compute slice, so the waterfall shows
    where each frame's latency went. Serialize with ``json.dumps`` and
    load in ``chrome://tracing``.
    """
    events: list[dict] = []
    for pid, trace in enumerate(traces, start=1):
        title = trace.query if trace.query is not None else "frame"
        name = f"q{title} t={trace.frame_t:g}" if trace.frame_t is not None else str(title)
        if trace.pinned:
            name += " [pinned]"
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": name},
            }
        )
        base = _trace_base_s(trace)
        for tid, (depth, hop) in enumerate(hop_tree(trace), start=1):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": ("  " * depth) + hop.label},
                }
            )
            start = hop.first_s - hop.queue_s
            ts = max(0.0, (start - base) * 1e6)
            args = {
                "key": hop.key,
                "kind": hop.kind,
                "chunks": hop.chunks,
                "points_in": hop.points_in,
                "points_out": hop.points_out,
            }
            if hop.queue_s > 0.0:
                events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "cat": "queue",
                        "name": f"{hop.label} (wait)",
                        "ts": ts,
                        "dur": hop.queue_s * 1e6,
                        "args": args,
                    }
                )
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "cat": hop.kind,
                    "name": hop.label,
                    "ts": ts + hop.queue_s * 1e6,
                    "dur": hop.wall_s * 1e6,
                    "args": args,
                }
            )
        for note in trace.annotations:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": 0,
                    "s": "p",
                    "name": note,
                    "ts": 0.0,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def traces_to_otlp(traces: Sequence[FrameTrace]) -> dict:
    """Render frame traces as an OTLP-shaped ``resourceSpans`` document.

    Hop ids come from :func:`repro.obs.trace.span_id_for`, so a hop's
    span id is stable across exports of the same trace. Timestamps are
    relative nanoseconds on the trace's own timeline (the recorder stores
    monotonic-clock offsets, not wall-clock epochs).
    """

    def attr(key: str, value: object) -> dict:
        if isinstance(value, bool):
            return {"key": key, "value": {"boolValue": value}}
        if isinstance(value, int):
            return {"key": key, "value": {"intValue": str(value)}}
        if isinstance(value, float):
            return {"key": key, "value": {"doubleValue": value}}
        return {"key": key, "value": {"stringValue": str(value)}}

    scope_spans = []
    for trace in traces:
        base = _trace_base_s(trace)
        trace_hex = f"{trace.trace_id & (2**128 - 1):032x}"
        spans = []
        for _depth, hop in hop_tree(trace):
            parent_key = _hop_parent_key(trace, hop)
            start = hop.first_s - hop.queue_s
            start_ns = max(0, int((start - base) * 1e9))
            end_ns = start_ns + int((hop.queue_s + hop.wall_s) * 1e9)
            span = {
                "traceId": trace_hex,
                "spanId": span_id_for(trace.trace_id, hop.key),
                "name": hop.label,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(start_ns),
                "endTimeUnixNano": str(end_ns),
                "attributes": [
                    attr("repro.hop.key", hop.key),
                    attr("repro.hop.kind", hop.kind),
                    attr("repro.hop.chunks", hop.chunks),
                    attr("repro.hop.points_in", hop.points_in),
                    attr("repro.hop.points_out", hop.points_out),
                    attr("repro.hop.queue_s", hop.queue_s),
                    attr("repro.hop.wall_s", hop.wall_s),
                ],
            }
            if parent_key is not None:
                span["parentSpanId"] = span_id_for(trace.trace_id, parent_key)
            if hop.kind == "delivery" and trace.annotations:
                span["events"] = [
                    {"timeUnixNano": str(end_ns), "name": note}
                    for note in trace.annotations
                ]
            spans.append(span)
        resource_attrs = [
            attr("service.name", "repro.dsms"),
            attr("repro.trace.pinned", trace.pinned),
            attr("repro.trace.partial", trace.partial),
        ]
        if trace.query is not None:
            resource_attrs.append(attr("repro.query", trace.query))
        if trace.stream_id is not None:
            resource_attrs.append(attr("repro.stream", trace.stream_id))
        if trace.pin_reason:
            resource_attrs.append(attr("repro.trace.pin_reason", trace.pin_reason))
        scope_spans.append(
            {
                "resource": {"attributes": resource_attrs},
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.trace", "version": "1"},
                        "spans": spans,
                    }
                ],
            }
        )
    return {"resourceSpans": scope_spans}
