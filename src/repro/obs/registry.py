"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The observability layer is deliberately pull-free and dependency-free: a
registry is a thread-safe in-process table of named instruments that the
engine, operators, and DSMS publish into while a run executes, and that
exporters (:mod:`repro.obs.export`) serialize afterwards. Instruments are
identified by ``(name, labels)`` so e.g. per-session delivery-lag
histograms coexist under one metric name, Prometheus-style.

Publishing is *opt-in*: every instrumented hot path first checks
:func:`metrics_enabled` (a module-global flag) and performs zero registry
work when observability is off — the acceptance bar for this subsystem is
that disabled tracing costs nothing beyond that check.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping, Sequence

from ..errors import GeoStreamsError

__all__ = [
    "ObservabilityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
]


class ObservabilityError(GeoStreamsError):
    """The metrics registry or tracer was misused."""


# Wall-clock durations of per-chunk operator work (seconds): sub-ms for
# cheap restrictions up to whole-second reprojections.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Stream-time latencies (seconds): frame scans are minutes apart, so a
# composition waiting for its partner band can lag by hundreds of seconds.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity/locking for all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self._labels = labels
        self._lock = threading.Lock()

    @property
    def labels(self) -> dict[str, str]:
        return dict(self._labels)

    def snapshot(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        lbl = ", ".join(f"{k}={v}" for k, v in self._labels)
        return f"{type(self).__name__}({self.name}{'{' + lbl + '}' if lbl else ''})"


class Counter(_Instrument):
    """Monotonically increasing count (events, chunks, routed pairs)."""

    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
        }


class Gauge(_Instrument):
    """Point-in-time level (queue depth, shedder credit, stream clock)."""

    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
        }


class Histogram(_Instrument):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) semantics.

    ``buckets`` are strictly increasing upper bounds; an implicit +Inf
    bucket catches the overflow. ``observe(v)`` lands ``v`` in the first
    bucket whose bound is >= v.
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: _LabelKey, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly increasing: {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = the +Inf overflow bucket
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan: bucket lists are short (<= ~16) and the common case
        # lands early; bisect would not pay for itself here.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        return tuple(self._counts)

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending with (+inf, total)."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Interpolated streaming quantile from the bucket counts.

        Linear interpolation within the bucket holding the requested
        rank (Prometheus ``histogram_quantile`` style), clamped by the
        observed min/max so estimates never leave the seen value range;
        the +Inf overflow bucket resolves to the observed max. Returns
        None before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            lo_seen, hi_seen = self._min, self._max
        total = sum(counts)
        if total == 0:
            return None
        if q == 0.0:
            return lo_seen
        if q == 1.0:
            return hi_seen
        target = q * total
        running = 0
        for i, n in enumerate(counts):
            if n and running + n >= target:
                if i >= len(self.buckets):  # overflow bucket: only max known
                    return hi_seen
                lower = self.buckets[i - 1] if i > 0 else lo_seen
                upper = self.buckets[i]
                if lo_seen is not None:
                    lower = max(lower if lower is not None else lo_seen, lo_seen)
                if hi_seen is not None:
                    upper = min(upper, hi_seen)
                if lower is None or upper < lower:
                    return upper
                frac = (target - running) / n
                return lower + frac * (upper - lower)
            running += n
        return hi_seen  # pragma: no cover - rank always lands in a bucket

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": self.labels,
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "count": self.count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe table of instruments, resettable per run.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name and labels return the same instrument, so hot paths
    can fetch handles once and publish through them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, _LabelKey], _Instrument] = {}

    def _get_or_create(
        self, cls: type[_Instrument], name: str, labels: Mapping[str, object], **kw: object
    ) -> _Instrument:
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            for (kind, other_name, _), _m in self._metrics.items():
                if other_name == name and kind != cls.kind:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as a {kind}, "
                        f"cannot re-register as a {cls.kind}"
                    )
            metric = cls(name, _label_key(labels), **kw)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def __iter__(self) -> Iterator[_Instrument]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (fresh registry for the next run)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> list[dict]:
        """Serializable state of every instrument, in registration order."""
        return [m.snapshot() for m in self]


# -- process-local default registry and the global on/off switch ---------------

_registry = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-local registry instrumented code publishes into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-local registry (returns the previous one)."""
    global _registry
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError("set_registry expects a MetricsRegistry")
    previous = _registry
    _registry = registry
    return previous


def metrics_enabled() -> bool:
    """Cheap hot-path guard: instrumented code publishes only when True."""
    return _enabled


def enable_metrics() -> MetricsRegistry:
    global _enabled
    _enabled = True
    return _registry


def disable_metrics() -> None:
    global _enabled
    _enabled = False
