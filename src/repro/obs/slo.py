"""Per-query watermarks and delivery-lag SLO monitoring.

A query's *watermark* is the event time (stream time) of the newest frame
delivered to any of its sessions. The monitor tracks two lags per query:

* **event lag** — stream clock minus watermark: how far behind the live
  scan the query's deliveries are, in stream seconds.
* **clock lag** — recovery-clock seconds since the query last delivered.
  Under an injected ``stall`` fault the :class:`~repro.faults.recovery.
  SimClock` jumps deterministically, so breaches are reproducible in
  tests without real sleeping.

A breach fires the policy callback once per rising edge (hysteresis:
``relax_after`` consecutive healthy observations re-arm it) and, when
``escalate_shedding`` is set, leans on the DSMS's existing
``AdaptiveLoadShedder.escalate``/``relax`` pressure valve. Metrics are
published under ``repro_slo_*`` when the registry is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .registry import get_registry, metrics_enabled
from .timeline import current_journal
from .trace import current_frame_tracer

__all__ = ["SLOPolicy", "SLOBreach", "SLOMonitor"]

LAG_UNSET = float("-inf")


@dataclass(frozen=True)
class SLOBreach:
    """One rising-edge breach of a query's delivery-lag SLO."""

    query: int
    lag_s: float
    kind: str  # "event" (stream-time lag) | "clock" (wall/sim-clock lag)
    watermark: float | None
    stream_t: float | None


@dataclass
class SLOPolicy:
    """Declared delivery-lag objective for registered queries."""

    max_lag_s: float
    callback: Optional[Callable[[SLOBreach], None]] = None
    escalate_shedding: bool = True
    relax_after: int = 4  # healthy observations before the breach re-arms


@dataclass
class _QueryState:
    watermark: float = LAG_UNSET
    breached: bool = False
    healthy_streak: int = 0
    breaches: int = 0


class SLOMonitor:
    """Evaluates one :class:`SLOPolicy` across every registered query."""

    def __init__(self, policy: SLOPolicy) -> None:
        if policy.max_lag_s <= 0:
            raise ValueError("SLO max_lag_s must be positive")
        self.policy = policy
        self.breaches: list[SLOBreach] = []
        self._states: dict[int, _QueryState] = {}

    def _state(self, query: int) -> _QueryState:
        state = self._states.get(query)
        if state is None:
            state = self._states[query] = _QueryState()
        return state

    def watermark(self, query: int) -> float | None:
        state = self._states.get(query)
        if state is None or state.watermark == LAG_UNSET:
            return None
        return state.watermark

    def breach_count(self, query: int | None = None) -> int:
        if query is not None:
            state = self._states.get(query)
            return state.breaches if state else 0
        return len(self.breaches)

    def is_breached(self, query: int) -> bool:
        state = self._states.get(query)
        return bool(state and state.breached)

    def observe(
        self,
        query: int,
        *,
        watermark: float | None = None,
        stream_t: float | None = None,
        clock_lag_s: float | None = None,
    ) -> SLOBreach | None:
        """Update one query's lag picture; returns a breach on rising edge.

        ``watermark`` is the newest delivered event time, ``stream_t`` the
        current stream clock (their difference is the event lag), and
        ``clock_lag_s`` the seconds since the query last delivered on the
        recovery clock (None when no recovery clock is installed).
        """
        state = self._state(query)
        if watermark is not None:
            state.watermark = max(state.watermark, watermark)

        lags: list[tuple[str, float]] = []
        if stream_t is not None and state.watermark != LAG_UNSET:
            lags.append(("event", stream_t - state.watermark))
        if clock_lag_s is not None:
            lags.append(("clock", clock_lag_s))
        if not lags:
            return None

        kind, lag = max(lags, key=lambda kv: kv[1])
        over = lag > self.policy.max_lag_s
        self._publish(query, lag, state)

        if not over:
            if state.breached:
                state.healthy_streak += 1
                if state.healthy_streak >= self.policy.relax_after:
                    state.breached = False
                    state.healthy_streak = 0
                    self._publish(query, lag, state)
                    journal = current_journal()
                    if journal is not None:
                        journal.append(
                            "slo-recover",
                            query=query,
                            reason=f"{kind} lag {lag:.3f}s back under "
                            f"{self.policy.max_lag_s:g}s",
                            t=stream_t,
                        )
                    ftracer = current_frame_tracer()
                    if ftracer is not None:
                        ftracer.on_recover(query)
            return None
        state.healthy_streak = 0
        if state.breached:
            return None  # still inside the same breach episode
        state.breached = True
        state.breaches += 1
        breach = SLOBreach(
            query=query,
            lag_s=lag,
            kind=kind,
            watermark=self.watermark(query),
            stream_t=stream_t,
        )
        self.breaches.append(breach)
        self._publish(query, lag, state)
        if metrics_enabled():
            get_registry().counter("repro_slo_breaches_total", query=query).inc()
        edge = f"slo-breach:{kind}-lag:{lag:.3f}s>{self.policy.max_lag_s:g}s"
        journal = current_journal()
        if journal is not None:
            # The link doubles as the flight-recorder pin reason so the
            # journal entry clicks through to the pinned capture.
            journal.append("slo-breach", query=query, reason=edge, link=edge, t=stream_t)
        ftracer = current_frame_tracer()
        if ftracer is not None:
            # Auto-pin the breaching query's latest frame trace and force
            # sampling on until the monitor declares it healthy again.
            ftracer.on_breach(query, reason=edge)
        if self.policy.callback is not None:
            self.policy.callback(breach)
        return breach

    def _publish(self, query: int, lag: float, state: _QueryState) -> None:
        if not metrics_enabled():
            return
        reg = get_registry()
        if state.watermark != LAG_UNSET:
            reg.gauge("repro_slo_watermark_seconds", query=query).set(state.watermark)
        reg.gauge("repro_slo_lag_seconds", query=query).set(lag)
        reg.gauge("repro_slo_breached", query=query).set(1.0 if state.breached else 0.0)
