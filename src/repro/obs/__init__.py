"""Observability: metrics registry, pipeline span tracing, exporters.

Usage pattern (the CLI's ``--trace`` / ``--metrics-out`` flags and the
benchmark snapshot hook all go through this)::

    from repro import obs

    with obs.observe(trace=True) as ob:
        frames = plan.collect_frames()          # instrumented run
    lines = obs.snapshot_lines(reports, tracer=ob.tracer, registry=ob.registry)
    obs.write_jsonl("run.jsonl", lines)

Everything is off by default: the engine's hot paths check
:func:`metrics_enabled` / :func:`current_tracer` and do no registry or
span work when observability is disabled. See docs/observability.md.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional

from .export import (
    collect_run,
    normalize_spans,
    register_build_info,
    snapshot_lines,
    to_prometheus,
    traces_to_chrome,
    traces_to_otlp,
    write_jsonl,
)
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_registry,
)
from .slo import SLOBreach, SLOMonitor, SLOPolicy
from .timeline import (
    EventJournal,
    HealthModel,
    HealthPolicy,
    HealthReport,
    JournalEvent,
    MetricStore,
    QueryHealth,
    Rollup,
    clear_journal,
    clear_metric_store,
    current_journal,
    current_metric_store,
    install_journal,
    install_metric_store,
)
from .stats import (
    Reservoir,
    StageStats,
    StatsCollector,
    current_collector,
    disable_stats,
    enable_stats,
    format_lineage,
    lineage,
)
from .trace import (
    FlightRecorder,
    FrameHop,
    FrameTrace,
    FrameTracer,
    TraceContext,
    current_frame_tracer,
    disable_frame_tracing,
    enable_frame_tracing,
    hop_tree,
    render_waterfall,
    trace_source,
)
from .tracing import Span, Tracer, current_tracer, disable_tracing, enable_tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityError",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "Span",
    "Tracer",
    "current_tracer",
    "enable_tracing",
    "disable_tracing",
    "collect_run",
    "snapshot_lines",
    "to_prometheus",
    "write_jsonl",
    "normalize_spans",
    "traces_to_chrome",
    "traces_to_otlp",
    "TraceContext",
    "FrameHop",
    "FrameTrace",
    "FrameTracer",
    "FlightRecorder",
    "current_frame_tracer",
    "enable_frame_tracing",
    "disable_frame_tracing",
    "trace_source",
    "hop_tree",
    "render_waterfall",
    "Reservoir",
    "StageStats",
    "StatsCollector",
    "current_collector",
    "enable_stats",
    "disable_stats",
    "lineage",
    "format_lineage",
    "SLOPolicy",
    "SLOBreach",
    "SLOMonitor",
    "MetricStore",
    "Rollup",
    "EventJournal",
    "JournalEvent",
    "HealthModel",
    "HealthPolicy",
    "HealthReport",
    "QueryHealth",
    "current_metric_store",
    "install_metric_store",
    "clear_metric_store",
    "current_journal",
    "install_journal",
    "clear_journal",
    "register_build_info",
    "Observation",
    "observe",
]


@dataclass
class Observation:
    """Handles to the registry/tracer/stats active inside ``observe()``."""

    registry: MetricsRegistry
    tracer: Optional[Tracer]
    stats: Optional[StatsCollector] = None
    frame_tracer: Optional[FrameTracer] = None
    store: Optional[MetricStore] = None
    journal: Optional[EventJournal] = None


@contextlib.contextmanager
def observe(
    trace: bool = False,
    reset: bool = True,
    stats: bool = False,
    frame_trace: bool | float = False,
    store: bool | MetricStore = False,
    journal: bool | EventJournal = False,
) -> Iterator[Observation]:
    """Enable metrics (and optionally tracing/stage stats) for a block.

    Resets the process registry on entry by default so each observed run
    starts from clean counters, and restores the previous enabled/tracer/
    collector state on exit — nesting and test isolation both work. With
    ``stats=True`` a :class:`StatsCollector` is installed, so DAG stages
    accumulate :class:`StageStats` and chunks carry provenance tags. With
    ``frame_trace=True`` (or a 0..1 head-sampling rate) a
    :class:`FrameTracer` with a :class:`FlightRecorder` is installed, so
    delivered frames carry end-to-end :class:`FrameTrace` waterfalls.
    With ``store=True`` (or a preconfigured :class:`MetricStore`) the
    DSMS samples the registry into rolling time-series rings on its
    logical-clock cadence; with ``journal=True`` (or an
    :class:`EventJournal`) operational events — SLO edges, epoch swaps,
    faults, shed escalations, dead letters — land in one bounded ring.
    """
    registry = get_registry()
    was_enabled = metrics_enabled()
    previous_tracer = current_tracer()
    previous_collector = current_collector()
    previous_ftracer = current_frame_tracer()
    previous_store = current_metric_store()
    previous_journal = current_journal()
    if reset:
        registry.reset()
    enable_metrics()
    tracer = enable_tracing(Tracer(registry)) if trace else previous_tracer
    collector = enable_stats() if stats else previous_collector
    if frame_trace is not False:
        rate = 1.0 if frame_trace is True else float(frame_trace)
        ftracer = enable_frame_tracing(sample_rate=rate)
    else:
        ftracer = previous_ftracer
    if store is not False:
        metric_store = install_metric_store(store if isinstance(store, MetricStore) else None)
    else:
        metric_store = previous_store
    if journal is not False:
        event_journal = install_journal(
            journal if isinstance(journal, EventJournal) else None
        )
    else:
        event_journal = previous_journal
    try:
        yield Observation(
            registry=registry,
            tracer=tracer,
            stats=collector,
            frame_tracer=ftracer,
            store=metric_store,
            journal=event_journal,
        )
    finally:
        if not was_enabled:
            disable_metrics()
        if trace:
            if previous_tracer is None:
                disable_tracing()
            else:
                enable_tracing(previous_tracer)
        if stats:
            if previous_collector is None:
                disable_stats()
            else:
                enable_stats(previous_collector)
        if frame_trace is not False:
            if previous_ftracer is None:
                disable_frame_tracing()
            else:
                enable_frame_tracing(previous_ftracer)
        if store is not False:
            if previous_store is None:
                clear_metric_store()
            else:
                install_metric_store(previous_store)
        if journal is not False:
            if previous_journal is None:
                clear_journal()
            else:
                install_journal(previous_journal)
