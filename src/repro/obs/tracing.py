"""Span tracing for pipeline execution.

A :class:`Span` aggregates one operator's (or one scheduler stage's)
per-chunk work over a run: wall-clock processing time, chunk and point
throughput, and the stream-time interval it covered — so stream-time vs
wall-time lag falls out per operator, not just per run. Spans carry
``parent_id`` links mirroring the operator DAG: in pull pipelines a span's
parent is its *upstream* operator (data flows root-to-leaf), in compiled
push networks a stage's parent is its *consumer* (the span tree mirrors
the query tree). Each span declares which convention it used via its
``direction`` attribute (``"dataflow"`` for pull, ``"consumer"`` for
push); :func:`repro.obs.export.normalize_spans` re-parents consumer
trees into dataflow order so exporters and waterfalls render pull and
push runs identically.  Raw ``to_dicts()`` output keeps the original
links.

Tracing follows the same zero-cost rule as the registry: the engine calls
:func:`current_tracer` once per pipeline open (not per chunk) and takes
the untraced code path when it returns None.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional

from .registry import DEFAULT_BUCKETS, MetricsRegistry, get_registry, metrics_enabled

if TYPE_CHECKING:  # pragma: no cover
    from ..operators.base import BinaryOperator, Operator

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "enable_tracing",
    "disable_tracing",
]


class Span:
    """Aggregated trace of one operator (or stage) across a run."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "direction",
        "attrs",
        "started_unix",
        "wall_time_s",
        "calls",
        "chunks_in",
        "chunks_out",
        "points_in",
        "points_out",
        "first_stream_t",
        "last_stream_t",
        "finished",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        kind: str = "operator",
        parent_id: int | None = None,
        attrs: dict | None = None,
        direction: str = "dataflow",
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.direction = direction
        self.attrs = attrs or {}
        self.started_unix = time.time()
        self.wall_time_s = 0.0
        self.calls = 0
        self.chunks_in = 0
        self.chunks_out = 0
        self.points_in = 0
        self.points_out = 0
        self.first_stream_t: float | None = None
        self.last_stream_t: float | None = None
        self.finished = False

    def record(
        self,
        points_in: int,
        points_out: int,
        chunks_out: int,
        wall_s: float,
        stream_t: float | None = None,
        chunks_in: int = 1,
    ) -> None:
        """Account one processing call (one chunk in, ``chunks_out`` out)."""
        self.calls += 1
        self.chunks_in += chunks_in
        self.chunks_out += chunks_out
        self.points_in += points_in
        self.points_out += points_out
        self.wall_time_s += wall_s
        if stream_t is not None:
            if self.first_stream_t is None:
                self.first_stream_t = stream_t
            self.last_stream_t = stream_t

    def finish(self) -> None:
        self.finished = True

    @property
    def stream_time_span_s(self) -> float:
        """Stream-time interval covered (0 until two timestamps are seen)."""
        if self.first_stream_t is None or self.last_stream_t is None:
            return 0.0
        return self.last_stream_t - self.first_stream_t

    @property
    def wall_lag_s(self) -> float:
        """Wall time spent minus stream time covered.

        Negative while processing runs faster than the stream advances
        (the normal replay/simulation case); positive means the operator
        is the bottleneck relative to stream rate.
        """
        return self.wall_time_s - self.stream_time_span_s

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "direction": self.direction,
            "attrs": dict(self.attrs),
            "started_unix": self.started_unix,
            "wall_time_s": self.wall_time_s,
            "calls": self.calls,
            "chunks_in": self.chunks_in,
            "chunks_out": self.chunks_out,
            "points_in": self.points_in,
            "points_out": self.points_out,
            "first_stream_t": self.first_stream_t,
            "last_stream_t": self.last_stream_t,
            "stream_time_span_s": self.stream_time_span_s,
            "wall_lag_s": self.wall_lag_s,
            "finished": self.finished,
        }

    def __repr__(self) -> str:
        return (
            f"Span(#{self.span_id} {self.name!r} kind={self.kind} "
            f"chunks={self.chunks_in}/{self.chunks_out} "
            f"points={self.points_in}/{self.points_out} "
            f"wall={self.wall_time_s:.4f}s)"
        )


class Tracer:
    """Collects spans for one (or several) pipeline runs.

    When the metrics registry is enabled the tracer additionally publishes
    a per-operator wall-clock histogram (``pipeline_op_seconds``) so span
    data and registry exports agree.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._registry = registry

    def begin_span(
        self,
        name: str,
        kind: str = "operator",
        parent: Span | None = None,
        direction: str = "dataflow",
        **attrs: object,
    ) -> Span:
        with self._lock:
            span = Span(
                self._next_id,
                name,
                kind=kind,
                parent_id=parent.span_id if parent is not None else None,
                attrs=dict(attrs),
                direction=direction,
            )
            self._next_id += 1
            self.spans.append(span)
        return span

    def begin_operator(
        self,
        op: "Operator | BinaryOperator",
        parent: Span | None = None,
        kind: str = "operator",
        direction: str = "dataflow",
        **attrs: object,
    ) -> Span:
        return self.begin_span(
            op.name, kind=kind, parent=parent, direction=direction, op=repr(op), **attrs
        )

    def observe_operator(self, name: str, wall_s: float) -> None:
        """Publish one processing duration into the shared registry."""
        registry = self._registry
        if registry is None:
            if not metrics_enabled():
                return
            registry = get_registry()
        registry.histogram(
            "pipeline_op_seconds", buckets=DEFAULT_BUCKETS, operator=name
        ).observe(wall_s)

    # -- stream linkage (parent spans across pipe() boundaries) ---------------

    def bind_stream(self, stream: object, span: Span) -> None:
        """Remember the tail span of a piped stream for downstream parenting."""
        try:
            stream._obs_tail_span = span  # type: ignore[attr-defined]
        except AttributeError:  # exotic stream-likes with __slots__
            pass

    def span_for_stream(self, stream: object) -> Span | None:
        return getattr(stream, "_obs_tail_span", None)

    # -- inspection -----------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def reset(self) -> None:
        with self._lock:
            self.spans = []
            self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans)


_tracer: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off (the common case)."""
    return _tracer


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-local tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable_tracing() -> None:
    global _tracer
    _tracer = None
