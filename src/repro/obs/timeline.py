"""Rolling telemetry timeline: time-series store, event journal, health.

Three cooperating pieces turn the point-in-time registry into an
operable system:

* :class:`MetricStore` — a bounded in-memory time-series store. It
  samples the live :class:`~repro.obs.registry.MetricsRegistry` on a
  *logical-clock* cadence (the DSMS stream clock / the recovery layer's
  :class:`~repro.faults.recovery.SimClock`) into fixed-capacity rings,
  one per ``(metric, labels)`` series, and answers windowed rollups
  (rate, delta, min/mean/max/p99 over the last *N* samples).
* :class:`EventJournal` — one append-only ring with a stable schema that
  subsumes the scattered operational signals: SLO breach edges, epoch
  swaps, fault injections, shed escalations, dead letters, and stream
  reconnects all land here as :class:`JournalEvent`\\ s carrying query
  id, epoch, and a ``link`` string drawn from the flight recorder's
  pin-reason vocabulary, so a journal entry clicks through to the
  matching pinned :class:`~repro.obs.trace.FrameTrace`.
* :class:`HealthModel` — folds SLO breach state, shed pressure,
  dead-letter volume, epoch-swap churn, and delivery-lag trends into
  per-query and server-level ``healthy/degraded/unhealthy`` verdicts
  with explained reasons.

Installation mirrors the tracer/collector pattern: module-global
:func:`current_metric_store` / :func:`current_journal` are fetched once
per run by the DSMS, and with nothing installed the fast path pays one
``None`` check per chunk — no sampling, no allocation, no clock reads.

Determinism contract (enforced by ``repro_lint`` RL007): this module
never reads a wall clock. Every timestamp is a *logical* time passed in
by the caller — stream time from the DSMS, sim-clock time from the fault
layer — so traced and untraced chaos runs produce bit-identical
journals and test assertions never race the machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    get_registry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import FlightRecorder, FrameTrace

__all__ = [
    "MetricStore",
    "SeriesKey",
    "Rollup",
    "JournalEvent",
    "EventJournal",
    "HealthPolicy",
    "QueryHealth",
    "HealthReport",
    "HealthModel",
    "current_metric_store",
    "install_metric_store",
    "clear_metric_store",
    "current_journal",
    "install_journal",
    "clear_journal",
    "VERDICT_HEALTHY",
    "VERDICT_DEGRADED",
    "VERDICT_UNHEALTHY",
]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _quantile(values: list[float], q: float) -> float:
    """Linear-interpolated quantile of a small sample (q in [0, 1])."""
    if not values:
        raise ObservabilityError("quantile of an empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


# -- time-series store --------------------------------------------------------


@dataclass(frozen=True)
class SeriesKey:
    """Identity of one stored series: metric name + sorted labels."""

    name: str
    labels: _LabelKey

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass(frozen=True)
class Rollup:
    """Windowed aggregate over the last-N samples of one series.

    ``delta``/``rate`` read the series as a counter (last minus first
    over the window); ``vmin``/``mean``/``vmax``/``p99`` read it as a
    gauge (distribution of the sampled values).
    """

    name: str
    labels: dict[str, str]
    window: int  # samples actually aggregated
    first_t: float
    last_t: float
    delta: float
    rate: float  # delta per logical second (0 when the window has no span)
    vmin: float
    mean: float
    vmax: float
    p99: float

    @property
    def span_s(self) -> float:
        return self.last_t - self.first_t

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": self.labels,
            "window": self.window,
            "first_t": self.first_t,
            "last_t": self.last_t,
            "delta": self.delta,
            "rate": self.rate,
            "min": self.vmin,
            "mean": self.mean,
            "max": self.vmax,
            "p99": self.p99,
        }


class _Series:
    """One fixed-capacity ring of (logical_t, value) samples."""

    __slots__ = ("key", "kind", "points")

    def __init__(self, key: SeriesKey, kind: str, capacity: int) -> None:
        self.key = key
        self.kind = kind
        self.points: deque[tuple[float, float]] = deque(maxlen=capacity)


class MetricStore:
    """Bounded time-series store sampled from the metrics registry.

    ``capacity`` bounds every ring (oldest samples are evicted);
    ``cadence_s`` is the minimum *logical* seconds between samples —
    :meth:`maybe_sample` called every chunk costs one float comparison
    between ticks. A logical clock that moves backwards (a new run on a
    fresh stream) resets the store rather than corrupting monotonicity.
    """

    def __init__(self, capacity: int = 360, cadence_s: float = 30.0) -> None:
        if capacity <= 0:
            raise ObservabilityError(f"store capacity must be positive, got {capacity}")
        if cadence_s < 0:
            raise ObservabilityError(f"store cadence must be >= 0, got {cadence_s}")
        self.capacity = int(capacity)
        self.cadence_s = float(cadence_s)
        self._series: dict[tuple[str, _LabelKey], _Series] = {}
        self._last_t: float | None = None
        self.samples_taken = 0
        self.resets = 0
        self.ticks: deque[float] = deque(maxlen=capacity)

    # -- sampling -----------------------------------------------------------

    @property
    def last_t(self) -> float | None:
        return self._last_t

    def maybe_sample(
        self, now: float, registry: Optional[MetricsRegistry] = None
    ) -> bool:
        """Sample if at least one cadence interval has elapsed.

        The per-chunk fast path: between ticks this is a single float
        comparison. Returns True when a sample was taken.
        """
        if self._last_t is not None:
            if now < self._last_t:
                self.reset()  # logical clock restarted: a new run began
            elif now - self._last_t < self.cadence_s or now == self._last_t:
                return False
        self.sample(now, registry)
        return True

    def sample(self, now: float, registry: Optional[MetricsRegistry] = None) -> int:
        """Force one sampling tick at logical time ``now``.

        Returns the number of series updated. Tick timestamps stay
        strictly monotone: a repeat of the current tick time updates the
        newest sample in place (end-of-run state wins) and a regression
        resets the store first.
        """
        now = float(now)
        repeat = False
        if self._last_t is not None:
            if now < self._last_t:
                self.reset()
            elif now == self._last_t:
                repeat = True
        if registry is None:
            registry = get_registry()
        updated = 0
        for metric in registry:
            for suffix, value in self._instrument_values(metric):
                if value is None:
                    continue
                key = (metric.name + suffix, _label_key(metric.labels))
                series = self._series.get(key)
                if series is None:
                    series = self._series[key] = _Series(
                        SeriesKey(key[0], key[1]), metric.kind, self.capacity
                    )
                if repeat and series.points and series.points[-1][0] == now:
                    series.points[-1] = (now, float(value))
                else:
                    series.points.append((now, float(value)))
                updated += 1
        self._last_t = now
        if not repeat:
            self.samples_taken += 1
            self.ticks.append(now)
        return updated

    @staticmethod
    def _instrument_values(
        metric: object,
    ) -> list[tuple[str, float | None]]:
        """(series name suffix, value) pairs for one instrument.

        Counters and gauges store their value under the bare metric
        name; histograms fan out into ``:count`` / ``:sum`` / ``:p99``
        derived series so rate (events/s), mean (sum delta over count
        delta), and tail latency are all recoverable from the rings.
        """
        if isinstance(metric, (Counter, Gauge)):
            return [("", metric.value)]
        if isinstance(metric, Histogram):
            return [
                (":count", float(metric.count)),
                (":sum", metric.sum),
                (":p99", metric.quantile(0.99)),
            ]
        return []

    def reset(self) -> None:
        """Drop every ring (logical clock restarted)."""
        self._series.clear()
        self.ticks.clear()
        self._last_t = None
        self.resets += 1

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def keys(self) -> list[SeriesKey]:
        return [s.key for s in self._series.values()]

    def series(self, name: str, **labels: object) -> list[tuple[float, float]]:
        """The stored (logical_t, value) points of one series, oldest first."""
        found = self._series.get((name, _label_key(labels)))
        return list(found.points) if found is not None else []

    def matching(self, name: str) -> list[_Series]:
        return [s for s in self._series.values() if s.key.name == name]

    def rollup(
        self, name: str, window: int | None = None, **labels: object
    ) -> Rollup | None:
        """Aggregate the last ``window`` samples of one series (None = all)."""
        points = self.series(name, **labels)
        if not points:
            return None
        if window is not None:
            if window <= 0:
                raise ObservabilityError(f"rollup window must be positive, got {window}")
            points = points[-window:]
        times = [t for t, _ in points]
        values = [v for _, v in points]
        delta = values[-1] - values[0]
        span = times[-1] - times[0]
        return Rollup(
            name=name,
            labels={k: str(v) for k, v in labels.items()},
            window=len(points),
            first_t=times[0],
            last_t=times[-1],
            delta=delta,
            rate=(delta / span) if span > 0 else 0.0,
            vmin=min(values),
            mean=sum(values) / len(values),
            vmax=max(values),
            p99=_quantile(values, 0.99),
        )

    def trend_rising(self, name: str, window: int = 8, **labels: object) -> bool:
        """True when the series' last-N samples are net and locally rising.

        A cheap monotone-trend test for the health model: the newest
        value exceeds both the window's first value and the window mean.
        """
        points = self.series(name, **labels)[-window:]
        if len(points) < 3:
            return False
        values = [v for _, v in points]
        mean = sum(values) / len(values)
        return values[-1] > values[0] and values[-1] > mean

    def to_dict(self, window: int = 20) -> dict:
        """The ``/timeseries`` payload: every ring plus its windowed rollup."""
        series = []
        for s in sorted(self._series.values(), key=lambda s: (s.key.name, s.key.labels)):
            labels = s.key.label_dict()
            roll = self.rollup(s.key.name, window=window, **labels)
            series.append(
                {
                    "name": s.key.name,
                    "labels": labels,
                    "kind": s.kind,
                    "points": [[t, v] for t, v in s.points],
                    "rollup": roll.to_dict() if roll is not None else None,
                }
            )
        return {
            "capacity": self.capacity,
            "cadence_s": self.cadence_s,
            "samples_taken": self.samples_taken,
            "last_t": self._last_t,
            "series": series,
        }


# -- event journal ------------------------------------------------------------


@dataclass(frozen=True)
class JournalEvent:
    """One operational event, schema-stable across the event kinds.

    ``t`` is logical time (stream clock or sim clock — never wall
    clock), ``link`` is a deterministic cross-link into the flight
    recorder's pin-reason/annotation vocabulary (``fault:<kind>``,
    ``slo-breach:...``, ``epoch-swap:eN->eM``,
    ``recovery:quarantined:<reason>``), empty when the event has no
    trace-side counterpart. Trace ids are deliberately *not* recorded:
    they only exist when tracing is installed, and the journal must be
    bit-identical with and without a tracer.
    """

    seq: int
    t: float
    kind: str
    query: int | None
    epoch: int | None
    reason: str
    link: str

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "query": self.query,
            "epoch": self.epoch,
            "reason": self.reason,
            "link": self.link,
        }


class EventJournal:
    """Append-only bounded ring of :class:`JournalEvent`\\ s.

    One journal subsumes every operational signal; ``seq`` is a strictly
    increasing global sequence (eviction drops old events but never
    reuses numbers), so consumers can poll ``events(since_seq=...)``
    over the wire without missing or double-counting.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ObservabilityError(f"journal capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque[JournalEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.total = 0
        self.now = 0.0  # logical clock, advanced by the DSMS run loop

    def set_time(self, t: float) -> None:
        """Advance the journal's logical clock (events default to it)."""
        self.now = float(t)

    def append(
        self,
        kind: str,
        *,
        query: int | None = None,
        epoch: int | None = None,
        reason: str = "",
        link: str = "",
        t: float | None = None,
    ) -> JournalEvent:
        self._seq += 1
        self.total += 1
        event = JournalEvent(
            seq=self._seq,
            t=float(t) if t is not None else self.now,
            kind=kind,
            query=query,
            epoch=epoch,
            reason=reason,
            link=link,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(list(self._events))

    def events(
        self,
        kind: str | None = None,
        query: int | None = None,
        since_seq: int = 0,
    ) -> list[JournalEvent]:
        """Filtered view, oldest first."""
        return [
            e
            for e in self._events
            if e.seq > since_seq
            and (kind is None or e.kind == kind)
            and (query is None or e.query == query)
        ]

    def tail(self, n: int = 10) -> list[JournalEvent]:
        return list(self._events)[-n:]

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self._events]

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def captures(
        self, event: JournalEvent, recorder: "FlightRecorder"
    ) -> "list[FrameTrace]":
        """Flight-recorder captures a journal event clicks through to.

        Matches the event's ``link`` against each pinned trace's
        pin-reason and annotations (prefix match: annotations carry
        trailing detail like attempt counts), filtered to the event's
        query when both sides know one.
        """
        if not event.link:
            return []
        out = []
        for trace in recorder.pinned:
            if (
                event.query is not None
                and trace.query is not None
                and trace.query != event.query
            ):
                continue
            texts = list(trace.annotations)
            if trace.pin_reason:
                texts.append(trace.pin_reason)
            if any(text.startswith(event.link) for text in texts):
                out.append(trace)
        return out


# -- health model -------------------------------------------------------------

VERDICT_HEALTHY = "healthy"
VERDICT_DEGRADED = "degraded"
VERDICT_UNHEALTHY = "unhealthy"

_SEVERITY = {VERDICT_HEALTHY: 0, VERDICT_DEGRADED: 1, VERDICT_UNHEALTHY: 2}


def _worst(verdicts: "list[str]") -> str:
    return max(verdicts, key=lambda v: _SEVERITY[v]) if verdicts else VERDICT_HEALTHY


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds the verdicts fold over (all logical quantities)."""

    # Fraction of the SLO lag budget above which a query degrades.
    lag_warn_fraction: float = 0.5
    # Rising delivery-lag trend over this many store samples degrades.
    trend_window: int = 8
    # Dead letters: any quarantined item degrades, this many go unhealthy.
    dead_letter_unhealthy: int = 64
    # Shed pressure above this degrades the server.
    pressure_warn: float = 1.5
    # More epoch swaps than this within the journal's recent window degrades.
    swap_churn_limit: int = 2
    swap_churn_window: int = 64  # journal events considered "recent"


@dataclass(frozen=True)
class QueryHealth:
    """One query's verdict plus the evidence behind it."""

    query: int
    verdict: str
    reasons: tuple[str, ...]
    lag_s: float | None
    watermark: float | None
    epoch: int
    breaches: int

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "lag_s": self.lag_s,
            "watermark": self.watermark,
            "epoch": self.epoch,
            "breaches": self.breaches,
        }


@dataclass(frozen=True)
class HealthReport:
    """Server-level verdict derived from every query plus global signals."""

    verdict: str
    reasons: tuple[str, ...]
    queries: tuple[QueryHealth, ...]
    at: float
    dead_letters: int
    shed_pressure: float
    recent_swaps: int

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "queries": [q.to_dict() for q in self.queries],
            "at": self.at,
            "dead_letters": self.dead_letters,
            "shed_pressure": self.shed_pressure,
            "recent_swaps": self.recent_swaps,
        }


class HealthModel:
    """Folds live signals into explained health verdicts.

    The per-query and server folds (:meth:`query_verdict`,
    :meth:`server_verdict`) are pure functions of their inputs — the
    self-test exercises them directly — and :meth:`assess` gathers those
    inputs from a live :class:`~repro.server.dsms.DSMSServer`, an
    optional :class:`MetricStore` (lag trends), and an optional
    :class:`EventJournal` (epoch churn).
    """

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy if policy is not None else HealthPolicy()

    # -- pure folds ---------------------------------------------------------

    def query_verdict(
        self,
        *,
        breached: bool,
        lag_s: float | None,
        max_lag_s: float | None,
        lag_rising: bool = False,
        breaches: int = 0,
    ) -> tuple[str, tuple[str, ...]]:
        reasons: list[str] = []
        verdict = VERDICT_HEALTHY
        if breached:
            verdict = VERDICT_UNHEALTHY
            if lag_s is not None and max_lag_s is not None:
                reasons.append(
                    f"SLO breach active: delivery lag {lag_s:g}s "
                    f"(budget {max_lag_s:g}s)"
                )
            else:
                reasons.append("SLO breach active")
        else:
            if (
                lag_s is not None
                and max_lag_s is not None
                and lag_s > self.policy.lag_warn_fraction * max_lag_s
            ):
                verdict = VERDICT_DEGRADED
                reasons.append(
                    f"delivery lag {lag_s:g}s above "
                    f"{self.policy.lag_warn_fraction:.0%} of the {max_lag_s:g}s budget"
                )
            if lag_rising:
                verdict = _worst([verdict, VERDICT_DEGRADED])
                reasons.append(
                    f"delivery lag rising over the last "
                    f"{self.policy.trend_window} samples"
                )
        if breaches and verdict != VERDICT_HEALTHY:
            reasons.append(f"{breaches} SLO breach(es) this run")
        return verdict, tuple(reasons)

    def server_verdict(
        self,
        query_verdicts: "list[str]",
        *,
        dead_letters: int = 0,
        shed_pressure: float = 1.0,
        recent_swaps: int = 0,
    ) -> tuple[str, tuple[str, ...]]:
        reasons: list[str] = []
        verdict = _worst(query_verdicts)
        if dead_letters >= self.policy.dead_letter_unhealthy:
            verdict = VERDICT_UNHEALTHY
            reasons.append(
                f"{dead_letters} dead-lettered item(s) "
                f"(>= {self.policy.dead_letter_unhealthy})"
            )
        elif dead_letters > 0:
            verdict = _worst([verdict, VERDICT_DEGRADED])
            reasons.append(f"{dead_letters} dead-lettered item(s)")
        if shed_pressure > self.policy.pressure_warn:
            verdict = _worst([verdict, VERDICT_DEGRADED])
            reasons.append(f"shed pressure {shed_pressure:g} > {self.policy.pressure_warn:g}")
        if recent_swaps > self.policy.swap_churn_limit:
            verdict = _worst([verdict, VERDICT_DEGRADED])
            reasons.append(
                f"epoch churn: {recent_swaps} swaps in the last "
                f"{self.policy.swap_churn_window} events"
            )
        if not reasons and verdict != VERDICT_HEALTHY:
            reasons.append("degraded/unhealthy queries (see per-query reasons)")
        return verdict, tuple(reasons)

    # -- live assessment ----------------------------------------------------

    def assess(
        self,
        server: object,
        store: "MetricStore | None" = None,
        journal: "EventJournal | None" = None,
    ) -> HealthReport:
        """Evaluate a live DSMS server (duck-typed to avoid import cycles)."""
        if store is None:
            store = current_metric_store()
        if journal is None:
            journal = current_journal()
        monitor = getattr(server, "slo_monitor", None)
        max_lag_s = monitor.policy.max_lag_s if monitor is not None else None
        now = float(getattr(server, "_now", 0.0))

        queries: list[QueryHealth] = []
        registrations = getattr(server, "_registrations", {})
        plan_dag = getattr(server, "plan_dag", None)
        for rid in sorted(registrations):
            reg = registrations[rid]
            watermarks = [
                s.watermark for s in reg.sessions if s.watermark > float("-inf")
            ]
            watermark: float | None = max(watermarks) if watermarks else None
            if monitor is not None and monitor.watermark(rid) is not None:
                watermark = monitor.watermark(rid)
            lag_s = now - watermark if watermark is not None else None
            lag_rising = False
            if store is not None:
                lag_rising = store.trend_rising(
                    "repro_slo_lag_seconds", window=self.policy.trend_window, query=rid
                )
            verdict, reasons = self.query_verdict(
                breached=bool(monitor is not None and monitor.is_breached(rid)),
                lag_s=lag_s,
                max_lag_s=max_lag_s,
                lag_rising=lag_rising,
                breaches=monitor.breach_count(rid) if monitor is not None else 0,
            )
            queries.append(
                QueryHealth(
                    query=rid,
                    verdict=verdict,
                    reasons=reasons,
                    lag_s=lag_s,
                    watermark=watermark,
                    epoch=plan_dag.current_epoch(rid) if plan_dag is not None else 0,
                    breaches=monitor.breach_count(rid) if monitor is not None else 0,
                )
            )

        recovery = None
        recovery_getter = getattr(server, "_recovery_ctx", None)
        if callable(recovery_getter):
            recovery = recovery_getter()
        dead_letters = recovery.dead_letter.total if recovery is not None else 0
        shedder = getattr(server, "ingest_shedder", None)
        shed_pressure = float(getattr(shedder, "pressure", 1.0) or 1.0)
        if journal is not None:
            recent = journal.tail(self.policy.swap_churn_window)
            recent_swaps = sum(1 for e in recent if e.kind == "epoch-swap")
        else:
            recent_swaps = len(getattr(server, "swap_log", ()))
        verdict, reasons = self.server_verdict(
            [q.verdict for q in queries],
            dead_letters=dead_letters,
            shed_pressure=shed_pressure,
            recent_swaps=recent_swaps,
        )
        return HealthReport(
            verdict=verdict,
            reasons=reasons,
            queries=tuple(queries),
            at=now,
            dead_letters=dead_letters,
            shed_pressure=shed_pressure,
            recent_swaps=recent_swaps,
        )


# -- module-global installation (same pattern as tracer/collector) ------------

_store: MetricStore | None = None
_journal: EventJournal | None = None


def current_metric_store() -> MetricStore | None:
    """The installed metric store, or None (zero-cost fast path)."""
    return _store


def install_metric_store(store: MetricStore | None = None) -> MetricStore:
    global _store
    _store = store if store is not None else MetricStore()
    return _store


def clear_metric_store() -> None:
    global _store
    _store = None


def current_journal() -> EventJournal | None:
    """The installed event journal, or None (zero-cost fast path)."""
    return _journal


def install_journal(journal: EventJournal | None = None) -> EventJournal:
    global _journal
    _journal = journal if journal is not None else EventJournal()
    return _journal


def clear_journal() -> None:
    global _journal
    _journal = None
