"""Frame-level distributed tracing and the in-memory flight recorder.

PR 1's spans (:mod:`repro.obs.tracing`) and PR 5's ``StageStats``
(:mod:`repro.obs.stats`) aggregate a whole run; neither can answer
"where did *this* delivered frame spend its 212 ms?".  This module adds
the per-request layer:

* :class:`TraceContext` — an immutable context carried on every sampled
  chunk in a ``trace`` field right next to ``chunk.provenance``.  It
  names the chunk's trace id(s), the hop that emitted it (the causal
  parent span), and the emission timestamp (so the next hop can split
  queue wait from compute).
* :class:`FrameTracer` — the process-wide tracer.  ``admit`` assigns a
  context to each source scan chunk (head-based sampling via
  ``sample_rate``; always-on while any query is in SLO breach);
  ``record_hop`` accumulates per-hop wall time, queue wait, and point
  counts; ``finalize_frame`` stitches the hops that are *ancestors of
  the delivered frame* into an immutable :class:`FrameTrace`.
* :class:`FlightRecorder` — a bounded ring buffer of the last N frame
  traces per query plus a bounded list of **pinned** captures.  Pins
  fire automatically on SLO breaches (:mod:`repro.obs.slo`), dead-letter
  quarantines, and injected faults (:mod:`repro.faults`).

Hop keys are chosen so traces cross-reference the rest of the
observability stack: a shared-plan stage's hop key *is* its subplan
fingerprint — the same key ``StageStats`` and ``EXPLAIN ANALYZE`` use —
so a slow bar in the waterfall links directly to that stage's aggregate
exemplar.  Pull operators reuse the stats ledger key
(``plan_fingerprint`` or ``pull:<name>``), sources use
``source:<stream_id>`` and delivery uses ``delivery``.

Zero-cost discipline: the fast path in stages/pipeline checks
``current_frame_tracer()`` once per open (the same ``current_*`` rule as
``tracing.py``) and an untraced chunk (``chunk.trace is None``) never
triggers ``perf_counter`` — the perf-guard test in
``tests/test_obs_stats.py`` monkeypatches this module's ``perf_counter``
to raise.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Iterator

from .registry import get_registry, metrics_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.chunk import Chunk
    from ..core.stream import GeoStream

__all__ = [
    "TraceContext",
    "FrameHop",
    "FrameTrace",
    "FlightRecorder",
    "FrameTracer",
    "current_frame_tracer",
    "enable_frame_tracing",
    "disable_frame_tracing",
    "trace_source",
    "render_waterfall",
]

#: Cap on how many distinct trace ids a merged context may carry.
MAX_TRACE_IDS = 128

#: Cap on open (not yet delivered) trace builds before oldest unpinned evict.
MAX_OPEN_TRACES = 4096


@dataclass(frozen=True)
class TraceContext:
    """Immutable per-chunk trace context, carried beside ``provenance``.

    ``trace_id`` is the primary trace (the first source chunk that fed
    this data); ``ids`` lists every contributing trace for merged /
    buffered emissions.  ``parent_key`` is the hop that emitted the
    chunk — the causal parent span of whatever hop consumes it next —
    and ``emitted_s`` its ``perf_counter`` timestamp, so the consumer
    can attribute ``t0 - emitted_s`` to queue wait rather than compute.
    """

    trace_id: int
    ids: tuple[int, ...]
    parent_key: str
    emitted_s: float


class FrameHop:
    """Mutable per-hop aggregate inside one trace (one span when exported)."""

    __slots__ = (
        "key",
        "label",
        "kind",
        "parents",
        "chunks",
        "chunks_out",
        "points_in",
        "points_out",
        "wall_s",
        "queue_s",
        "first_s",
        "last_s",
    )

    def __init__(self, key: str, label: str, kind: str) -> None:
        self.key = key
        self.label = label
        self.kind = kind
        self.parents: set[str] = set()
        self.chunks = 0
        self.chunks_out = 0
        self.points_in = 0
        self.points_out = 0
        self.wall_s = 0.0
        self.queue_s = 0.0
        self.first_s = float("inf")
        self.last_s = 0.0

    def record(
        self,
        *,
        wall_s: float,
        queue_s: float,
        points_in: int,
        points_out: int,
        chunks: int,
        chunks_out: int,
        t0: float,
        t1: float,
    ) -> None:
        self.chunks += chunks
        self.chunks_out += chunks_out
        self.points_in += points_in
        self.points_out += points_out
        self.wall_s += wall_s
        self.queue_s += queue_s
        if t0 < self.first_s:
            self.first_s = t0
        if t1 > self.last_s:
            self.last_s = t1

    def copy(self) -> "FrameHop":
        dup = FrameHop(self.key, self.label, self.kind)
        dup.merge(self)
        return dup

    def merge(self, other: "FrameHop") -> None:
        self.parents |= other.parents
        self.chunks += other.chunks
        self.chunks_out += other.chunks_out
        self.points_in += other.points_in
        self.points_out += other.points_out
        self.wall_s += other.wall_s
        self.queue_s += other.queue_s
        self.first_s = min(self.first_s, other.first_s)
        self.last_s = max(self.last_s, other.last_s)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "parents": sorted(self.parents),
            "chunks": self.chunks,
            "chunks_out": self.chunks_out,
            "points_in": self.points_in,
            "points_out": self.points_out,
            "wall_s": self.wall_s,
            "queue_s": self.queue_s,
            "start_s": None if self.first_s == float("inf") else self.first_s,
            "end_s": self.last_s or None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameHop({self.key!r}, kind={self.kind!r}, chunks={self.chunks}, "
            f"wall={self.wall_s * 1e3:.3f}ms queue={self.queue_s * 1e3:.3f}ms)"
        )


class _TraceBuild:
    """An open (still flowing) trace: hops keyed by hop key, plus notes."""

    __slots__ = ("trace_id", "stream_id", "started_s", "hops", "annotations", "pin_reason", "captured")

    def __init__(self, trace_id: int, stream_id: str, started_s: float) -> None:
        self.trace_id = trace_id
        self.stream_id = stream_id
        self.started_s = started_s
        self.hops: dict[str, FrameHop] = {}
        self.annotations: list[str] = []
        self.pin_reason: str | None = None
        self.captured = False

    def hop(self, key: str, label: str, kind: str) -> FrameHop:
        entry = self.hops.get(key)
        if entry is None:
            entry = self.hops[key] = FrameHop(key, label, kind)
        return entry


class FrameTrace:
    """A finalized, immutable end-to-end account of one delivered frame."""

    __slots__ = (
        "trace_id",
        "trace_ids",
        "query",
        "stream_id",
        "frame_t",
        "band",
        "shape",
        "hops",
        "annotations",
        "pinned",
        "pin_reason",
        "partial",
    )

    def __init__(
        self,
        *,
        trace_id: int,
        trace_ids: tuple[int, ...],
        query: object,
        stream_id: str,
        frame_t: float | None,
        band: str | None,
        shape: tuple[int, int] | None,
        hops: list[FrameHop],
        annotations: tuple[str, ...],
        pinned: bool,
        pin_reason: str | None,
        partial: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.trace_ids = trace_ids
        self.query = query
        self.stream_id = stream_id
        self.frame_t = frame_t
        self.band = band
        self.shape = shape
        self.hops = hops
        self.annotations = annotations
        self.pinned = pinned
        self.pin_reason = pin_reason
        self.partial = partial

    # -- derived views -------------------------------------------------
    def hop_by_key(self, key: str) -> FrameHop | None:
        for hop in self.hops:
            if hop.key == key:
                return hop
        return None

    def stage_fingerprints(self) -> set[str]:
        """The shared-plan stage span set — comparable to
        ``PlanDAG.stage_fingerprints(query)`` / ``explain_dag()``."""
        return {h.key for h in self.hops if h.kind == "stage"}

    @property
    def total_wall_s(self) -> float:
        return sum(h.wall_s for h in self.hops)

    @property
    def total_queue_s(self) -> float:
        return sum(h.queue_s for h in self.hops)

    @property
    def elapsed_s(self) -> float:
        starts = [h.first_s for h in self.hops if h.first_s != float("inf")]
        ends = [h.last_s for h in self.hops if h.last_s]
        if not starts or not ends:
            return 0.0
        return max(0.0, max(ends) - min(starts))

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "trace_ids": list(self.trace_ids),
            "query": self.query,
            "stream_id": self.stream_id,
            "frame_t": self.frame_t,
            "band": self.band,
            "shape": list(self.shape) if self.shape else None,
            "hops": [h.to_dict() for h in self.hops],
            "annotations": list(self.annotations),
            "pinned": self.pinned,
            "pin_reason": self.pin_reason,
            "partial": self.partial,
            "total_wall_s": self.total_wall_s,
            "total_queue_s": self.total_queue_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " pinned" if self.pinned else ""
        return (
            f"FrameTrace(id={self.trace_id}, query={self.query!r}, "
            f"t={self.frame_t}, hops={len(self.hops)}{tag})"
        )


class FlightRecorder:
    """Bounded ring of recent frame traces per query + pinned captures.

    ``capacity`` bounds each per-query ring; ``pinned_capacity`` bounds
    the pinned list.  ``evictions`` counts traces pushed out of either —
    the recorder never grows past
    ``len(queries) * capacity + pinned_capacity`` entries.
    """

    def __init__(self, capacity: int = 16, pinned_capacity: int = 32) -> None:
        if capacity < 1 or pinned_capacity < 1:
            raise ValueError("FlightRecorder capacities must be >= 1")
        self.capacity = capacity
        self.pinned_capacity = pinned_capacity
        self._rings: dict[object, deque[FrameTrace]] = {}
        self.pinned: list[FrameTrace] = []
        self.recorded = 0
        self.evictions = 0
        self.pins = 0

    def record(self, trace: FrameTrace) -> None:
        ring = self._rings.get(trace.query)
        if ring is None:
            ring = self._rings[trace.query] = deque(maxlen=self.capacity)
        if len(ring) == self.capacity:
            self.evictions += 1
            if metrics_enabled():
                get_registry().counter("repro_trace_recorder_evictions_total").inc()
        ring.append(trace)
        self.recorded += 1

    def pin(self, trace: FrameTrace, reason: str | None = None) -> None:
        if reason is not None and trace.pin_reason is None:
            trace.pin_reason = reason
        trace.pinned = True
        if trace in self.pinned:
            return
        if len(self.pinned) >= self.pinned_capacity:
            self.pinned.pop(0)
            self.evictions += 1
            if metrics_enabled():
                get_registry().counter("repro_trace_recorder_evictions_total").inc()
        self.pinned.append(trace)
        self.pins += 1
        if metrics_enabled():
            get_registry().counter("repro_trace_pinned_total").inc()

    def pin_latest(self, query: object, reason: str) -> FrameTrace | None:
        """Pin the most recent trace recorded for ``query`` (SLO hook)."""
        ring = self._rings.get(query)
        if not ring:
            return None
        trace = ring[-1]
        self.pin(trace, reason)
        return trace

    def recent(self, query: object) -> list[FrameTrace]:
        """Newest-last list of retained traces for ``query``."""
        return list(self._rings.get(query, ()))

    def queries(self) -> list[object]:
        return list(self._rings)

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values()) + len(self.pinned)

    def within_bounds(self) -> bool:
        rings_ok = all(len(ring) <= self.capacity for ring in self._rings.values())
        return rings_ok and len(self.pinned) <= self.pinned_capacity


class FrameTracer:
    """Process-wide per-frame tracer (install via :func:`enable_frame_tracing`).

    Head-based sampling: the decision is taken once per source chunk at
    ``admit`` time (``sample_rate`` of chunks get a context; the rest
    flow untouched and cost nothing downstream).  While any query is in
    SLO breach, sampling is forced on so the breaching frames are always
    captured.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 1.0,
        recorder: FlightRecorder | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self._rng = random.Random(seed)
        self._next_id = 1
        self._builds: "OrderedDict[int, _TraceBuild]" = OrderedDict()
        self._stream_notes: dict[str, list[str]] = {}
        self._breached: set[object] = set()
        self._breach_reasons: dict[object, str] = {}
        # Plan-epoch cutovers auto-pin the transition window: remaining
        # frames to pin and the annotation, per query (see on_epoch_swap).
        self._swap_window: dict[object, tuple[int, str]] = {}
        # Counters surfaced as repro_trace_* metrics and by `repro trace`.
        self.chunks_traced = 0
        self.chunks_sampled_out = 0
        self.frames_traced = 0
        self.build_evictions = 0

    # -- sampling / admission -----------------------------------------
    def _sampled(self) -> bool:
        if self._breached or self._swap_window:
            return True
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def admit(self, stream_id: str, chunk: "Chunk") -> "Chunk":
        """Assign a trace context to a source scan chunk (or keep one
        assigned upstream, e.g. by a hardened catalog's traced source)."""
        from dataclasses import replace as dc_replace

        ctx = chunk.trace
        if ctx is not None:
            self._attach_notes(stream_id, self._builds.get(ctx.trace_id))
            return chunk
        if not self._sampled():
            self.chunks_sampled_out += 1
            return chunk
        now = perf_counter()
        tid = self._next_id
        self._next_id += 1
        key = f"source:{stream_id}"
        build = _TraceBuild(tid, stream_id, now)
        hop = build.hop(key, f"scan {stream_id}", "source")
        n = chunk.n_points
        hop.record(
            wall_s=0.0, queue_s=0.0, points_in=n, points_out=n,
            chunks=1, chunks_out=1, t0=now, t1=now,
        )
        self._builds[tid] = build
        self._attach_notes(stream_id, build)
        if len(self._builds) > MAX_OPEN_TRACES:
            self._evict_build()
        self.chunks_traced += 1
        if metrics_enabled():
            get_registry().counter("repro_trace_chunks_total").inc()
        return dc_replace(chunk, trace=TraceContext(tid, (tid,), key, now))

    def _attach_notes(self, stream_id: str, build: _TraceBuild | None) -> None:
        notes = self._stream_notes.pop(stream_id, None)
        if not notes or build is None:
            return
        for note in notes:
            self._annotate_build(build, note, pin=True)

    def _evict_build(self) -> None:
        for tid, build in self._builds.items():
            if build.pin_reason is None:
                del self._builds[tid]
                self.build_evictions += 1
                return
        # Everything pinned: drop the oldest anyway to stay bounded.
        self._builds.popitem(last=False)
        self.build_evictions += 1

    # -- hop recording -------------------------------------------------
    def record_hop(
        self,
        ctx: TraceContext,
        *,
        key: str,
        label: str,
        kind: str,
        t0: float,
        t1: float,
        points_in: int,
        points_out: int,
        chunks_out: int,
    ) -> None:
        """Account one processing call of ``ctx``'s chunk at hop ``key``."""
        build = self._builds.get(ctx.trace_id)
        if build is None:
            return
        hop = build.hop(key, label, kind)
        hop.parents.add(ctx.parent_key)
        hop.record(
            wall_s=t1 - t0,
            queue_s=max(0.0, t0 - ctx.emitted_s),
            points_in=points_in,
            points_out=points_out,
            chunks=1,
            chunks_out=chunks_out,
            t0=t0,
            t1=t1,
        )

    def output_ctx(self, ctxs: list[TraceContext], key: str) -> TraceContext | None:
        """Context for chunks emitted by hop ``key`` after consuming ``ctxs``."""
        if not ctxs:
            return None
        ids: list[int] = []
        for ctx in ctxs:
            for tid in ctx.ids:
                if tid not in ids:
                    ids.append(tid)
                    if len(ids) >= MAX_TRACE_IDS:
                        break
            if len(ids) >= MAX_TRACE_IDS:
                break
        return TraceContext(ctxs[0].trace_id, tuple(ids), key, perf_counter())

    # -- annotations ---------------------------------------------------
    def annotate(self, ctx: TraceContext, note: str, pin: bool = False) -> None:
        """Attach a shed/fault/recovery note to the chunk's trace."""
        build = self._builds.get(ctx.trace_id)
        if build is None:
            return
        self._annotate_build(build, note, pin)

    def _annotate_build(self, build: _TraceBuild, note: str, pin: bool) -> None:
        if note not in build.annotations:
            build.annotations.append(note)
        if pin or note.startswith(("fault:", "recovery:")):
            if build.pin_reason is None:
                build.pin_reason = note
            # A pin arriving after the build was merged into a delivered
            # frame (buffering operators over-merge pending contexts) must
            # still surface: let flush_pinned re-capture it as partial.
            build.captured = False

    def note_stream_event(self, stream_id: str, note: str) -> None:
        """Queue a stream-level event (e.g. a reconnect) for the next
        chunk admitted on ``stream_id``."""
        self._stream_notes.setdefault(stream_id, []).append(note)

    # -- SLO integration ----------------------------------------------
    def on_breach(self, query: object, reason: str = "slo-breach") -> None:
        """SLO rising edge: force sampling on and pin the breaching
        query's most recent trace."""
        self._breached.add(query)
        self._breach_reasons[query] = reason
        self.recorder.pin_latest(query, reason)

    def on_recover(self, query: object) -> None:
        self._breached.discard(query)

    # -- plan-epoch integration ---------------------------------------
    def on_epoch_swap(
        self, query: object, old_epoch: int, new_epoch: int, window: int = 2
    ) -> None:
        """Plan-epoch cutover: pin the transition window in the recorder.

        The last frame delivered by the old epoch is pinned immediately,
        and the next ``window`` frames the new epoch delivers are
        force-sampled and pinned too — the flight recorder keeps both
        sides of every hot swap without anyone asking.
        """
        reason = f"epoch-swap:e{old_epoch}->e{new_epoch}"
        self.recorder.pin_latest(query, reason)
        self._swap_window[query] = (max(1, window), reason)

    def is_breached(self, query: object) -> bool:
        return query in self._breached

    # -- finalize ------------------------------------------------------
    def finalize_frame(
        self,
        query: object,
        ctxs: list[TraceContext],
        *,
        frame_t: float | None = None,
        band: str | None = None,
        shape: tuple[int, int] | None = None,
        t0: float | None = None,
        t1: float | None = None,
    ) -> FrameTrace | None:
        """Stitch the contexts that assembled one delivered frame into a
        :class:`FrameTrace`, record it, and auto-pin if annotated."""
        builds: list[_TraceBuild] = []
        seen: set[int] = set()
        for ctx in ctxs:
            for tid in ctx.ids:
                if tid in seen:
                    continue
                seen.add(tid)
                build = self._builds.get(tid)
                if build is not None:
                    builds.append(build)
        if not builds:
            return None
        merged: "OrderedDict[str, FrameHop]" = OrderedDict()
        for build in builds:
            for key, hop in build.hops.items():
                entry = merged.get(key)
                if entry is None:
                    merged[key] = hop.copy()
                else:
                    entry.merge(hop)
        terminal = {ctx.parent_key for ctx in ctxs}
        roots: set[str] = set(terminal)
        if t0 is not None and t1 is not None:
            ship = FrameHop("delivery", "deliver frame", "delivery")
            ship.parents |= terminal
            # Frame-assembly wait: time from the first contributing chunk
            # leaving its producer to the encode starting (not a per-chunk
            # sum, which would dwarf the compute split for wide frames).
            ship.record(
                wall_s=t1 - t0,
                queue_s=max(0.0, t0 - min(ctx.emitted_s for ctx in ctxs)),
                points_in=sum(h.points_out for k, h in merged.items() if k in terminal),
                points_out=0,
                chunks=len(ctxs),
                chunks_out=1,
                t0=t0,
                t1=t1,
            )
            merged["delivery"] = ship
            roots = {"delivery"}
        # Keep only hops on the causal path to this frame: the shared
        # build also accumulated hops from sibling queries' stages.
        keep: set[str] = set()
        frontier = list(roots)
        while frontier:
            key = frontier.pop()
            if key in keep:
                continue
            hop = merged.get(key)
            if hop is None:
                continue
            keep.add(key)
            frontier.extend(hop.parents)
        hops = [hop for key, hop in merged.items() if key in keep]
        annotations: list[str] = []
        pin_reason: str | None = None
        for build in builds:
            for note in build.annotations:
                if note not in annotations:
                    annotations.append(note)
            if pin_reason is None and build.pin_reason is not None:
                pin_reason = build.pin_reason
            build.captured = True
        trace = FrameTrace(
            trace_id=builds[0].trace_id,
            trace_ids=tuple(sorted(seen)),
            query=query,
            stream_id=builds[0].stream_id,
            frame_t=frame_t,
            band=band,
            shape=shape,
            hops=hops,
            annotations=tuple(annotations),
            pinned=pin_reason is not None,
            pin_reason=pin_reason,
        )
        self.frames_traced += 1
        if metrics_enabled():
            get_registry().counter("repro_trace_frames_total").inc()
        self.recorder.record(trace)
        if trace.pinned:
            self.recorder.pin(trace, pin_reason)
        if self.is_breached(query):
            # A frame delivered while its query is past the SLO always
            # carries the breach, even when a fault already pinned it.
            breach = self._breach_reasons.get(query, "slo-breach")
            if breach not in trace.annotations:
                trace.annotations = tuple(trace.annotations) + (breach,)
            self.recorder.pin(trace, breach)
        window = self._swap_window.get(query)
        if window is not None:
            remaining, reason = window
            if reason not in trace.annotations:
                trace.annotations = tuple(trace.annotations) + (reason,)
            self.recorder.pin(trace, reason)
            if remaining <= 1:
                del self._swap_window[query]
            else:
                self._swap_window[query] = (remaining - 1, reason)
        return trace

    def flush_pinned(self) -> int:
        """Capture pinned builds that never reached delivery (dropped /
        quarantined frames) as *partial* traces.  Returns how many."""
        flushed = 0
        for build in list(self._builds.values()):
            if build.pin_reason is None or build.captured:
                continue
            trace = FrameTrace(
                trace_id=build.trace_id,
                trace_ids=(build.trace_id,),
                query=None,
                stream_id=build.stream_id,
                frame_t=None,
                band=None,
                shape=None,
                hops=[hop.copy() for hop in build.hops.values()],
                annotations=tuple(build.annotations),
                pinned=True,
                pin_reason=build.pin_reason,
                partial=True,
            )
            self.recorder.pin(trace, build.pin_reason)
            build.captured = True
            flushed += 1
        return flushed

    def reset(self) -> None:
        self._builds.clear()
        self._stream_notes.clear()
        self._breached.clear()
        self._swap_window.clear()


# -- module-global install (same pattern as tracing.py) ----------------
_frame_tracer: FrameTracer | None = None


def current_frame_tracer() -> FrameTracer | None:
    """The installed frame tracer, or None.  Hot paths read this once
    per open and skip all trace work when it returns None."""
    return _frame_tracer


def enable_frame_tracing(
    tracer: FrameTracer | None = None,
    *,
    sample_rate: float = 1.0,
    capacity: int = 16,
    pinned_capacity: int = 32,
    seed: int = 0,
) -> FrameTracer:
    global _frame_tracer
    if tracer is None:
        tracer = FrameTracer(
            sample_rate=sample_rate,
            recorder=FlightRecorder(capacity, pinned_capacity),
            seed=seed,
        )
    _frame_tracer = tracer
    return tracer


def disable_frame_tracing() -> None:
    global _frame_tracer
    _frame_tracer = None


def trace_source(stream: "GeoStream") -> "GeoStream":
    """Wrap a raw source so chunks get trace contexts *before* any fault
    injection or hardening — quarantined chunks then carry a traceable
    context.  Install-order independent: the tracer is looked up at each
    open, and with no tracer installed the stream passes through."""
    from ..core.stream import GeoStream

    def source() -> Iterator:
        it = stream.chunks()
        tracer = current_frame_tracer()
        if tracer is None:
            return it
        return _admitted(tracer, stream.stream_id, it)

    return GeoStream(stream.metadata, source)


def _admitted(tracer: FrameTracer, stream_id: str, it: Iterable) -> Iterator:
    for chunk in it:
        yield tracer.admit(stream_id, chunk)


# -- ASCII waterfall ----------------------------------------------------
def hop_tree(trace: FrameTrace) -> list[tuple[int, FrameHop]]:
    """Hops in dataflow order with tree depth (sources first)."""
    hops = {hop.key: hop for hop in trace.hops}
    children: dict[str, list[str]] = {key: [] for key in hops}
    roots: list[str] = []
    for hop in trace.hops:
        parents_in = [p for p in sorted(hop.parents) if p in hops and p != hop.key]
        if parents_in:
            children[parents_in[0]].append(hop.key)
        else:
            roots.append(hop.key)
    out: list[tuple[int, FrameHop]] = []
    seen: set[str] = set()

    def visit(key: str, depth: int) -> None:
        if key in seen:
            return
        seen.add(key)
        out.append((depth, hops[key]))
        for child in children[key]:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    for hop in trace.hops:  # cycles / orphans, just in case
        visit(hop.key, 0)
    return out


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}ms"


def render_waterfall(trace: FrameTrace, width: int = 48) -> str:
    """Render one frame trace as an ASCII waterfall.

    Each hop gets a bar positioned on the frame's wall-clock timeline;
    ``.`` cells are queue wait, ``#`` cells compute.  Stage hops print
    their subplan fingerprint (``#<fp>``) — the exemplar key into
    ``StageStats`` / ``EXPLAIN ANALYZE``.
    """
    ordered = hop_tree(trace)
    lines: list[str] = []
    head = f"trace {trace.trace_id:#x}"
    if len(trace.trace_ids) > 1:
        head += f" (+{len(trace.trace_ids) - 1} merged)"
    if trace.query is not None:
        head += f" · query {trace.query}"
    if trace.partial:
        head += " · PARTIAL (never delivered)"
    lines.append(head)
    meta = []
    if trace.frame_t is not None:
        meta.append(f"frame t={trace.frame_t:g}")
    if trace.band:
        meta.append(f"band={trace.band}")
    if trace.shape:
        meta.append(f"shape={trace.shape[0]}x{trace.shape[1]}")
    meta.append(f"stream={trace.stream_id}")
    total = trace.total_wall_s + trace.total_queue_s
    if total > 0:
        meta.append(
            f"compute {trace.total_wall_s * 1e3:.3f}ms / "
            f"queue {trace.total_queue_s * 1e3:.3f}ms "
            f"({100.0 * trace.total_queue_s / total:.0f}% waiting)"
        )
    lines.append("  " + " · ".join(meta))
    if trace.pinned:
        lines.append(f"  PINNED: {trace.pin_reason}")
    for note in trace.annotations:
        lines.append(f"  ! {note}")

    starts = [h.first_s - h.queue_s for _, h in ordered if h.first_s != float("inf")]
    ends = [h.last_s for _, h in ordered if h.last_s]
    t_min = min(starts) if starts else 0.0
    span = max((max(ends) - t_min) if ends else 0.0, 1e-9)

    label_w = max(
        (len("  " * d + _hop_title(h)) for d, h in ordered), default=0
    )
    label_w = min(max(label_w, 12), 56)
    for depth, hop in ordered:
        title = ("  " * depth + _hop_title(hop))[:label_w]
        if hop.first_s == float("inf"):
            bar = ""
            offset = 0
        else:
            begin = hop.first_s - hop.queue_s
            offset = int((begin - t_min) / span * width)
            cells = max(1, int((hop.last_s - begin) / span * width))
            busy = hop.queue_s + hop.wall_s
            q_cells = int(round(cells * (hop.queue_s / busy))) if busy > 0 else 0
            bar = "." * q_cells + "#" * (cells - q_cells)
        timing = (
            f"{_fmt_ms(hop.wall_s)} cpu {_fmt_ms(hop.queue_s)} wait"
            f"  {hop.chunks:>3}ch {hop.points_in:>7}->{hop.points_out:<7}pts"
        )
        lines.append(f"  {title:<{label_w}} |{' ' * offset}{bar:<{width - offset}}| {timing}")
    lines.append(
        f"  {'':<{label_w}} |{'-' * width}| total {span * 1e3:.3f}ms wall-clock"
    )
    return "\n".join(lines)


def _hop_title(hop: FrameHop) -> str:
    if hop.kind == "stage":
        return f"{hop.label or hop.key} #{hop.key[:10]}"
    return hop.label or hop.key


def span_id_for(trace_id: int, key: str) -> str:
    """Deterministic 8-byte hex span id for exporters."""
    return f"{(trace_id << 32 | zlib.crc32(key.encode())) & 0xFFFFFFFFFFFFFFFF:016x}"
