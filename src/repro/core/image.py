"""Images (Def. 4): same-timestamp subsets of a stream, materialized.

A :class:`RasterImage` is a complete frame assembled from stream chunks —
the object the paper calls "a raster image consisting of a rectangular
grid of pixels". :func:`assemble_frames` turns a chunk iterator back into
images, which is what the delivery operator and all examples use to
render results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import StreamError
from .chunk import Chunk, GridChunk, PointChunk
from .lattice import GridLattice

__all__ = ["RasterImage", "assemble_frames"]


@dataclass(frozen=True)
class RasterImage:
    """A materialized raster frame: values plus georeferencing."""

    values: np.ndarray
    lattice: GridLattice
    band: str
    t: float
    sector: int | None = None

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        object.__setattr__(self, "values", values)
        if values.shape[:2] != self.lattice.shape:
            raise StreamError(
                f"image values shape {values.shape[:2]} does not match lattice "
                f"shape {self.lattice.shape}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.lattice.shape

    @property
    def n_points(self) -> int:
        return self.lattice.n_points

    def value_at(self, x: float, y: float) -> float | np.ndarray:
        """Nearest-pixel value at native coordinates (x, y)."""
        row = int(self.lattice.row_of_y(y))
        col = int(self.lattice.col_of_x(x))
        if not (0 <= row < self.lattice.height and 0 <= col < self.lattice.width):
            raise StreamError(f"({x}, {y}) lies outside the image extent")
        return self.values[row, col]

    def to_chunk(self, last_in_frame: bool = True) -> GridChunk:
        """Repackage this image as a single whole-frame chunk."""
        return GridChunk(
            values=self.values,
            lattice=self.lattice,
            band=self.band,
            t=self.t,
            sector=self.sector,
            last_in_frame=last_in_frame,
        )

    def to_png_bytes(self) -> bytes:
        """Encode as PNG (grayscale 8/16-bit or RGB8) via repro.raster.png."""
        from ..raster.png import encode_image

        return encode_image(self.values)


def _fill_value(dtype: np.dtype) -> float:
    return np.nan if np.issubdtype(dtype, np.floating) else 0


def assemble_frames(chunks: Iterable[Chunk]) -> Iterator[RasterImage]:
    """Reassemble a chunk sequence into complete frames.

    Chunks carrying :class:`~repro.core.metadata.FrameInfo` are pasted into
    a canvas of the frame's full lattice; a frame is emitted when its
    ``last_in_frame`` chunk arrives or a chunk of a different frame id
    shows up (out-of-order frames are not supported — streams are ordered
    by time, as in the paper's model). Frameless grid chunks pass through
    as single-chunk images. Point chunks cannot be assembled into rasters
    and raise :class:`~repro.errors.StreamError`.
    """
    canvas: np.ndarray | None = None
    canvas_frame_id: int | None = None
    canvas_lattice: GridLattice | None = None
    meta: tuple[str, float, int | None] | None = None

    def finish() -> RasterImage:
        assert canvas is not None and canvas_lattice is not None and meta is not None
        band, t, sector = meta
        return RasterImage(canvas, canvas_lattice, band, t, sector)

    for chunk in chunks:
        if isinstance(chunk, PointChunk):
            raise StreamError("point chunks cannot be assembled into raster frames")
        if chunk.frame is None:
            if canvas is not None:
                yield finish()
                canvas = canvas_frame_id = canvas_lattice = meta = None
            yield RasterImage(chunk.values, chunk.lattice, chunk.band, chunk.t, chunk.sector)
            continue

        frame = chunk.frame
        if canvas is not None and frame.frame_id != canvas_frame_id:
            yield finish()
            canvas = None
        if canvas is None:
            shape = frame.lattice.shape
            if chunk.values.ndim == 3:
                shape = shape + (chunk.values.shape[2],)
            canvas = np.full(shape, _fill_value(chunk.values.dtype), dtype=chunk.values.dtype)
            canvas_frame_id = frame.frame_id
            canvas_lattice = frame.lattice
            meta = (chunk.band, chunk.t, chunk.sector)
        h, w = chunk.lattice.shape
        if (
            chunk.row0 < 0
            or chunk.col0 < 0
            or chunk.row0 + h > canvas.shape[0]
            or chunk.col0 + w > canvas.shape[1]
        ):
            raise StreamError(
                f"chunk window ({chunk.row0},{chunk.col0})+({h}x{w}) exceeds its "
                f"frame lattice {canvas.shape[:2]}"
            )
        canvas[chunk.row0 : chunk.row0 + h, chunk.col0 : chunk.col0 + w] = chunk.values
        # Keep the frame's timestamp at the latest chunk's measured time.
        meta = (chunk.band, chunk.t, chunk.sector)
        if chunk.last_in_frame:
            yield finish()
            canvas = canvas_frame_id = canvas_lattice = meta = None

    if canvas is not None:
        yield finish()
