"""Columnar execution buffers (the vectorized kernels' storage layer).

The per-point oracle implementations in :mod:`repro.operators` derive one
small Python object per row (``subwindow`` → ``dataclasses.replace`` →
``__post_init__`` validation) and run one small numpy call per chunk.
Columnar mode replaces that churn with *contiguous column buffers* —
coordinates, values, and validity masks each live in one flat allocation
— so whole frames and row bands are transformed by single batch
operations.

Two storage backends sit behind the same :class:`ColumnBuffer` API:

* the default backend stores columns in :class:`array.array` objects and
  exposes them to kernels as zero-copy ``memoryview``/``numpy`` views;
* setting ``REPRO_NUMPY=1`` switches allocation to native numpy arrays
  (one fewer indirection on platforms where that matters).

Either way, every kernel *computes* through numpy views over the same
bytes, which is what makes the oracle-equivalence contract exact: the
columnar kernels perform the same elementwise float operations, in the
same dtype and the same element order, as the per-point implementations
they replace — delivered chunks are bit-identical, not approximately
equal (see ``docs/columnar.md`` and ``tests/test_columnar_differential``).

Execution-mode selection lives here too: ``resolve_columnar`` combines an
explicit ``columnar=`` argument (pipelines, plan lowering, ``PlanDAG``,
``DSMSServer``) with the ``REPRO_COLUMNAR`` environment default used by
the CI matrix leg that runs the whole suite in columnar mode.

This module is timing-free and mypy-strict; it never imports operators.
"""

from __future__ import annotations

import os
from array import array

import numpy as np

from .lattice import GridLattice

__all__ = [
    "numpy_backend",
    "columnar_default",
    "resolve_columnar",
    "ColumnBuffer",
    "MaskBuffer",
    "FrameAccumulator",
    "BandAccumulator",
    "RollingCanvas",
    "coordinate_columns",
]

# Environment flags. Read per call (not cached at import) so test suites
# can flip modes with monkeypatch.setenv without reload gymnastics.
_NUMPY_ENV = "REPRO_NUMPY"
_COLUMNAR_ENV = "REPRO_COLUMNAR"

_FALSY = ("", "0", "false", "no", "off")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSY


def numpy_backend() -> bool:
    """True when ``REPRO_NUMPY=1`` selects native ndarray column storage."""
    return _env_flag(_NUMPY_ENV)


def columnar_default() -> bool:
    """Process-wide default execution mode (``REPRO_COLUMNAR=1``)."""
    return _env_flag(_COLUMNAR_ENV)


def resolve_columnar(explicit: bool | None = None) -> bool:
    """Resolve an execution-mode request: explicit flag wins, else env."""
    if explicit is not None:
        return bool(explicit)
    return columnar_default()


# numpy dtype -> array.array typecode for the stdlib storage backend.
# Anything outside this table (e.g. float16) falls back to ndarray storage.
_TYPECODES: dict[str, str] = {
    "f4": "f",
    "f8": "d",
    "i1": "b",
    "u1": "B",
    "i2": "h",
    "u2": "H",
    "i4": "i",
    "u4": "I",
    "i8": "q",
    "u8": "Q",
}


class ColumnBuffer:
    """One contiguous, fixed-capacity column of scalar values.

    The storage is an :class:`array.array` (exposed zero-copy through a
    ``memoryview``) or, with ``REPRO_NUMPY=1``, a native numpy array.
    Kernels always read and write through :meth:`view`, a flat ndarray
    aliasing the buffer's bytes, so arithmetic is identical across
    backends.
    """

    __slots__ = ("dtype", "capacity", "_store", "_view")

    def __init__(self, dtype: np.dtype | type, capacity: int) -> None:
        self.dtype = np.dtype(dtype)
        self.capacity = int(capacity)
        code = _TYPECODES.get(self.dtype.str.lstrip("<>|=")) if not numpy_backend() else None
        if code is None:
            self._store: array | np.ndarray = np.zeros(self.capacity, dtype=self.dtype)
            self._view = self._store
        else:
            self._store = array(code, bytes(self.capacity * self.dtype.itemsize))
            self._view = np.frombuffer(memoryview(self._store), dtype=self.dtype)

    def view(self) -> np.ndarray:
        """Flat zero-copy ndarray over the buffer's bytes."""
        return self._view

    def fill(self, value: float) -> None:
        self._view[:] = value

    @property
    def nbytes(self) -> int:
        return self.capacity * self.dtype.itemsize


class MaskBuffer:
    """A contiguous validity-mask column (uint8-backed booleans)."""

    __slots__ = ("_buf",)

    def __init__(self, capacity: int) -> None:
        self._buf = ColumnBuffer(np.uint8, capacity)

    def store(self, mask: np.ndarray) -> np.ndarray:
        """Copy a boolean mask into the buffer; return the stored view."""
        flat = self._buf.view()[: mask.size]
        flat[:] = mask.reshape(-1)
        return flat.view(np.bool_).reshape(mask.shape)

    def view(self, shape: tuple[int, ...]) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= dim
        return self._buf.view()[:n].view(np.bool_).reshape(shape)


class FrameAccumulator:
    """Growable float64 column accumulating one frame's values in order.

    ``append`` pastes a chunk's values at the running offset; assignment
    into the float64 view performs exactly the cast the per-point oracle
    does with ``values.astype(np.float64).ravel()``, so :meth:`values`
    equals the oracle's ``np.concatenate`` of per-chunk casts bit for bit.
    """

    __slots__ = ("_buf", "_size")

    def __init__(self, capacity: int = 4096) -> None:
        self._buf = ColumnBuffer(np.float64, max(int(capacity), 16))
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _ensure(self, extra: int) -> None:
        need = self._size + extra
        if need <= self._buf.capacity:
            return
        capacity = self._buf.capacity
        while capacity < need:
            capacity *= 2
        grown = ColumnBuffer(np.float64, capacity)
        grown.view()[: self._size] = self._buf.view()[: self._size]
        self._buf = grown

    def append(self, values: np.ndarray) -> tuple[int, int]:
        """Paste ``values`` (any shape) flat; return (offset, size)."""
        flat = values.reshape(-1)
        self._ensure(flat.size)
        offset = self._size
        self._buf.view()[offset : offset + flat.size] = flat
        self._size = offset + flat.size
        return offset, flat.size

    def values(self) -> np.ndarray:
        """Flat float64 view of everything appended so far."""
        return self._buf.view()[: self._size]

    def clear(self) -> None:
        self._size = 0


class BandAccumulator:
    """A k-row band of same-width rows in the source dtype (for Coarsen).

    Equivalent to the oracle's ``np.vstack`` of k buffered row chunks,
    built incrementally with one paste per row instead of k chunk objects.
    """

    __slots__ = ("_buf", "row_shape", "k", "dtype", "rows")

    def __init__(self, dtype: np.dtype, k: int, row_shape: tuple[int, ...]) -> None:
        self.dtype = np.dtype(dtype)
        self.k = int(k)
        self.row_shape = tuple(int(d) for d in row_shape)
        n = self.k
        for dim in self.row_shape:
            n *= dim
        self._buf = ColumnBuffer(self.dtype, n)
        self.rows = 0

    def matches(self, dtype: np.dtype, row_shape: tuple[int, ...]) -> bool:
        return np.dtype(dtype) == self.dtype and tuple(row_shape) == self.row_shape

    def set_row(self, i: int, values: np.ndarray) -> None:
        grid = self.stack()
        grid[i] = values

    def stack(self) -> np.ndarray:
        """(k, *row_shape) view over the band buffer."""
        return self._buf.view().reshape((self.k,) + self.row_shape)

    def clear(self) -> None:
        self.rows = 0


class RollingCanvas:
    """A NaN-initialized float64 frame canvas (for resampling operators).

    Source rows are pasted once on arrival (at their column offset, so
    partial rows behave like the oracle's per-row paste) and output rows
    slice a contiguous row-band window. Rows that never arrive stay NaN —
    the oracle's "missing row" representation.
    """

    __slots__ = ("height", "width", "_buf")

    def __init__(self, height: int, width: int) -> None:
        self.height = int(height)
        self.width = int(width)
        self._buf = ColumnBuffer(np.float64, self.height * self.width)
        self._buf.fill(np.nan)

    def grid(self) -> np.ndarray:
        return self._buf.view().reshape(self.height, self.width)

    def reset(self) -> None:
        self._buf.fill(np.nan)

    def paste_row(self, row: int, col0: int, values: np.ndarray) -> None:
        """Paste one source row (cast to float64 by assignment)."""
        self.grid()[row, col0 : col0 + values.shape[-1]] = values

    def clear_row(self, row: int) -> None:
        self.grid()[row, :] = np.nan

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """Contiguous view of source rows ``lo .. hi-1``."""
        return self.grid()[lo:hi]


# -- shared geometry caches ---------------------------------------------------
#
# Lattices are frozen (hashable, content-compared) so coordinate columns
# derived from them are content-keyed: a cache hit returns bit-identical
# arrays to recomputation. Row-by-row streams repeat the same row lattices
# every frame, which is what makes these caches pay.

_COORD_CACHE: dict[GridLattice, tuple[np.ndarray, np.ndarray]] = {}
_COORD_CACHE_MAX = 4096


def coordinate_columns(lattice: GridLattice) -> tuple[np.ndarray, np.ndarray]:
    """Cached (x, y) coordinate arrays of ``lattice.meshgrid()``.

    The arrays are materialized once into contiguous column buffers and
    shared by reference afterwards; callers must not mutate them.
    """
    cached = _COORD_CACHE.get(lattice)
    if cached is None:
        if len(_COORD_CACHE) >= _COORD_CACHE_MAX:
            _COORD_CACHE.clear()
        mx, my = lattice.meshgrid()
        xs = ColumnBuffer(np.float64, mx.size)
        ys = ColumnBuffer(np.float64, my.size)
        xs.view()[:] = mx.reshape(-1)
        ys.view()[:] = my.reshape(-1)
        cached = (xs.view().reshape(mx.shape), ys.view().reshape(my.shape))
        _COORD_CACHE[lattice] = cached
    return cached
