"""Stream transport units.

A GeoStream (Def. 3) is conceptually a function from spatio-temporal
points to values; physically, instruments emit *chunks* — the set of
points that share a timestamp and arrive together:

* :class:`GridChunk` — a rectangular window of a frame lattice. A whole
  frame for image-by-image instruments (Fig. 1a), a single row for
  row-by-row instruments (Fig. 1b).
* :class:`PointChunk` — an explicit batch of irregular points for
  point-by-point instruments such as LIDAR (Fig. 1c), each point with its
  own timestamp.

Chunks are immutable; operators derive new chunks with ``with_values`` /
``select`` so upstream buffers are never mutated in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Union

import numpy as np

from ..errors import StreamError
from ..geo.crs import CRS
from .lattice import GridLattice
from .metadata import FrameInfo
from .provenance import Provenance

if TYPE_CHECKING:  # pragma: no cover - typing only (core never imports obs)
    from ..obs.trace import TraceContext

__all__ = [
    "GridChunk",
    "PointChunk",
    "Chunk",
    "TimestampPolicy",
    "fast_grid_chunk",
    "fast_replace_values",
    "fast_grid_replace",
]

# How composition (Def. 10) matches timestamps across streams: by the
# measured time of each point, or by scan-sector identifier (Section 3.3).
TimestampPolicy = str  # "measured" | "sector"

_POLICIES = ("measured", "sector")


def _check_policy(policy: str) -> None:
    if policy not in _POLICIES:
        raise StreamError(f"unknown timestamp policy {policy!r}; expected one of {_POLICIES}")


@dataclass(frozen=True)
class GridChunk:
    """A rectangular set of same-timestamp points on a grid lattice."""

    values: np.ndarray
    lattice: GridLattice
    band: str
    t: float
    sector: int | None = None
    frame: FrameInfo | None = None
    row0: int = 0
    col0: int = 0
    last_in_frame: bool = True
    # Lineage tag (opt-in, attached only under a stats collector); excluded
    # from equality so tagged and untagged chunks still compare equal.
    provenance: Provenance | None = field(default=None, compare=False, repr=False)
    # Per-frame trace context (opt-in, attached only under a frame tracer);
    # same equality exclusion as provenance.
    trace: "TraceContext | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        object.__setattr__(self, "values", values)
        if values.ndim not in (2, 3):
            raise StreamError(
                f"grid chunk values must be 2-D (or 3-D for vector values), "
                f"got shape {values.shape}"
            )
        if values.shape[:2] != self.lattice.shape:
            raise StreamError(
                f"values shape {values.shape[:2]} does not match lattice shape "
                f"{self.lattice.shape}"
            )

    # -- size ---------------------------------------------------------------

    @property
    def n_points(self) -> int:
        return self.lattice.n_points

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)

    @property
    def crs(self) -> CRS:
        return self.lattice.crs

    @property
    def channels(self) -> int:
        return 1 if self.values.ndim == 2 else int(self.values.shape[2])

    # -- coordinates ----------------------------------------------------------

    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays of shape (height, width) for every point."""
        return self.lattice.meshgrid()

    def flat_coords(self) -> tuple[np.ndarray, np.ndarray]:
        x, y = self.coords()
        return x.ravel(), y.ravel()

    # -- timestamps -------------------------------------------------------------

    def timestamp_key(self, policy: TimestampPolicy = "measured") -> float:
        """The matching key composition uses under the given policy.

        Under the ``sector`` policy a chunk without a sector id falls back
        to its measured time — reproducing the paper's observation that
        measured-time stamps from sequentially-scanned bands never match.
        """
        _check_policy(policy)
        if policy == "sector" and self.sector is not None:
            return float(self.sector)
        return float(self.t)

    # -- derivation -----------------------------------------------------------

    def with_values(self, values: np.ndarray, band: str | None = None) -> "GridChunk":
        """Same points, new values (a value transform's output)."""
        values = np.asarray(values)
        if values.shape[:2] != self.lattice.shape:
            raise StreamError(
                f"replacement values shape {values.shape[:2]} does not match "
                f"lattice shape {self.lattice.shape}"
            )
        return replace(self, values=values, band=band if band is not None else self.band)

    def subwindow(self, row0: int, col0: int, nrows: int, ncols: int) -> "GridChunk":
        """Crop to a window given in this chunk's local indices."""
        if nrows < 1 or ncols < 1:
            raise StreamError("subwindow must be non-empty")
        if row0 < 0 or col0 < 0 or row0 + nrows > self.lattice.height or (
            col0 + ncols > self.lattice.width
        ):
            raise StreamError(
                f"subwindow ({row0},{col0})+({nrows}x{ncols}) exceeds chunk shape "
                f"{self.lattice.shape}"
            )
        return replace(
            self,
            values=self.values[row0 : row0 + nrows, col0 : col0 + ncols],
            lattice=self.lattice.window(row0, col0, nrows, ncols),
            row0=self.row0 + row0,
            col0=self.col0 + col0,
        )


# -- fast (unchecked) constructors -------------------------------------------
#
# The columnar kernels derive thousands of chunks per frame whose shapes
# are known correct by construction (slices of already-validated chunks,
# or batch outputs sized from the target lattice). ``dataclasses.replace``
# re-runs ``__post_init__`` — an ``asarray`` plus two shape checks — on
# every one of them, which dominates the per-row cost. These constructors
# copy the instance ``__dict__`` directly, preserving replace() semantics
# (provenance/trace carried over) without the re-validation. Only kernels
# that have already established the shape invariant may use them; the one
# guard kept in ``fast_replace_values`` is the cheap lattice-shape compare
# so corrupted (fault-injected) values still fail exactly like the oracle.


def fast_grid_chunk(
    values: np.ndarray,
    lattice: GridLattice,
    band: str,
    t: float,
    sector: int | None = None,
    frame: FrameInfo | None = None,
    row0: int = 0,
    col0: int = 0,
    last_in_frame: bool = True,
    provenance: Provenance | None = None,
    trace: "TraceContext | None" = None,
) -> GridChunk:
    """Build a :class:`GridChunk` without ``__post_init__`` validation.

    ``values`` must already be an ndarray whose leading shape matches
    ``lattice.shape``; callers are responsible for that invariant.
    """
    out = object.__new__(GridChunk)
    out.__dict__.update(
        values=values,
        lattice=lattice,
        band=band,
        t=t,
        sector=sector,
        frame=frame,
        row0=row0,
        col0=col0,
        last_in_frame=last_in_frame,
        provenance=provenance,
        trace=trace,
    )
    return out


def fast_replace_values(chunk: GridChunk, values: np.ndarray, band: str | None = None) -> GridChunk:
    """``chunk.with_values`` minus the asarray round-trip.

    Keeps the lattice-shape guard (one tuple compare) so shape-corrupting
    faults raise :class:`StreamError` exactly as the per-point path does.
    """
    if values.shape[:2] != chunk.lattice.shape:
        raise StreamError(
            f"replacement values shape {values.shape[:2]} does not match "
            f"lattice shape {chunk.lattice.shape}"
        )
    out = object.__new__(GridChunk)
    out.__dict__.update(chunk.__dict__)
    out.__dict__["values"] = values
    if band is not None:
        out.__dict__["band"] = band
    return out


def fast_grid_replace(chunk: GridChunk, **fields: object) -> GridChunk:
    """Unvalidated ``dataclasses.replace`` for shape-preserving derivations."""
    out = object.__new__(GridChunk)
    out.__dict__.update(chunk.__dict__)
    out.__dict__.update(fields)
    return out


@dataclass(frozen=True)
class PointChunk:
    """A batch of irregularly-located points, each with its own timestamp."""

    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    band: str
    t: np.ndarray
    crs: CRS
    sector: int | None = None
    provenance: Provenance | None = field(default=None, compare=False, repr=False)
    trace: "TraceContext | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        t = np.asarray(self.t, dtype=float)
        values = np.asarray(self.values)
        for name, arr in (("x", x), ("y", y), ("t", t)):
            if arr.ndim != 1:
                raise StreamError(f"point chunk {name} must be 1-D, got shape {arr.shape}")
        n = x.shape[0]
        if y.shape[0] != n or t.shape[0] != n or values.shape[0] != n:
            raise StreamError(
                f"point chunk arrays disagree on length: x={x.shape[0]}, "
                f"y={y.shape[0]}, t={t.shape[0]}, values={values.shape[0]}"
            )
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "values", values)

    @property
    def n_points(self) -> int:
        return int(self.x.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.x.nbytes + self.y.nbytes + self.t.nbytes)

    @property
    def channels(self) -> int:
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    def select(self, mask: np.ndarray) -> "PointChunk":
        """Subset of the points where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.x.shape:
            raise StreamError(
                f"selection mask shape {mask.shape} does not match point count "
                f"{self.x.shape}"
            )
        return replace(
            self,
            x=self.x[mask],
            y=self.y[mask],
            t=self.t[mask],
            values=self.values[mask],
        )

    def with_values(self, values: np.ndarray, band: str | None = None) -> "PointChunk":
        values = np.asarray(values)
        if values.shape[0] != self.n_points:
            raise StreamError(
                f"replacement values length {values.shape[0]} does not match "
                f"point count {self.n_points}"
            )
        return replace(self, values=values, band=band if band is not None else self.band)


Chunk = Union[GridChunk, PointChunk]
