"""Stream and scan-sector metadata.

Section 3.2 of the paper notes that spatial transform operators avoid
blocking "by utilizing auxiliary information about the spatial region
currently scanned by an instrument and added as metadata to the stream of
image data". :class:`FrameInfo` is that auxiliary information: every chunk
an instrument emits can carry the identity and full spatial extent of the
frame (scan sector) it belongs to, plus its offset within the frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lattice import GridLattice

__all__ = ["FrameInfo"]


@dataclass(frozen=True)
class FrameInfo:
    """Identity and full extent of the frame a chunk belongs to.

    Parameters
    ----------
    frame_id:
        Monotonically increasing frame (scan) counter within a stream.
    lattice:
        The *complete* frame's lattice — the spatial region currently
        scanned — even when the chunk itself covers only one row of it.
    """

    frame_id: int
    lattice: GridLattice

    @property
    def n_rows(self) -> int:
        return self.lattice.height

    @property
    def n_cols(self) -> int:
        return self.lattice.width
