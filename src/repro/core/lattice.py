"""Point lattices (Def. 1): regularly-spaced grids with a coordinate system.

The paper restricts point sets to regularly-spaced lattices in R^n with an
associated coordinate system; :class:`GridLattice` is that object for the
raster case. Georeferencing uses the pixel-*center* convention: pixel
``(row, col)`` is centered at ``(x0 + col*dx, y0 + row*dy)``. ``dy`` is
negative for the usual north-up orientation (row 0 is the northernmost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import LatticeAlignmentError, LatticeError
from ..geo.crs import CRS
from ..geo.region import BoundingBox

__all__ = ["GridLattice"]


@dataclass(frozen=True)
class GridLattice:
    """A regular spatial grid in a CRS (the paper's *point lattice*)."""

    crs: CRS
    x0: float
    y0: float
    dx: float
    dy: float
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise LatticeError(f"lattice must be at least 1x1, got {self.width}x{self.height}")
        if self.dx == 0.0 or self.dy == 0.0:
            raise LatticeError("lattice resolution must be non-zero in both axes")

    # Lattices key the columnar kernels' caches (masks, derived lattices,
    # navigation grids), where equal-but-not-identical row lattices recur
    # once per frame. Hand-written comparison short-circuits on the cheap
    # integer fields and the hash is memoized per instance.

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if other.__class__ is not GridLattice:
            return NotImplemented
        return (
            self.width == other.width
            and self.height == other.height
            and self.x0 == other.x0
            and self.y0 == other.y0
            and self.dx == other.dx
            and self.dy == other.dy
            and self.crs == other.crs
        )

    def __hash__(self) -> int:
        d = self.__dict__
        h = d.get("_hash")
        if h is None:
            h = hash((self.crs, self.x0, self.y0, self.dx, self.dy, self.width, self.height))
            d["_hash"] = h
        return h

    # -- basic geometry -----------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width), matching numpy array shape order."""
        return (self.height, self.width)

    @property
    def n_points(self) -> int:
        return self.width * self.height

    @property
    def resolution(self) -> tuple[float, float]:
        """(|dx|, |dy|)."""
        return (abs(self.dx), abs(self.dy))

    def xs(self) -> np.ndarray:
        """Column center x-coordinates, length ``width``."""
        return self.x0 + self.dx * np.arange(self.width)

    def ys(self) -> np.ndarray:
        """Row center y-coordinates, length ``height``."""
        return self.y0 + self.dy * np.arange(self.height)

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Full (x, y) coordinate arrays of shape (height, width)."""
        return np.meshgrid(self.xs(), self.ys())

    def x_of_col(self, col: np.ndarray | int) -> np.ndarray:
        return self.x0 + self.dx * np.asarray(col)

    def y_of_row(self, row: np.ndarray | int) -> np.ndarray:
        return self.y0 + self.dy * np.asarray(row)

    # -- coordinate <-> index ------------------------------------------------

    def col_of_x(self, x: np.ndarray | float) -> np.ndarray:
        """Nearest column index (may fall outside [0, width))."""
        return np.rint((np.asarray(x, dtype=float) - self.x0) / self.dx).astype(np.int64)

    def row_of_y(self, y: np.ndarray | float) -> np.ndarray:
        """Nearest row index (may fall outside [0, height))."""
        return np.rint((np.asarray(y, dtype=float) - self.y0) / self.dy).astype(np.int64)

    def fractional_col(self, x: np.ndarray | float) -> np.ndarray:
        """Real-valued column coordinate (for interpolation)."""
        return (np.asarray(x, dtype=float) - self.x0) / self.dx

    def fractional_row(self, y: np.ndarray | float) -> np.ndarray:
        return (np.asarray(y, dtype=float) - self.y0) / self.dy

    def index_in_bounds(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        row = np.asarray(row)
        col = np.asarray(col)
        return (row >= 0) & (row < self.height) & (col >= 0) & (col < self.width)

    # -- extent ---------------------------------------------------------------

    @property
    def bbox(self) -> BoundingBox:
        """Outer edges of the lattice (pixel areas, not just centers)."""
        x_edges = (self.x0 - self.dx / 2.0, self.x0 + self.dx * (self.width - 0.5))
        y_edges = (self.y0 - self.dy / 2.0, self.y0 + self.dy * (self.height - 0.5))
        return BoundingBox(
            min(x_edges), min(y_edges), max(x_edges), max(y_edges), self.crs
        )

    @property
    def center_bbox(self) -> BoundingBox:
        """Bounding box of pixel centers only."""
        xs = (self.x0, self.x0 + self.dx * (self.width - 1))
        ys = (self.y0, self.y0 + self.dy * (self.height - 1))
        return BoundingBox(min(xs), min(ys), max(xs), max(ys), self.crs)

    # -- windows -----------------------------------------------------------

    def window(self, row0: int, col0: int, nrows: int, ncols: int) -> "GridLattice":
        """Sub-lattice of ``nrows`` x ``ncols`` starting at (row0, col0).

        The window may exceed this lattice's index range — a window is just
        a re-origined lattice — but must be non-empty.
        """
        return replace(
            self,
            x0=self.x0 + self.dx * col0,
            y0=self.y0 + self.dy * row0,
            width=ncols,
            height=nrows,
        )

    def row_lattice(self, row: int) -> "GridLattice":
        """The single-row sub-lattice at ``row`` (used by row-by-row scans)."""
        return self.window(row, 0, 1, self.width)

    def intersect_window(self, region_bbox: BoundingBox) -> tuple[int, int, int, int] | None:
        """Index window (row0, col0, nrows, ncols) of pixels whose centers
        fall inside ``region_bbox``, or None when empty."""
        self.crs.require_same(region_bbox.crs, "lattice/region intersection")
        c_lo = (region_bbox.xmin - self.x0) / self.dx
        c_hi = (region_bbox.xmax - self.x0) / self.dx
        r_lo = (region_bbox.ymin - self.y0) / self.dy
        r_hi = (region_bbox.ymax - self.y0) / self.dy
        col0 = max(0, math.ceil(min(c_lo, c_hi) - 1e-9))
        col1 = min(self.width - 1, math.floor(max(c_lo, c_hi) + 1e-9))
        row0 = max(0, math.ceil(min(r_lo, r_hi) - 1e-9))
        row1 = min(self.height - 1, math.floor(max(r_lo, r_hi) + 1e-9))
        if col0 > col1 or row0 > row1:
            return None
        return (row0, col0, row1 - row0 + 1, col1 - col0 + 1)

    # -- derived lattices ----------------------------------------------------

    def magnified(self, k: int) -> "GridLattice":
        """Lattice with k-times finer resolution over the same extent.

        Each source pixel becomes a k x k block; the first fine pixel's
        center sits at the source pixel's upper-left quarter position.
        """
        if k < 1:
            raise LatticeError(f"magnification factor must be >= 1, got {k}")
        return replace(
            self,
            x0=self.x0 - self.dx / 2.0 + self.dx / (2.0 * k),
            y0=self.y0 - self.dy / 2.0 + self.dy / (2.0 * k),
            dx=self.dx / k,
            dy=self.dy / k,
            width=self.width * k,
            height=self.height * k,
        )

    def coarsened(self, k: int) -> "GridLattice":
        """Lattice with k-times coarser resolution (floor-truncated extent)."""
        if k < 1:
            raise LatticeError(f"coarsening factor must be >= 1, got {k}")
        if self.width < k or self.height < k:
            raise LatticeError(
                f"cannot coarsen a {self.height}x{self.width} lattice by {k}"
            )
        return replace(
            self,
            x0=self.x0 + self.dx * (k - 1) / 2.0,
            y0=self.y0 + self.dy * (k - 1) / 2.0,
            dx=self.dx * k,
            dy=self.dy * k,
            width=self.width // k,
            height=self.height // k,
        )

    @staticmethod
    def from_bbox(
        bbox: BoundingBox, dx: float, dy: float, crs: CRS | None = None
    ) -> "GridLattice":
        """Smallest lattice of resolution (dx, dy) covering ``bbox``.

        ``dy`` may be given negative for north-up; a positive value is
        interpreted as |dy| with north-up orientation.
        """
        crs = crs or bbox.crs
        dx = abs(dx)
        dy_abs = abs(dy)
        if dx == 0 or dy_abs == 0:
            raise LatticeError("resolution must be non-zero")
        width = max(1, math.ceil(bbox.width / dx - 1e-9))
        height = max(1, math.ceil(bbox.height / dy_abs - 1e-9))
        return GridLattice(
            crs=crs,
            x0=bbox.xmin + dx / 2.0,
            y0=bbox.ymax - dy_abs / 2.0,
            dx=dx,
            dy=-dy_abs,
            width=width,
            height=height,
        )

    # -- alignment ----------------------------------------------------------

    def aligned_with(self, other: "GridLattice", tol: float = 1e-6) -> bool:
        """True when both lattices sample the same underlying grid.

        Same CRS and resolution, and origins offset by an integer number of
        cells. This is the precondition for pointwise stream composition
        (Def. 10) to match points exactly.
        """
        if self.crs != other.crs:
            return False
        if not math.isclose(self.dx, other.dx, rel_tol=0, abs_tol=tol * abs(self.dx)):
            return False
        if not math.isclose(self.dy, other.dy, rel_tol=0, abs_tol=tol * abs(self.dy)):
            return False
        off_x = (other.x0 - self.x0) / self.dx
        off_y = (other.y0 - self.y0) / self.dy
        return (
            abs(off_x - round(off_x)) < tol
            and abs(off_y - round(off_y)) < tol
        )

    def offset_of(self, other: "GridLattice", tol: float = 1e-6) -> tuple[int, int]:
        """(row, col) of ``other``'s origin pixel within this lattice's grid."""
        if not self.aligned_with(other, tol):
            raise LatticeAlignmentError("lattices do not share a grid")
        return (
            int(round((other.y0 - self.y0) / self.dy)),
            int(round((other.x0 - self.x0) / self.dx)),
        )
