"""Compact chunk lineage tags.

A GeoStream is a *function* from spatio-temporal points to values, so any
delivered value should be able to answer "which raw scans and which
operators produced you". :class:`Provenance` is the compact answer: the
set of ``(stream_id, scan_ordinal)`` source scans a chunk derives from
and the set of plan-stage fingerprints it traversed.

Tags are immutable and merge monotonically: every operator output carries
the union of its inputs' tags plus the operator's own stage fingerprint.
For buffering operators (frame assembly, temporal windows, composition)
this is a sound *over*-approximation — a flushed chunk is tagged with
every scan the operator consumed since its last emission, never fewer.

Provenance is opt-in (attached only while a stats collector is
installed, see :mod:`repro.obs.stats`) and deliberately tiny: frozensets
of small tuples/strings, no per-point bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Provenance"]

# Beyond this many distinct scans we stop enumerating and keep a count —
# lineage stays O(1) per chunk even for day-long windows.
MAX_TRACKED_SCANS = 256


@dataclass(frozen=True)
class Provenance:
    """Lineage tag: source scans consumed and stage fingerprints traversed."""

    sources: frozenset[tuple[str, int]] = field(default_factory=frozenset)
    stages: frozenset[str] = field(default_factory=frozenset)
    dropped_sources: int = 0  # scans beyond MAX_TRACKED_SCANS, counted not listed

    @classmethod
    def scan(cls, stream_id: str, ordinal: int) -> "Provenance":
        """The tag of a raw source chunk: one scan, no stages yet."""
        return cls(sources=frozenset({(stream_id, int(ordinal))}))

    def with_stage(self, fingerprint: str) -> "Provenance":
        if fingerprint in self.stages:
            return self
        return Provenance(
            sources=self.sources,
            stages=self.stages | {fingerprint},
            dropped_sources=self.dropped_sources,
        )

    def merge(self, other: "Provenance | None") -> "Provenance":
        if other is None or other == self:
            return self
        sources = self.sources | other.sources
        dropped = self.dropped_sources + other.dropped_sources
        if len(sources) > MAX_TRACKED_SCANS:
            # Keep the most recent scans (highest ordinals) and count the rest.
            kept = sorted(sources, key=lambda s: (s[1], s[0]))[-MAX_TRACKED_SCANS:]
            dropped += len(sources) - len(kept)
            sources = frozenset(kept)
        return Provenance(
            sources=sources,
            stages=self.stages | other.stages,
            dropped_sources=dropped,
        )

    @property
    def stream_ids(self) -> frozenset[str]:
        return frozenset(stream_id for stream_id, _ in self.sources)

    def scan_ordinals(self, stream_id: str) -> tuple[int, ...]:
        return tuple(sorted(o for sid, o in self.sources if sid == stream_id))

    def describe(self) -> str:
        parts = []
        for sid in sorted(self.stream_ids):
            ordinals = self.scan_ordinals(sid)
            parts.append(f"{sid}[{','.join(str(o) for o in ordinals)}]")
        if self.dropped_sources:
            parts.append(f"(+{self.dropped_sources} earlier scans)")
        src = " ".join(parts) or "-"
        fps = ",".join(sorted(self.stages)) or "-"
        return f"sources: {src}  stages: {fps}"
