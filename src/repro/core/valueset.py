"""Value sets (Def. 2): homogeneous algebras of point values.

A value set pairs a numpy dtype with optional bounds and a channel count,
and knows how to validate, coerce, and combine values. Typical instances
mirror the paper's examples: Z for grey-scale images, Z^3 for color images,
Z^n for multi-spectral data, plus real-valued sets for derived products
like NDVI (whose values live in [-1, 1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ValueSetError

__all__ = [
    "ValueSet",
    "GRAY8",
    "GRAY10",
    "GRAY16",
    "RGB8",
    "FLOAT32",
    "FLOAT64",
    "REFLECTANCE",
    "NDVI_VALUES",
    "promote",
]


@dataclass(frozen=True)
class ValueSet:
    """A set of point values with an algebra over them.

    Parameters
    ----------
    name:
        Identifier used in metadata and error messages.
    dtype:
        Numpy dtype values are stored in.
    channels:
        1 for scalar values, n for vector values (e.g. 3 for RGB).
    lo, hi:
        Optional inclusive bounds; ``coerce`` clips into them.
    """

    name: str
    dtype: np.dtype
    channels: int = 1
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.channels < 1:
            raise ValueSetError(f"value set {self.name!r}: channels must be >= 1")
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueSetError(f"value set {self.name!r}: lo > hi")

    # -- classification ---------------------------------------------------

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.dtype, np.integer)

    @property
    def is_vector(self) -> bool:
        return self.channels > 1

    @property
    def bounds(self) -> tuple[float, float]:
        """Effective bounds, falling back to the dtype's representable range."""
        if self.is_integer:
            info = np.iinfo(self.dtype)
            lo = info.min if self.lo is None else self.lo
            hi = info.max if self.hi is None else self.hi
        else:
            lo = -np.inf if self.lo is None else self.lo
            hi = np.inf if self.hi is None else self.hi
        return float(lo), float(hi)

    # -- membership & coercion ---------------------------------------------

    def expected_trailing_shape(self) -> tuple[int, ...]:
        return (self.channels,) if self.is_vector else ()

    def contains(self, values: np.ndarray) -> bool:
        """True when the array's dtype, shape, and range fit this set."""
        values = np.asarray(values)
        if self.is_vector and (values.ndim == 0 or values.shape[-1] != self.channels):
            return False
        if values.dtype != self.dtype:
            return False
        lo, hi = self.bounds
        finite = values[np.isfinite(values)] if not self.is_integer else values
        if finite.size == 0:
            return True
        return bool(np.all(finite >= lo) and np.all(finite <= hi))

    def coerce(self, values: np.ndarray) -> np.ndarray:
        """Clip into bounds and cast to the set's dtype (rounding integers)."""
        arr = np.asarray(values)
        if self.is_vector and (arr.ndim == 0 or arr.shape[-1] != self.channels):
            raise ValueSetError(
                f"value set {self.name!r} expects {self.channels}-channel values, "
                f"got array of shape {arr.shape}"
            )
        lo, hi = self.bounds
        out = arr.astype(np.float64, copy=True)
        if np.isfinite(lo) or np.isfinite(hi):
            out = np.clip(out, lo, hi)
        if self.is_integer:
            out = np.rint(out)
        return out.astype(self.dtype)

    def validate(self, values: np.ndarray, context: str = "values") -> np.ndarray:
        """Assert membership, returning the array unchanged."""
        values = np.asarray(values)
        if not self.contains(values):
            raise ValueSetError(
                f"{context}: array (dtype={values.dtype}, shape={values.shape}) "
                f"is not a member of value set {self.name!r}"
            )
        return values

    def nbytes_per_point(self) -> int:
        return int(self.dtype.itemsize) * self.channels


GRAY8 = ValueSet("gray8", np.uint8, lo=0, hi=255)
GRAY10 = ValueSet("gray10", np.uint16, lo=0, hi=1023)  # GVAR imagery is 10-bit
GRAY16 = ValueSet("gray16", np.uint16, lo=0, hi=65535)
RGB8 = ValueSet("rgb8", np.uint8, channels=3, lo=0, hi=255)
FLOAT32 = ValueSet("float32", np.float32)
FLOAT64 = ValueSet("float64", np.float64)
REFLECTANCE = ValueSet("reflectance", np.float32, lo=0.0, hi=1.0)
NDVI_VALUES = ValueSet("ndvi", np.float32, lo=-1.0, hi=1.0)


def promote(a: ValueSet, b: ValueSet) -> ValueSet:
    """Value set of the result of arithmetic between members of ``a`` and ``b``.

    Arithmetic can leave either operand's bounds (e.g. difference of two
    reflectances is negative), so the promoted set is unbounded in the
    common floating dtype — callers narrow it again when they know more
    (the NDVI macro does, for instance).
    """
    if a.channels != b.channels:
        raise ValueSetError(
            f"cannot combine value sets {a.name!r} and {b.name!r}: "
            f"channel counts differ ({a.channels} vs {b.channels})"
        )
    dtype = np.promote_types(a.dtype, b.dtype)
    if np.issubdtype(dtype, np.integer):
        dtype = np.dtype(np.float64) if dtype.itemsize > 4 else np.dtype(np.float32)
    name = a.name if a == b else f"{a.name}|{b.name}"
    return ValueSet(name, dtype, channels=a.channels)
