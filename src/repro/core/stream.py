"""GeoStreams (Defs. 3 and 5).

A :class:`GeoStream` pairs stream metadata — band, coordinate system,
point organization, value set, timestamp policy — with a *re-openable*
lazy source of chunks. Re-openability (the source is a factory, not a
one-shot iterator) is what lets the same declared stream feed repeated
benchmark runs and multiple registered continuous queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..errors import StreamError
from ..geo.crs import CRS
from .chunk import Chunk, GridChunk, PointChunk, TimestampPolicy
from .image import RasterImage, assemble_frames
from .valueset import FLOAT32, ValueSet

if TYPE_CHECKING:  # pragma: no cover
    from ..operators.base import Operator

__all__ = ["Organization", "StreamMetadata", "GeoStream"]


class Organization(enum.Enum):
    """Point-set organization of a stream (Fig. 1)."""

    IMAGE_BY_IMAGE = "image-by-image"
    ROW_BY_ROW = "row-by-row"
    POINT_BY_POINT = "point-by-point"


@dataclass(frozen=True)
class StreamMetadata:
    """Descriptive properties of a GeoStream."""

    stream_id: str
    band: str
    crs: CRS
    organization: Organization
    value_set: ValueSet = FLOAT32
    timestamp_policy: TimestampPolicy = "measured"
    description: str = ""
    # Hint used by cost estimation: the largest frame (rows, cols) the
    # stream can produce. "For most satellites ... such frame sizes are
    # known" (Section 3.2).
    max_frame_shape: tuple[int, int] | None = None

    def renamed(self, stream_id: str, band: str | None = None) -> "StreamMetadata":
        return replace(self, stream_id=stream_id, band=band if band is not None else self.band)


class GeoStream:
    """A stream of geospatial image data: metadata + re-openable chunk source."""

    def __init__(
        self,
        metadata: StreamMetadata,
        source: Callable[[], Iterable[Chunk]],
    ) -> None:
        if not callable(source):
            raise StreamError(
                "GeoStream source must be a zero-argument callable returning an "
                "iterable of chunks (so the stream can be re-opened)"
            )
        self.metadata = metadata
        self._source = source

    # -- convenience accessors -------------------------------------------------

    @property
    def stream_id(self) -> str:
        return self.metadata.stream_id

    @property
    def band(self) -> str:
        return self.metadata.band

    @property
    def crs(self) -> CRS:
        return self.metadata.crs

    @property
    def organization(self) -> Organization:
        return self.metadata.organization

    @property
    def value_set(self) -> ValueSet:
        return self.metadata.value_set

    # -- iteration ------------------------------------------------------------

    def chunks(self) -> Iterator[Chunk]:
        """Open the stream and iterate its chunks from the beginning."""
        return iter(self._source())

    def __iter__(self) -> Iterator[Chunk]:
        return self.chunks()

    # -- composition with operators -----------------------------------------------

    def pipe(self, *operators: "Operator", columnar: bool | None = None) -> "GeoStream":
        """Apply operators in sequence, yielding a new GeoStream (closure).

        The query algebra is closed — "the result of applying an operator
        to one or two GeoStreams is again a GeoStream" — so ``pipe``
        returns a stream that can itself be piped further. ``columnar``
        selects the execution mode (None: the ``REPRO_COLUMNAR`` default).
        """
        from ..engine.pipeline import apply_operators

        return apply_operators(self, list(operators), columnar=columnar)

    # -- materialization ----------------------------------------------------------

    def collect_chunks(self, limit: int | None = None) -> list[Chunk]:
        """Materialize up to ``limit`` chunks (all when None)."""
        out: list[Chunk] = []
        for i, chunk in enumerate(self.chunks()):
            if limit is not None and i >= limit:
                break
            out.append(chunk)
        return out

    def collect_frames(self, limit: int | None = None) -> list[RasterImage]:
        """Materialize up to ``limit`` assembled frames (all when None)."""
        out: list[RasterImage] = []
        for image in assemble_frames(self.chunks()):
            out.append(image)
            if limit is not None and len(out) >= limit:
                break
        return out

    def count_points(self) -> int:
        """Total number of points in the (finite) stream."""
        return sum(c.n_points for c in self.chunks())

    # -- derivation ----------------------------------------------------------------

    def with_metadata(self, **changes: object) -> "GeoStream":
        """Copy of this stream with updated metadata fields."""
        return GeoStream(replace(self.metadata, **changes), self._source)

    @staticmethod
    def from_chunks(
        metadata: StreamMetadata, chunks: Iterable[Chunk]
    ) -> "GeoStream":
        """Wrap an already-materialized chunk list as a replayable stream."""
        stored = list(chunks)
        for c in stored:
            if not isinstance(c, (GridChunk, PointChunk)):
                raise StreamError(f"not a chunk: {type(c).__name__}")
        return GeoStream(metadata, lambda: list(stored))

    def __repr__(self) -> str:
        return (
            f"GeoStream({self.stream_id!r}, band={self.band!r}, "
            f"crs={self.crs.name!r}, org={self.organization.value})"
        )
