"""Core data model: point lattices, value sets, chunks, images, GeoStreams.

Implements Definitions 1-5 of the paper (point set, value set, stream,
image, GeoStream) plus the temporal restriction domains of Definition 7.
"""

from .chunk import (
    Chunk,
    GridChunk,
    PointChunk,
    TimestampPolicy,
    fast_grid_chunk,
    fast_grid_replace,
    fast_replace_values,
)
from .columnar import (
    BandAccumulator,
    ColumnBuffer,
    FrameAccumulator,
    MaskBuffer,
    RollingCanvas,
    columnar_default,
    coordinate_columns,
    numpy_backend,
    resolve_columnar,
)
from .image import RasterImage, assemble_frames
from .lattice import GridLattice
from .metadata import FrameInfo
from .stream import GeoStream, Organization, StreamMetadata
from .timeset import (
    AllTime,
    RecurringInterval,
    TimeInstants,
    TimeIntersection,
    TimeInterval,
    TimeIntervalSet,
    TimeSet,
    TimeUnion,
    intersect_timesets,
)
from .valueset import (
    FLOAT32,
    FLOAT64,
    GRAY10,
    GRAY16,
    GRAY8,
    NDVI_VALUES,
    REFLECTANCE,
    RGB8,
    ValueSet,
    promote,
)

__all__ = [
    "Chunk",
    "GridChunk",
    "PointChunk",
    "TimestampPolicy",
    "fast_grid_chunk",
    "fast_grid_replace",
    "fast_replace_values",
    "ColumnBuffer",
    "MaskBuffer",
    "FrameAccumulator",
    "BandAccumulator",
    "RollingCanvas",
    "columnar_default",
    "coordinate_columns",
    "numpy_backend",
    "resolve_columnar",
    "RasterImage",
    "assemble_frames",
    "GridLattice",
    "FrameInfo",
    "GeoStream",
    "Organization",
    "StreamMetadata",
    "TimeSet",
    "AllTime",
    "TimeInstants",
    "TimeInterval",
    "TimeIntervalSet",
    "TimeIntersection",
    "TimeUnion",
    "RecurringInterval",
    "intersect_timesets",
    "ValueSet",
    "GRAY8",
    "GRAY10",
    "GRAY16",
    "RGB8",
    "FLOAT32",
    "FLOAT64",
    "REFLECTANCE",
    "NDVI_VALUES",
    "promote",
]
