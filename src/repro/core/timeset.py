"""Temporal restriction domains (Def. 7).

The paper allows the timestamp set ``T`` of a temporal restriction to be a
collection of points in time, an (open) interval, or a set of re-occurring
intervals ("only data during a specific time period every day"). Timestamps
are plain floats; when a stream is sector-stamped the same machinery
restricts over integer sector identifiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import QueryError

__all__ = [
    "TimeSet",
    "AllTime",
    "TimeInstants",
    "TimeInterval",
    "TimeIntervalSet",
    "RecurringInterval",
    "TimeIntersection",
    "TimeUnion",
    "intersect_timesets",
]


class TimeSet:
    """Abstract set of timestamps."""

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        """Vectorized membership test."""
        raise NotImplementedError

    def contains_scalar(self, t: float) -> bool:
        return bool(np.asarray(self.contains(np.asarray([float(t)])))[0])

    def bounds(self) -> tuple[float, float]:
        """(earliest, latest) possible member; may be infinite."""
        raise NotImplementedError

    @property
    def definitely_empty(self) -> bool:
        lo, hi = self.bounds()
        return lo > hi


class AllTime(TimeSet):
    """The unrestricted temporal domain."""

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        return np.ones(np.shape(np.asarray(t)), dtype=bool)

    def bounds(self) -> tuple[float, float]:
        return (-math.inf, math.inf)

    def __repr__(self) -> str:
        return "AllTime()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AllTime)

    def __hash__(self) -> int:
        return hash("AllTime")


@dataclass(frozen=True)
class TimeInstants(TimeSet):
    """A finite collection of points in time, matched to a tolerance."""

    instants: tuple[float, ...]
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if not self.instants:
            raise QueryError("TimeInstants needs at least one instant")
        object.__setattr__(self, "instants", tuple(sorted(float(v) for v in self.instants)))

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        inst = np.asarray(self.instants)
        # |t - nearest instant| <= tol via searchsorted on the sorted instants.
        idx = np.searchsorted(inst, t)
        best = np.full(t.shape, np.inf)
        for cand in (np.clip(idx - 1, 0, inst.size - 1), np.clip(idx, 0, inst.size - 1)):
            best = np.minimum(best, np.abs(t - inst[cand]))
        return best <= self.tolerance

    def bounds(self) -> tuple[float, float]:
        return (self.instants[0] - self.tolerance, self.instants[-1] + self.tolerance)


@dataclass(frozen=True)
class TimeInterval(TimeSet):
    """A single interval; endpoints may be infinite and open or closed."""

    start: float = -math.inf
    end: float = math.inf
    closed_start: bool = True
    closed_end: bool = True

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise QueryError(f"interval start {self.start} after end {self.end}")

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        lo = (t >= self.start) if self.closed_start else (t > self.start)
        hi = (t <= self.end) if self.closed_end else (t < self.end)
        return lo & hi

    def bounds(self) -> tuple[float, float]:
        return (self.start, self.end)

    def intersection(self, other: "TimeInterval") -> "TimeInterval | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start > end:
            return None
        cs = (self.closed_start if start == self.start else True) and (
            other.closed_start if start == other.start else True
        )
        ce = (self.closed_end if end == self.end else True) and (
            other.closed_end if end == other.end else True
        )
        if start == end and not (cs and ce):
            return None
        return TimeInterval(start, end, cs, ce)


@dataclass(frozen=True)
class TimeIntervalSet(TimeSet):
    """A finite union of intervals."""

    intervals: tuple[TimeInterval, ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise QueryError("TimeIntervalSet needs at least one interval")

    @staticmethod
    def of(pairs: Iterable[tuple[float, float]]) -> "TimeIntervalSet":
        return TimeIntervalSet(tuple(TimeInterval(a, b) for a, b in pairs))

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        out = np.zeros(t.shape, dtype=bool)
        for iv in self.intervals:
            out |= iv.contains(t)
        return out

    def bounds(self) -> tuple[float, float]:
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )


@dataclass(frozen=True)
class RecurringInterval(TimeSet):
    """A daily (or arbitrary-period) re-occurring window.

    Members are timestamps ``t`` with ``offset_start <= (t mod period) <
    offset_end``, e.g. "10:00-14:00 every day" with period 86400.
    """

    offset_start: float
    offset_end: float
    period: float = 86_400.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise QueryError("period must be positive")
        if not 0 <= self.offset_start < self.period:
            raise QueryError("offset_start must lie in [0, period)")
        if not self.offset_start < self.offset_end <= self.period:
            raise QueryError("offset_end must lie in (offset_start, period]")

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        phase = np.mod(t, self.period)
        return (phase >= self.offset_start) & (phase < self.offset_end)

    def bounds(self) -> tuple[float, float]:
        return (-math.inf, math.inf)


@dataclass(frozen=True)
class TimeIntersection(TimeSet):
    """Conjunction of time sets (produced when merging restrictions)."""

    parts: tuple[TimeSet, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise QueryError("intersection of zero time sets")

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        out = self.parts[0].contains(t)
        for p in self.parts[1:]:
            out = out & p.contains(t)
        return out

    def bounds(self) -> tuple[float, float]:
        lo = max(p.bounds()[0] for p in self.parts)
        hi = min(p.bounds()[1] for p in self.parts)
        return (lo, hi)


@dataclass(frozen=True)
class TimeUnion(TimeSet):
    """Disjunction of time sets."""

    parts: tuple[TimeSet, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise QueryError("union of zero time sets")

    def contains(self, t: np.ndarray | float) -> np.ndarray:
        out = self.parts[0].contains(t)
        for p in self.parts[1:]:
            out = out | p.contains(t)
        return out

    def bounds(self) -> tuple[float, float]:
        lo = min(p.bounds()[0] for p in self.parts)
        hi = max(p.bounds()[1] for p in self.parts)
        return (lo, hi)


def intersect_timesets(a: TimeSet, b: TimeSet) -> TimeSet:
    """Merge two time sets, simplifying the common cases."""
    if isinstance(a, AllTime):
        return b
    if isinstance(b, AllTime):
        return a
    if isinstance(a, TimeInterval) and isinstance(b, TimeInterval):
        inter = a.intersection(b)
        if inter is not None:
            return inter
        # Disjoint intervals: an explicitly-empty interval set.
        return TimeIntersection((a, b))
    return TimeIntersection((a, b))
