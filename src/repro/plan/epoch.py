"""Versioned plan epochs: transactional mutation of the shared DAG.

A registered query no longer owns one immutable subplan — it owns a
*sequence of plan epochs*. Every structural change to a
:class:`~repro.plan.stages.PlanDAG` (registration, deregistration, and
live re-optimization) happens through an :class:`EpochTransition`, which
is the only code in the repository allowed to touch the DAG's stage
tables (``order``, ``_by_fingerprint``, ``taps``), stage subscriber sets,
and edge lists (lint rule RL006 enforces this).

A transition diffs the old and new stage-fingerprint sets, *grafts*
unchanged shared stages (operator state and refcounts preserved — a
stage serving three queries keeps serving all three), builds only the
stages that are genuinely new, and retires orphans nobody subscribes to
anymore. Committing bumps the root's epoch counter and stamps every
surviving stage with the epoch that now owns it, so
``check_dag`` can audit cross-epoch invariants and a delivered frame's
provenance can be matched against exactly one epoch's stage set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.chunk import Chunk
from ..errors import PlanError
from ..obs.registry import get_registry, metrics_enabled
from ..obs.timeline import current_journal
from .nodes import Compose, EmptyPlan, PlanNode, SourceScan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stages import PlanDAG, Stage

__all__ = ["EpochTransition", "PlanEpoch", "EpochSwapResult"]

_Sink = Callable[[Chunk], None]


@dataclass(frozen=True)
class PlanEpoch:
    """One committed version of a query's physical plan."""

    root_id: int
    epoch: int
    plan: PlanNode | None
    fingerprints: frozenset[str]
    reason: str

    def describe(self) -> str:
        what = self.plan.describe() if self.plan is not None else "-"
        return f"q{self.root_id}@e{self.epoch} [{self.reason}] {what}"


@dataclass(frozen=True)
class EpochSwapResult:
    """What a live swap changed, for logs, traces, and tests."""

    root_id: int
    old_epoch: int
    new_epoch: int
    grafted: frozenset[str]  # stages carried over, state and refcounts intact
    added: frozenset[str]  # stages built fresh for the new epoch
    retired: frozenset[str]  # old-epoch stages nobody needs anymore
    stages: list["Stage"] = field(repr=False, default_factory=list)


class EpochTransition:
    """Single-use transaction that moves one query to its next plan epoch.

    The three verbs — :meth:`install` (first epoch), :meth:`swap`
    (re-plan a live query), :meth:`retire` (final teardown) — perform
    the structural edits; :meth:`commit` seals the transition and
    records the epoch bookkeeping. A transition that was never committed
    leaves the epoch counters untouched (the structural edits themselves
    are applied eagerly; callers commit in the same expression).
    """

    def __init__(self, dag: "PlanDAG", root_id: int, reason: str = "register") -> None:
        self.dag = dag
        self.root_id = root_id
        self.reason = reason
        self.old_epoch = dag.epoch_of.get(root_id, 0)
        self.new_epoch = self.old_epoch + 1
        self._committed = False
        self._plan: PlanNode | None = None
        self._stages: list["Stage"] = []
        self._closing = False

    # -- verbs --------------------------------------------------------------------

    def install(self, plan: PlanNode, sink: _Sink) -> list["Stage"]:
        """Wire a query's first epoch into the DAG, reusing shared subplans."""
        self._check_open(build=True)
        stages: list["Stage"] = []
        top = self._build(plan, stages)
        self._wire_terminal(top, plan, sink)
        for stage in stages:
            stage.subscribers.add(self.root_id)
        self._plan = plan
        self._stages = stages
        return stages

    def swap(
        self, new_plan: PlanNode, sink: _Sink, old_stages: Iterable["Stage"]
    ) -> EpochSwapResult:
        """Replace a live query's plan, grafting every unchanged stage.

        The new plan is built *before* the old one is unwired, so any
        subplan the two epochs share is found by the fingerprint table
        and reused in place — its operator state, subscriber set, and
        fan-out edges survive the swap untouched.
        """
        self._check_open(build=True)
        old_stages = list(old_stages)
        old_fps = {s.node.fingerprint for s in old_stages}
        new_stages: list["Stage"] = []
        top = self._build(new_plan, new_stages)
        for stage in new_stages:
            stage.subscribers.add(self.root_id)
        new_ids = {id(s) for s in new_stages}
        old_only = [s for s in old_stages if id(s) not in new_ids]
        # Old terminal out first, new terminal in last: a grafted old top
        # (the new plan may extend the old one) must not keep shipping
        # intermediate results to the sink.
        self._unwire_terminal(old_stages, sink)
        self._unsubscribe(old_only)
        retired = self._prune_dead(old_only)
        self._wire_terminal(top, new_plan, sink)
        new_fps = {s.node.fingerprint for s in new_stages}
        self._plan = new_plan
        self._stages = new_stages
        if metrics_enabled():
            get_registry().counter("repro_plan_epoch_swaps_total").inc()
        return EpochSwapResult(
            root_id=self.root_id,
            old_epoch=self.old_epoch,
            new_epoch=self.new_epoch,
            grafted=frozenset(old_fps & new_fps),
            added=frozenset(new_fps - old_fps),
            retired=frozenset(retired),
            stages=new_stages,
        )

    def retire(self, stages: Iterable["Stage"]) -> None:
        """Drop a query entirely: unsubscribe, then prune orphan stages."""
        self._check_open()
        stages = list(stages)
        self._unsubscribe(stages)
        self._prune_terminal_taps()
        self._prune_dead(stages)
        self._closing = True

    def commit(self) -> PlanEpoch | None:
        """Seal the transition: bump the epoch counter, stamp ownership."""
        self._check_open()
        self._committed = True
        dag = self.dag
        journal = current_journal()
        if self._closing:
            if journal is not None:
                journal.append(
                    "epoch-retire",
                    query=self.root_id,
                    epoch=self.old_epoch,
                    reason=self.reason,
                )
            dag.epoch_of.pop(self.root_id, None)
            return None
        if journal is not None:
            if self.old_epoch == 0:
                journal.append(
                    "epoch-install",
                    query=self.root_id,
                    epoch=self.new_epoch,
                    reason=self.reason,
                )
            else:
                # The link matches the flight recorder's epoch-swap pin
                # reason, so this entry clicks through to the capture.
                journal.append(
                    "epoch-swap",
                    query=self.root_id,
                    epoch=self.new_epoch,
                    reason=self.reason,
                    link=f"epoch-swap:e{self.old_epoch}->e{self.new_epoch}",
                )
        epoch = PlanEpoch(
            root_id=self.root_id,
            epoch=self.new_epoch,
            plan=self._plan,
            fingerprints=frozenset(s.node.fingerprint for s in self._stages),
            reason=self.reason,
        )
        dag.epoch_of[self.root_id] = self.new_epoch
        dag.epoch_history.setdefault(self.root_id, []).append(epoch)
        for stage in self._stages:
            stage.epochs[self.root_id] = self.new_epoch
        return epoch

    # -- structural edits (the only mutation site; see RL006) ---------------------

    def _check_open(self, build: bool = False) -> None:
        if self._committed:
            raise PlanError("epoch transition already committed")
        if build and self.dag._flushed:
            # Teardown after a flushed run is fine; growing new stages
            # into a drained network is not.
            raise PlanError("push network already flushed")

    def _wire_terminal(self, top: "Stage | None", plan: PlanNode, sink: _Sink) -> None:
        from .stages import Edge

        terminal = Edge(sink=sink, roots={self.root_id})
        if top is None:  # bare source scan (or provably empty query)
            if isinstance(plan, SourceScan):
                self.dag.taps.setdefault(plan.stream_id, []).append(terminal)
        else:
            top.outputs.append(terminal)

    def _build(self, node: PlanNode, stages: list["Stage"]) -> "Stage | None":
        from .stages import Edge, Stage

        dag = self.dag
        if isinstance(node, (SourceScan, EmptyPlan)):
            return None
        if dag.share:
            existing = dag._by_fingerprint.get(node.fingerprint)
            # Fingerprints are a fast path; actual node equality decides.
            if existing is not None and existing.node == node:
                dag.stats.subplan_hits += 1
                if metrics_enabled():
                    get_registry().counter("repro_plan_subplan_hits_total").inc()
                if existing not in stages:
                    stages.append(existing)
                    for child_stage in self._collect_upstream(existing):
                        if child_stage not in stages:
                            stages.append(child_stage)
                return existing
        if isinstance(node, Compose):
            pairs: tuple[tuple[str | None, PlanNode], ...] = (
                ("left", node.left),
                ("right", node.right),
            )
        else:
            pairs = tuple((None, child) for child in node.children)
        built = [(side, child, self._build(child, stages)) for side, child in pairs]
        op = node.make_operator()
        op.set_execution_mode(dag.columnar)
        stage = Stage(node, op, dag)
        if dag.share:
            dag._by_fingerprint[node.fingerprint] = stage
        dag.order.append(stage)
        stages.append(stage)
        for side, child, child_stage in built:
            if isinstance(child, EmptyPlan):
                continue
            edge = Edge(stage=stage, side=side)
            if isinstance(child, SourceScan):
                dag.taps.setdefault(child.stream_id, []).append(edge)
            else:
                child_stage.outputs.append(edge)
        return stage

    def _collect_upstream(self, stage: "Stage") -> list["Stage"]:
        """Every stage feeding into ``stage`` (transitively)."""
        want = {id(stage)}
        out: list["Stage"] = []
        # dag.order is topological, so a reverse sweep finds producers.
        for candidate in reversed(self.dag.order):
            if any(
                edge.stage is not None and id(edge.stage) in want
                for edge in candidate.outputs
            ):
                want.add(id(candidate))
                out.append(candidate)
        return out

    def _unsubscribe(self, stages: Iterable["Stage"]) -> None:
        root_id = self.root_id
        for stage in stages:
            stage.subscribers.discard(root_id)
            stage.epochs.pop(root_id, None)
            stage.outputs = [
                edge
                for edge in stage.outputs
                if edge.stage is not None or (edge.roots.discard(root_id) or edge.roots)
            ]

    def _unwire_terminal(self, old_stages: Iterable["Stage"], sink: _Sink) -> None:
        """Detach the old epoch's terminal edge (called before re-wiring)."""
        root_id = self.root_id
        for stage in old_stages:
            stale = [
                e
                for e in stage.outputs
                if e.stage is None and e.sink is sink and root_id in e.roots
            ]
            for edge in stale:
                edge.roots.discard(root_id)
                if not edge.roots:
                    stage.outputs.remove(edge)
        self._prune_terminal_taps(sink=sink)

    def _prune_terminal_taps(self, sink: _Sink | None = None) -> None:
        root_id = self.root_id
        for stream_id, edges in list(self.dag.taps.items()):
            kept = []
            for edge in edges:
                if edge.stage is None and (sink is None or edge.sink is sink):
                    edge.roots.discard(root_id)
                    if not edge.roots:
                        continue
                kept.append(edge)
            if kept:
                self.dag.taps[stream_id] = kept
            else:
                del self.dag.taps[stream_id]

    def _prune_dead(self, candidates: Iterable["Stage"]) -> set[str]:
        """Remove candidate stages nobody subscribes to; returns their prints."""
        dag = self.dag
        dead = {id(s): s for s in candidates if not s.subscribers}
        if not dead:
            return set()
        retired = {s.node.fingerprint for s in dead.values()}
        dag.order = [s for s in dag.order if id(s) not in dead]
        for fp, stage in list(dag._by_fingerprint.items()):
            if id(stage) in dead:
                del dag._by_fingerprint[fp]
        for stage in dag.order:
            stage.outputs = [
                e for e in stage.outputs if e.stage is None or id(e.stage) not in dead
            ]
        for stream_id, edges in list(dag.taps.items()):
            kept = [e for e in edges if e.stage is None or id(e.stage) not in dead]
            if kept:
                dag.taps[stream_id] = kept
            else:
                del dag.taps[stream_id]
        return retired
