"""Logical AST → canonical physical plan.

Canonicalization makes structurally different but equivalent query trees
produce *equal* plan nodes (hence equal fingerprints), which is what
subplan sharing keys on:

* commutative compositions (γ in ``+ * sup inf``) order their children
  deterministically by fingerprint;
* adjacent restrictions of the same kind fold into one (mirroring the
  optimizer's ``merge-spatial``/``merge-temporal`` rules, plus value
  ranges by interval intersection);
* spatial-restriction regions are resolved into the child's CRS when the
  source CRSs are known (the planner's safety net, applied once at plan
  time instead of per lowering);
* value-map parameters are materialized against their declared defaults
  so ``reflectance()`` and ``reflectance(bits=10)`` hash identically;
* each composition's timestamp-matching policy is resolved from the
  source metadata (or a supplied default) and recorded in the plan.
"""

from __future__ import annotations

from typing import Mapping

from ..core.timeset import intersect_timesets
from ..errors import PlanError
from ..geo.crs import CRS
from ..geo.region import intersect_regions
from ..query import ast as q
from ..query.calibration import CalibrationProfile
from ..query.cost import Estimate, NodeCost, StreamProfile
from . import nodes as p
from .nodes import COMMUTATIVE_GAMMAS
from .ops import VALUE_MAP_DEFAULTS

__all__ = ["canonicalize", "estimate_plan"]


def _plan_crs(plan: p.PlanNode, crs_of: Mapping[str, CRS]) -> CRS | None:
    """Output CRS of a plan, when derivable from the source CRS map."""
    if isinstance(plan, p.SourceScan):
        return crs_of.get(plan.stream_id)
    if isinstance(plan, p.Reproject):
        return plan.dst_crs
    if isinstance(plan, p.Compose):
        return _plan_crs(plan.left, crs_of)
    children = plan.children
    if children:
        return _plan_crs(children[0], crs_of)
    return None


def _leaf_policy(
    plan: p.PlanNode, policy_of: Mapping[str, str], default_policy: str
) -> str:
    """Timestamp policy of the leftmost source below ``plan``.

    Matches what the pull executor historically derived from stream
    metadata: operators preserve the policy, so the composed stream's
    policy is its leftmost source's.
    """
    cur = plan
    while True:
        if isinstance(cur, p.SourceScan):
            return policy_of.get(cur.stream_id, default_policy)
        children = cur.children
        if not children:
            return default_policy
        cur = children[0]


def canonicalize(
    node: q.QueryNode,
    *,
    crs_of: Mapping[str, CRS] | None = None,
    policy_of: Mapping[str, str] | None = None,
    default_policy: str = "sector",
) -> p.PlanNode:
    """Lower a logical query tree to its canonical physical plan."""
    crs_map = dict(crs_of or {})
    policy_map = dict(policy_of or {})

    def visit(n: q.QueryNode) -> p.PlanNode:
        if isinstance(n, q.StreamRef):
            return p.SourceScan(n.stream_id)
        if isinstance(n, q.Empty):
            return p.EmptyPlan(n.reason)
        if isinstance(n, q.Compose):
            left = visit(n.left)
            right = visit(n.right)
            # Policy from the original left subtree, mirroring pull-path
            # semantics, *before* any commutative reordering.
            policy = _leaf_policy(left, policy_map, default_policy)
            if n.gamma in COMMUTATIVE_GAMMAS and right.fingerprint < left.fingerprint:
                left, right = right, left
            return p.Compose(left, right, n.gamma, policy)
        if isinstance(n, q.SpatialRestrict):
            child = visit(n.child)
            region = n.region
            child_crs = _plan_crs(child, crs_map)
            if child_crs is not None and region.crs != child_crs:
                # Safety net: the optimizer normally maps regions across
                # CRSs; do it here too so unoptimized queries still run.
                region = region.transformed(child_crs)
            if isinstance(child, p.SpatialRestrict) and child.region.crs == region.crs:
                inner = child
                if region is inner.region or region == inner.region:
                    return inner  # identical restriction twice
                region = intersect_regions(region, inner.region)
                child = inner.child
            return p.SpatialRestrict(child, region)
        if isinstance(n, q.TemporalRestrict):
            child = visit(n.child)
            timeset = n.timeset
            if isinstance(child, p.TemporalRestrict) and child.on_sector == n.on_sector:
                inner = child
                if timeset == inner.timeset:
                    return inner
                timeset = intersect_timesets(timeset, inner.timeset)
                child = inner.child
            return p.TemporalRestrict(child, timeset, n.on_sector)
        if isinstance(n, q.ValueRestrict):
            child = visit(n.child)
            lo, hi = n.lo, n.hi
            if isinstance(child, p.ValueRestrict):
                inner = child
                lo = inner.lo if lo is None else (lo if inner.lo is None else max(lo, inner.lo))
                hi = inner.hi if hi is None else (hi if inner.hi is None else min(hi, inner.hi))
                child = inner.child
            return p.ValueRestrict(child, lo, hi)
        if isinstance(n, q.ValueMap):
            child = visit(n.child)
            defaults = VALUE_MAP_DEFAULTS.get(n.kind)
            if defaults is None:
                params = tuple(sorted(n.params))
            else:
                params = tuple(
                    (name, float(n.param(name, default))) for name, default in defaults
                )
            return p.ValueMap(child, n.kind, params)
        if isinstance(n, q.Stretch):
            return p.Stretch(visit(n.child), n.kind)
        if isinstance(n, q.Magnify):
            return p.Magnify(visit(n.child), n.k)
        if isinstance(n, q.Coarsen):
            return p.Coarsen(visit(n.child), n.k)
        if isinstance(n, q.Rotate):
            return p.Rotate(visit(n.child), n.angle_deg)
        if isinstance(n, q.Reproject):
            return p.Reproject(visit(n.child), n.dst_crs, n.method)
        if isinstance(n, q.TemporalAgg):
            return p.TemporalAgg(visit(n.child), n.func, n.window, n.mode)
        if isinstance(n, q.RegionAgg):
            return p.RegionAgg(visit(n.child), tuple(n.regions), n.func)
        raise PlanError(f"canonicalizer does not know node type {type(n).__name__}")

    return visit(node)


def estimate_plan(
    plan: p.PlanNode,
    profiles: Mapping[str, StreamProfile],
    calibration: CalibrationProfile | None = None,
) -> tuple[Estimate, list[NodeCost]]:
    """Cost-estimate a canonical plan (delegates to the logical model).

    Estimates are defined over canonicalized plans so that two queries
    that will share execution also share one cost figure. A fitted
    :class:`~repro.query.calibration.CalibrationProfile` prices the plan
    in measured wall seconds (``Estimate.seconds``).
    """
    from ..query.cost import estimate_query

    return estimate_query(plan.to_ast(), profiles, calibration=calibration)
