"""Operator factories shared by every lowering of the plan IR.

These used to live as private helpers inside ``query/planner.py`` with
the push compiler reaching across the package boundary for them; they are
now the one public construction point for parameterized operators.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..core.valueset import NDVI_VALUES, ValueSet
from ..errors import PlanError
from ..operators.base import Operator
from ..operators.composition import StreamComposition, normalized_difference
from ..operators.value_transform import (
    CountsToReflectance,
    PointwiseTransform,
    Rescale,
)

__all__ = ["build_value_map", "build_composition", "VALUE_MAP_DEFAULTS"]

# Canonical parameter lists (name, default) per value-map kind. The
# canonicalizer materializes every parameter in this order so that
# e.g. reflectance() and reflectance(bits=10) hash identically.
VALUE_MAP_DEFAULTS: dict[str, tuple[tuple[str, float], ...]] = {
    "rescale": (("gain", 1.0), ("offset", 0.0)),
    "reflectance": (("bits", 10.0),),
    "gamma": (("exponent", 1.0),),
    "negate": (),
    "absolute": (),
}


def build_value_map(
    kind: str,
    params: Mapping[str, float] | Iterable[tuple[str, float]] = (),
) -> Operator:
    """Instantiate the operator for a named pointwise value transform."""
    table = dict(params)
    if kind == "rescale":
        return Rescale(table.get("gain", 1.0), table.get("offset", 0.0))
    if kind == "reflectance":
        return CountsToReflectance(bits=int(table.get("bits", 10.0)))
    if kind == "gamma":
        exponent = table.get("exponent", 1.0)
        return PointwiseTransform(
            lambda v: np.power(np.clip(v.astype(np.float64), 0.0, None), exponent),
            label=f"gamma({exponent:g})",
        )
    if kind == "negate":
        return PointwiseTransform(lambda v: -v.astype(np.float64), label="negate")
    if kind == "absolute":
        return PointwiseTransform(lambda v: np.abs(v.astype(np.float64)), label="abs")
    raise PlanError(f"unknown value transform kind {kind!r}")


def build_composition(gamma: str, timestamp_policy: str = "sector") -> StreamComposition:
    """Instantiate the binary composition operator for one γ kernel.

    The macro kernels ``ndvi``/``evi2`` expand to their band-math
    definitions with dedicated output value sets.
    """
    if gamma == "ndvi":
        return StreamComposition(
            normalized_difference,
            timestamp_policy=timestamp_policy,
            band="ndvi",
            output_value_set=NDVI_VALUES,
        )
    if gamma == "evi2":

        def kernel(n: np.ndarray, r: np.ndarray) -> np.ndarray:
            denom = n + 2.4 * r + 1.0
            with np.errstate(divide="ignore", invalid="ignore"):
                out = 2.5 * (n - r) / denom
            return np.where(np.isfinite(out), out, np.nan)

        return StreamComposition(
            kernel,
            timestamp_policy=timestamp_policy,
            band="evi2",
            output_value_set=ValueSet("evi2", np.float32, lo=-2.5, hi=2.5),
        )
    return StreamComposition(gamma, timestamp_policy=timestamp_policy)
