"""Pull-side lowering: canonical plan → lazy GeoStream pipeline.

The pull executor re-opens sources per query, so no stages are shared;
what it shares with the push executor is the *plan* and the single
operator-construction table on the plan nodes.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..core.stream import GeoStream
from ..engine.pipeline import compose_streams
from ..operators.base import BinaryOperator, Operator
from . import nodes as p

__all__ = ["plan_to_stream", "empty_stream"]

_OpT = TypeVar("_OpT", bound="Operator | BinaryOperator")


def empty_stream(reason: str = "") -> GeoStream:
    """A stream that never produces chunks (optimizer-proven empty query)."""
    from ..core.stream import Organization, StreamMetadata
    from ..core.valueset import FLOAT32
    from ..geo.crs import LATLON

    metadata = StreamMetadata(
        stream_id=f"(empty:{reason})" if reason else "(empty)",
        band="",
        crs=LATLON,
        organization=Organization.IMAGE_BY_IMAGE,
        value_set=FLOAT32,
        description=f"provably empty: {reason}" if reason else "provably empty",
    )
    return GeoStream(metadata, lambda: iter(()))


def _stamp(op: _OpT, plan: p.PlanNode) -> _OpT:
    """Tag a fresh operator with its plan node's identity.

    The pull executor has no shared stages, but stamping the subplan
    fingerprint lets :mod:`repro.obs.stats` account pull-path work in the
    same per-subplan ledgers the push DAG uses.
    """
    op.plan_fingerprint = plan.fingerprint
    op.plan_label = plan.describe()
    op.plan_kind = type(plan).__name__
    return op


def plan_to_stream(
    plan: p.PlanNode,
    resolve: Callable[[str], GeoStream],
    columnar: bool | None = None,
) -> GeoStream:
    """Build the executable GeoStream for a canonical plan.

    Fresh operator instances are created per call so that concurrently
    planned queries never share mutable state. ``columnar`` selects the
    execution mode for every lowered operator (None: process default).
    """
    if isinstance(plan, p.SourceScan):
        return resolve(plan.stream_id)
    if isinstance(plan, p.EmptyPlan):
        return empty_stream(plan.reason)
    if isinstance(plan, p.Compose):
        left = plan_to_stream(plan.left, resolve, columnar=columnar)
        right = plan_to_stream(plan.right, resolve, columnar=columnar)
        return compose_streams(
            left, right, _stamp(plan.make_operator(), plan), columnar=columnar
        )
    child = plan_to_stream(plan.children[0], resolve, columnar=columnar)
    op = _stamp(plan.make_operator(), plan)
    assert isinstance(op, Operator), f"unary plan node built a binary operator: {plan.describe()}"
    return child.pipe(op, columnar=columnar)
