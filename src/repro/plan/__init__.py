"""Physical-plan IR shared by the pull and push execution paths.

Layering: the query layer parses and optimizes *logical* trees
(``repro.query.ast``); this package lowers them to canonical physical
plans (:func:`canonicalize`), which either execution path then turns into
running machinery — pull via :func:`plan_to_stream` (chained lazy
generators) or push via :class:`PlanDAG` (a shared operator DAG the DSMS
feeds chunk-by-chunk, with subplan-level sharing across queries).
"""

from .canonical import canonicalize, estimate_plan
from .lower import empty_stream, plan_to_stream
from .nodes import (
    COMMUTATIVE_GAMMAS,
    Coarsen,
    Compose,
    EmptyPlan,
    Magnify,
    PlanNode,
    RegionAgg,
    Reproject,
    Rotate,
    SourceScan,
    SpatialRestrict,
    Stretch,
    TemporalAgg,
    TemporalRestrict,
    ValueMap,
    ValueRestrict,
    source_ids,
    walk,
)
from .epoch import EpochSwapResult, EpochTransition, PlanEpoch
from .ops import VALUE_MAP_DEFAULTS, build_composition, build_value_map
from .stages import PlanDAG, PlanStats, Stage

__all__ = [
    "PlanNode",
    "SourceScan",
    "EmptyPlan",
    "SpatialRestrict",
    "TemporalRestrict",
    "ValueRestrict",
    "ValueMap",
    "Stretch",
    "Magnify",
    "Coarsen",
    "Rotate",
    "Reproject",
    "Compose",
    "TemporalAgg",
    "RegionAgg",
    "walk",
    "source_ids",
    "COMMUTATIVE_GAMMAS",
    "canonicalize",
    "estimate_plan",
    "plan_to_stream",
    "empty_stream",
    "build_value_map",
    "build_composition",
    "VALUE_MAP_DEFAULTS",
    "PlanDAG",
    "PlanStats",
    "Stage",
    "EpochTransition",
    "EpochSwapResult",
    "PlanEpoch",
]
