"""Physical-plan IR: the algebra as executable plan nodes.

Each :class:`PlanNode` mirrors one algebra operator and owns the *single*
place where its physical operator is constructed (``make_operator``),
replacing the duplicated construction tables the pull planner and push
compiler used to carry. Plan nodes are frozen dataclasses with structural
equality, and each node exposes a cached structural ``fingerprint`` so
that equal subplans — after canonicalization — hash equal. That
fingerprint is what lets the DSMS share *subplans* between different
registered queries instead of only deduplicating byte-identical ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterator, Tuple

from ..core.timeset import TimeSet
from ..errors import PlanError
from ..geo.crs import CRS
from ..geo.region import BoundingBox, Region
from ..query import ast as q

if TYPE_CHECKING:
    from ..operators.base import BinaryOperator, Operator

__all__ = [
    "PlanNode",
    "SourceScan",
    "EmptyPlan",
    "SpatialRestrict",
    "TemporalRestrict",
    "ValueRestrict",
    "ValueMap",
    "Stretch",
    "Magnify",
    "Coarsen",
    "Rotate",
    "Reproject",
    "Compose",
    "TemporalAgg",
    "RegionAgg",
    "walk",
    "source_ids",
]

# Compositions that commute pointwise; canonicalization may reorder their
# children. 'mosaic' is excluded: first-wins semantics are order-sensitive.
COMMUTATIVE_GAMMAS = frozenset({"+", "*", "sup", "inf"})


def _token(value: object) -> str:
    """Stable structural token for one plan-node field value.

    Region objects other than bounding boxes compare by identity, so they
    are fingerprinted by identity too: two plans share a stage for them
    only when they hold the *same* region object. That forgoes some
    sharing but can never merge plans that are not equal.
    """
    if isinstance(value, PlanNode):
        return value.fingerprint
    if value is None or isinstance(value, (str, int, bool)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, tuple):
        return "(" + ",".join(_token(v) for v in value) + ")"
    if isinstance(value, CRS):
        # spec_of gives a content token for the standard projections; a
        # bespoke CRS falls back to identity (sound, just never shared).
        try:
            from ..geo.crs import spec_of

            return f"crs:{spec_of(value)}"
        except Exception:
            return f"crs:{type(value).__name__}@{id(value):x}"
    if isinstance(value, BoundingBox):
        return (
            f"bbox({value.xmin!r},{value.ymin!r},{value.xmax!r},"
            f"{value.ymax!r},{_token(value.crs)})"
        )
    if isinstance(value, Region):
        return f"region:{type(value).__name__}@{id(value):x}"
    if isinstance(value, TimeSet):
        text = repr(value)
        if " at 0x" in text:  # default object repr: not content-stable
            return f"time:{type(value).__name__}@{id(value):x}"
        return f"time:{text}"
    return f"{type(value).__name__}@{id(value):x}"


@dataclass(frozen=True)
class PlanNode:
    """Base class for physical-plan nodes (frozen, structurally equal)."""

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        return tuple(
            getattr(self, f.name)
            for f in fields(self)
            if isinstance(getattr(self, f.name), PlanNode)
        )

    @property
    def fingerprint(self) -> str:
        """Structural hash: equal (canonical) subplans get equal digests."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = ";".join(
                [type(self).__name__]
                + [f"{f.name}={_token(getattr(self, f.name))}" for f in fields(self)]
            )
            cached = hashlib.blake2b(payload.encode(), digest_size=10).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def make_operator(self) -> Operator | BinaryOperator:
        """Fresh physical operator for this node (leaves have none)."""
        raise PlanError(f"{type(self).__name__} has no physical operator")

    def to_ast(self) -> q.QueryNode:
        """Equivalent logical AST node (for cost estimation, printing)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0, *, fingerprints: bool = False) -> str:
        pad = "  " * indent
        line = f"{pad}{self.describe()}"
        if fingerprints:
            line += f"  #{self.fingerprint}"
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1, fingerprints=fingerprints))
        return "\n".join(lines)


@dataclass(frozen=True)
class SourceScan(PlanNode):
    """Scan of one registered source stream (leaf)."""

    stream_id: str

    def to_ast(self) -> q.QueryNode:
        return q.StreamRef(self.stream_id)

    def describe(self) -> str:
        return f"Scan({self.stream_id})"


@dataclass(frozen=True)
class EmptyPlan(PlanNode):
    """A provably-empty stream (leaf); produces nothing, consumes nothing."""

    reason: str = ""

    def to_ast(self) -> q.QueryNode:
        return q.Empty(self.reason)

    def describe(self) -> str:
        return f"Empty({self.reason})" if self.reason else "Empty"


@dataclass(frozen=True)
class SpatialRestrict(PlanNode):
    """G|R with the region already resolved into the child's CRS."""

    child: PlanNode
    region: Region

    def make_operator(self) -> Operator:
        from ..operators.restriction import SpatialRestriction

        return SpatialRestriction(self.region)

    def to_ast(self) -> q.QueryNode:
        return q.SpatialRestrict(self.child.to_ast(), self.region)

    def describe(self) -> str:
        b = self.region.bounding_box
        return (
            f"SpatialRestrict({type(self.region).__name__} "
            f"[{b.xmin:g},{b.ymin:g}..{b.xmax:g},{b.ymax:g}] @{self.region.crs.name})"
        )


@dataclass(frozen=True)
class TemporalRestrict(PlanNode):
    """G|T — keep points whose timestamp is in T."""

    child: PlanNode
    timeset: TimeSet
    on_sector: bool = False

    def make_operator(self) -> Operator:
        from ..operators.restriction import TemporalRestriction

        return TemporalRestriction(self.timeset, on_sector=self.on_sector)

    def to_ast(self) -> q.QueryNode:
        return q.TemporalRestrict(self.child.to_ast(), self.timeset, self.on_sector)

    def describe(self) -> str:
        kind = "sector" if self.on_sector else "time"
        return f"TemporalRestrict({kind}: {self.timeset!r})"


@dataclass(frozen=True)
class ValueRestrict(PlanNode):
    """G|V — keep points whose value lies in [lo, hi]."""

    child: PlanNode
    lo: float | None = None
    hi: float | None = None

    def make_operator(self) -> Operator:
        from ..operators.restriction import ValueRestriction

        return ValueRestriction(lo=self.lo, hi=self.hi)

    def to_ast(self) -> q.QueryNode:
        return q.ValueRestrict(self.child.to_ast(), self.lo, self.hi)

    def describe(self) -> str:
        return f"ValueRestrict([{self.lo}, {self.hi}])"


@dataclass(frozen=True)
class ValueMap(PlanNode):
    """Pointwise value transform with normalized (name, value) params."""

    child: PlanNode
    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def make_operator(self) -> Operator:
        from .ops import build_value_map

        return build_value_map(self.kind, self.params)

    def to_ast(self) -> q.QueryNode:
        return q.ValueMap(self.child.to_ast(), self.kind, self.params)

    def describe(self) -> str:
        args = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return f"ValueMap({self.kind}{', ' if args else ''}{args})"


@dataclass(frozen=True)
class Stretch(PlanNode):
    """Frame-buffered contrast scaling."""

    child: PlanNode
    kind: str = "linear"

    def make_operator(self) -> Operator:
        from ..operators.value_transform import FrameStretch

        return FrameStretch(self.kind)

    def to_ast(self) -> q.QueryNode:
        return q.Stretch(self.child.to_ast(), self.kind)

    def describe(self) -> str:
        return f"Stretch({self.kind})"


@dataclass(frozen=True)
class Magnify(PlanNode):
    child: PlanNode
    k: int = 2

    def make_operator(self) -> Operator:
        from ..operators.spatial_transform import Magnify as MagnifyOp

        return MagnifyOp(self.k)

    def to_ast(self) -> q.QueryNode:
        return q.Magnify(self.child.to_ast(), self.k)

    def describe(self) -> str:
        return f"Magnify(k={self.k})"


@dataclass(frozen=True)
class Coarsen(PlanNode):
    child: PlanNode
    k: int = 2

    def make_operator(self) -> Operator:
        from ..operators.spatial_transform import Coarsen as CoarsenOp

        return CoarsenOp(self.k)

    def to_ast(self) -> q.QueryNode:
        return q.Coarsen(self.child.to_ast(), self.k)

    def describe(self) -> str:
        return f"Coarsen(k={self.k})"


@dataclass(frozen=True)
class Rotate(PlanNode):
    child: PlanNode
    angle_deg: float = 0.0

    def make_operator(self) -> Operator:
        from ..operators.spatial_transform import Rotate as RotateOp

        return RotateOp(self.angle_deg)

    def to_ast(self) -> q.QueryNode:
        return q.Rotate(self.child.to_ast(), self.angle_deg)

    def describe(self) -> str:
        return f"Rotate({self.angle_deg:g} deg)"


@dataclass(frozen=True)
class Reproject(PlanNode):
    child: PlanNode
    dst_crs: CRS
    method: str = "bilinear"

    def make_operator(self) -> Operator:
        from ..operators.reprojection import Reproject as ReprojectOp

        return ReprojectOp(self.dst_crs, method=self.method)

    def to_ast(self) -> q.QueryNode:
        return q.Reproject(self.child.to_ast(), self.dst_crs, self.method)

    def describe(self) -> str:
        return f"Reproject(to={self.dst_crs.name}, {self.method})"


@dataclass(frozen=True)
class Compose(PlanNode):
    """G1 γ G2 with the timestamp-matching policy resolved into the plan.

    The policy is part of the node (and hence of the fingerprint): two
    compositions only share a physical stage when they also agree on how
    chunk timestamps are matched across sides.
    """

    left: PlanNode
    right: PlanNode
    gamma: str = "+"
    timestamp_policy: str = "sector"

    def make_operator(self) -> BinaryOperator:
        from .ops import build_composition

        return build_composition(self.gamma, self.timestamp_policy)

    def to_ast(self) -> q.QueryNode:
        return q.Compose(self.left.to_ast(), self.right.to_ast(), self.gamma)

    def describe(self) -> str:
        return f"Compose({self.gamma}, match={self.timestamp_policy})"


@dataclass(frozen=True)
class TemporalAgg(PlanNode):
    child: PlanNode
    func: str = "mean"
    window: int = 2
    mode: str = "sliding"

    def make_operator(self) -> Operator:
        from ..operators.aggregate import TemporalAggregate as TemporalAggregateOp

        return TemporalAggregateOp(self.window, self.func, self.mode)

    def to_ast(self) -> q.QueryNode:
        return q.TemporalAgg(self.child.to_ast(), self.func, self.window, self.mode)

    def describe(self) -> str:
        return f"TemporalAgg({self.func}, window={self.window}, {self.mode})"


@dataclass(frozen=True)
class RegionAgg(PlanNode):
    child: PlanNode
    regions: tuple[tuple[str, Region], ...] = ()
    func: str = "mean"

    def make_operator(self) -> Operator:
        from ..operators.aggregate import RegionAggregate as RegionAggregateOp

        return RegionAggregateOp(dict(self.regions), self.func)

    def to_ast(self) -> q.QueryNode:
        return q.RegionAgg(self.child.to_ast(), self.regions, self.func)

    def describe(self) -> str:
        names = ", ".join(name for name, _ in self.regions)
        return f"RegionAgg({self.func}: {names})"


def walk(node: PlanNode) -> Iterator[PlanNode]:
    """Depth-first pre-order traversal."""
    yield node
    for child in node.children:
        yield from walk(child)


def source_ids(node: PlanNode) -> set[str]:
    """The source streams a plan scans."""
    return {n.stream_id for n in walk(node) if isinstance(n, SourceScan)}
