"""The shared operator DAG: one physical stage per canonical subplan.

A :class:`PlanDAG` merges every registered query's canonical plan into a
single push-execution graph. Stages are keyed by subplan fingerprint, so
two different queries that share an operator prefix (say, everyone
computing ``reflectance(goes.vis)`` before their own restriction) run the
common stages *once per chunk* and fan the results out — the paper's
"single scan serves all queries" promise extended below the scan.

Refcounting is by subscriber: each stage remembers the root (query) ids
subscribed to it, chunks are only propagated along edges some *active*
subscriber is downstream of, and removing a query prunes exactly the
stages nobody else needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.chunk import Chunk
from ..core.columnar import resolve_columnar
from ..core.provenance import Provenance
from ..engine.pipeline import chunk_time
from ..errors import PlanError
from ..faults.recovery import current_recovery
from ..obs.stats import StageStats, StatsCollector, current_collector
from ..obs.trace import FrameTracer, TraceContext, current_frame_tracer
from ..obs.tracing import Span, Tracer, current_tracer
from ..operators.base import BinaryOperator, Operator
from .nodes import PlanNode

if TYPE_CHECKING:  # pragma: no cover - typing only (circular with .epoch)
    from .epoch import EpochSwapResult, PlanEpoch

__all__ = ["PlanDAG", "Stage", "PlanStats"]

_Sink = Callable[[Chunk], None]


@dataclass
class PlanStats:
    """How much work subplan sharing saved."""

    subplan_hits: int = 0  # registrations that reused an existing stage
    stage_executions: int = 0  # operator steps actually run
    chunks_saved: int = 0  # steps avoided because a stage is shared


class Edge:
    """One dataflow edge: from a producer to a stage input or a terminal sink.

    Terminal edges carry the root ids they deliver for; stage edges defer
    to the target stage's subscriber set.
    """

    __slots__ = ("stage", "side", "sink", "roots")

    def __init__(
        self,
        stage: "Stage | None" = None,
        side: str | None = None,
        sink: _Sink | None = None,
        roots: set[int] | None = None,
    ) -> None:
        self.stage = stage
        self.side = side
        self.sink = sink
        self.roots: set[int] = roots if roots is not None else set()

    def accepts(self, active: frozenset[int]) -> bool:
        if self.stage is not None:
            return bool(active & self.stage.subscribers)
        return bool(active & self.roots)

    def deliver(self, chunk: Chunk) -> None:
        if self.stage is not None:
            self.stage.feed(chunk, self.side)
        else:
            self.sink(chunk)


class Stage:
    """One physical operator, shared by every query whose plan contains it."""

    __slots__ = (
        "node",
        "op",
        "outputs",
        "subscribers",
        "epochs",
        "_dag",
        "_span",
        "_tracer",
        "_stats",
        "_collector",
        "_prov",
        "_ftracer",
        "_tctx",
    )

    def __init__(self, node: PlanNode, op: Operator | BinaryOperator, dag: "PlanDAG") -> None:
        self.node = node
        self.op = op
        self.outputs: list[Edge] = []
        self.subscribers: set[int] = set()
        # root id -> the plan epoch of that root this stage currently
        # serves; stamped by EpochTransition.commit. check_dag audits
        # that this never drifts from ``subscribers``.
        self.epochs: dict[int, int] = {}
        self._dag = dag
        self._span: Span | None = None
        self._tracer: Tracer | None = None
        self._stats: StageStats | None = None
        self._collector: StatsCollector | None = None
        # Cumulative merged provenance of everything this stage has eaten;
        # sound for buffering operators (outputs tagged with at-least the
        # scans that could have contributed).
        self._prov: Provenance | None = None
        self._ftracer: FrameTracer | None = None
        # Trace contexts consumed since the last emission (buffering
        # operators hold inputs; their eventual outputs merge these).
        self._tctx: list[TraceContext] = []

    def _ensure_span(self, tracer: Tracer) -> Span:
        """Lazily open this stage's span, parented on a consumer stage.

        Spans are per *physical* stage: a stage serving three queries has
        one span. In push execution data flows producer -> consumer, so
        the span tree mirrors the plan with sinks at the root.
        """
        if self._span is None or self._tracer is not tracer:
            parent = None
            for edge in self.outputs:
                if edge.stage is not None:
                    parent = edge.stage._ensure_span(tracer)
                    break
            self._span = tracer.begin_operator(
                self.op,
                parent=parent,
                direction="consumer",
                path="push",
                shared=len(self.subscribers) > 1,
            )
            self._tracer = tracer
        return self._span

    def _step(self, chunk: Chunk, side: str | None) -> list[Chunk]:
        """One operator step; quarantines poison chunks under recovery."""
        ctx = current_recovery()
        if ctx is not None:
            return ctx.guard(self.op, chunk, side)
        return list(
            self.op.process_side(side, chunk) if side is not None else self.op.process(chunk)
        )

    def _stats_entry(self, collector: StatsCollector) -> StageStats:
        if self._stats is None or self._collector is not collector:
            self._stats = collector.stage(
                self.node.fingerprint,
                label=self.node.describe(),
                kind=type(self.node).__name__,
            )
            self._collector = collector
        return self._stats

    def _tag_outputs(self, chunk: Chunk | None, outs: list[Chunk]) -> list[Chunk]:
        """Merge input provenance and stamp outputs with this stage's mark."""
        if chunk is not None and chunk.provenance is not None:
            self._prov = (
                chunk.provenance
                if self._prov is None
                else self._prov.merge(chunk.provenance)
            )
        if self._prov is None or not outs:
            return outs
        tag = self._prov.with_stage(self.node.fingerprint)
        return [dc_replace(c, provenance=tag) for c in outs]

    def feed(self, chunk: Chunk, side: str | None = None) -> None:
        dag = self._dag
        dag.stats.stage_executions += 1
        active = dag._active
        if active is not None and len(self.subscribers) > 1:
            overlap = len(active & self.subscribers)
            if overlap > 1:
                # This one execution stands in for `overlap` per-query ones.
                dag.stats.chunks_saved += overlap - 1
        tracer = current_tracer()
        collector = current_collector()
        ftracer = current_frame_tracer()
        # Untraced chunks stay on the zero-cost path even while a frame
        # tracer is installed: sampling happened at the source, and a
        # chunk without a context must never trigger perf_counter.
        frame_traced = ftracer is not None and chunk.trace is not None
        if tracer is None and collector is None and not frame_traced:
            for out in self._step(chunk, side):
                self._emit(out)
            return
        t0 = perf_counter()
        materialized = self._step(chunk, side)
        t1 = perf_counter()
        dt = t1 - t0
        points_out = sum(c.n_points for c in materialized)
        if tracer is not None:
            span = self._ensure_span(tracer)
            span.record(
                points_in=chunk.n_points,
                points_out=points_out,
                chunks_out=len(materialized),
                wall_s=dt,
                stream_t=chunk_time(chunk),
            )
            tracer.observe_operator(self.op.name, dt)
        if collector is not None:
            self._stats_entry(collector).observe(
                points_in=chunk.n_points,
                points_out=points_out,
                bytes_in=chunk.nbytes,
                bytes_out=sum(c.nbytes for c in materialized),
                chunks_out=len(materialized),
                wall_s=dt,
            )
            if collector.provenance:
                materialized = self._tag_outputs(chunk, materialized)
        if frame_traced:
            materialized = self._frame_hop(ftracer, chunk.trace, materialized, t0, t1, chunk.n_points, points_out)
        for out in materialized:
            self._emit(out)

    def _frame_hop(
        self,
        ftracer: FrameTracer,
        ctx: TraceContext,
        materialized: list[Chunk],
        t0: float,
        t1: float,
        points_in: int,
        points_out: int,
    ) -> list[Chunk]:
        """Record one frame-trace hop at this stage and re-stamp outputs.

        The hop key is the subplan fingerprint — the same key as this
        stage's ``StageStats`` entry, so a waterfall bar links straight
        to its aggregate exemplar.
        """
        fp = self.node.fingerprint
        ftracer.record_hop(
            ctx,
            key=fp,
            label=self.node.describe(),
            kind="stage",
            t0=t0,
            t1=t1,
            points_in=points_in,
            points_out=points_out,
            chunks_out=len(materialized),
        )
        if self._ftracer is not ftracer:
            self._ftracer = ftracer
            self._tctx = []
        if not materialized:
            self._tctx.append(ctx)
            return materialized
        ctxs = self._tctx + [ctx] if self._tctx else [ctx]
        out_ctx = ftracer.output_ctx(ctxs, fp)
        self._tctx = []
        return [dc_replace(c, trace=out_ctx) for c in materialized]

    def _emit(self, chunk: Chunk) -> None:
        active = self._dag._active
        for edge in self.outputs:
            if active is None or edge.accepts(active):
                edge.deliver(chunk)

    def _drain(self) -> list[Chunk]:
        ctx = current_recovery()
        if ctx is not None:
            return ctx.guard_flush(self.op)
        return list(self.op.flush())

    def flush(self) -> None:
        tracer = current_tracer()
        collector = current_collector()
        ftracer = current_frame_tracer()
        frame_traced = (
            ftracer is not None and self._ftracer is ftracer and bool(self._tctx)
        )
        if tracer is None and collector is None and not frame_traced:
            for out in self._drain():
                self._emit(out)
            return
        t0 = perf_counter()
        materialized = self._drain()
        t1 = perf_counter()
        dt = t1 - t0
        points_out = sum(c.n_points for c in materialized)
        if tracer is not None:
            span = self._ensure_span(tracer)
            span.record(
                points_in=0,
                points_out=points_out,
                chunks_out=len(materialized),
                wall_s=dt,
                chunks_in=0,
            )
            span.finish()
        if collector is not None:
            self._stats_entry(collector).observe(
                points_in=0,
                points_out=points_out,
                bytes_in=0,
                bytes_out=sum(c.nbytes for c in materialized),
                chunks_out=len(materialized),
                wall_s=dt,
                chunks_in=0,
            )
            if collector.provenance:
                materialized = self._tag_outputs(None, materialized)
        if frame_traced:
            materialized = self._frame_hop(
                ftracer, self._tctx[0], materialized, t0, t1, 0, points_out
            )
        for out in materialized:
            self._emit(out)


class PlanDAG:
    """All registered plans merged into one operator DAG with fan-out."""

    def __init__(self, share: bool = True, columnar: bool | None = None) -> None:
        self.share = share
        # Execution mode for every stage operator: True = vectorized
        # columnar kernels, False = per-point oracle, None = the
        # REPRO_COLUMNAR process default (resolved once at construction).
        self.columnar = resolve_columnar(columnar)
        # fingerprint -> stage, for subplan reuse (only when sharing).
        self._by_fingerprint: dict[str, Stage] = {}
        # Creation order is topological (children are built first), so
        # flushing in order drains producers before their consumers.
        self.order: list[Stage] = []
        # stream_id -> edges fed directly by that source's chunks.
        self.taps: dict[str, list[Edge]] = {}
        self.stats = PlanStats()
        # Versioned plan epochs: root id -> current epoch number (1-based)
        # and the full committed history. Only EpochTransition writes the
        # stage tables above; these counters are its commit record.
        self.epoch_of: dict[int, int] = {}
        self.epoch_history: dict[int, list["PlanEpoch"]] = {}
        self._active: frozenset[int] | None = None
        self._flushed = False

    # -- construction / teardown ---------------------------------------------------
    #
    # All structural mutation is transactional: these methods wrap an
    # EpochTransition (repro.plan.epoch), the single place allowed to
    # touch the stage tables (lint rule RL006).

    def add_plan(self, plan: PlanNode, sink: _Sink, root_id: int) -> list[Stage]:
        """Wire one query plan into the DAG, reusing shared subplans.

        Returns the stages the plan uses (for refcounted removal). The
        query starts at plan epoch 1.
        """
        from .epoch import EpochTransition

        transition = EpochTransition(self, root_id, reason="register")
        stages = transition.install(plan, sink)
        transition.commit()
        return stages

    def swap_plan(
        self, root_id: int, new_plan: PlanNode, sink: _Sink,
        old_stages: Iterable[Stage], reason: str = "replan",
    ) -> "EpochSwapResult":
        """Move a live query to its next plan epoch (hot swap).

        Stages shared between the epochs are grafted — operator state and
        refcounts preserved — new ones are built, and orphans retired.
        """
        from .epoch import EpochTransition

        transition = EpochTransition(self, root_id, reason=reason)
        result = transition.swap(new_plan, sink, old_stages)
        transition.commit()
        return result

    def remove_plan(self, root_id: int, stages: Iterable[Stage]) -> None:
        """Drop one query: unsubscribe, then prune stages nobody needs."""
        from .epoch import EpochTransition

        transition = EpochTransition(self, root_id, reason="deregister")
        transition.retire(stages)
        transition.commit()

    # -- execution -----------------------------------------------------------------

    @property
    def source_ids(self) -> list[str]:
        return sorted(self.taps)

    @property
    def stages_total(self) -> int:
        return len(self.order)

    @property
    def stages_shared(self) -> int:
        return sum(1 for s in self.order if len(s.subscribers) > 1)

    def feed(self, stream_id: str, chunk: Chunk, active: Iterable[int] | None = None) -> None:
        """Push one source chunk through every active consumer of it.

        ``active`` (root/query ids the router matched for this chunk)
        gates propagation: an edge is taken only when some active query
        is downstream of it, so shared stages run at most once per chunk
        regardless of subscriber count.
        """
        if self._flushed:
            raise PlanError("push network already flushed")
        self._active = frozenset(active) if active is not None else None
        try:
            for edge in self.taps.get(stream_id, ()):
                if self._active is None or edge.accepts(self._active):
                    edge.deliver(chunk)
        finally:
            self._active = None

    def flush(self) -> None:
        """End of input: drain every stage, producers before consumers."""
        if self._flushed:
            return
        self._flushed = True
        for stage in list(self.order):
            stage.flush()

    def reset(self) -> None:
        for stage in self.order:
            stage.op.reset()
        self._flushed = False

    def operators(self) -> list[Operator | BinaryOperator]:
        """Each distinct physical operator once, in topological order."""
        return [stage.op for stage in self.order]

    def stage_fingerprints(
        self, root_id: int | None = None, epoch: int | None = None
    ) -> set[str]:
        """Fingerprints of the stages serving one query (or every query).

        This is exactly the set a delivered frame's provenance tag should
        list after a full run under a stats collector. With ``epoch``,
        the *committed* stage set of that historical epoch is returned
        instead of the live one — the set frames delivered under that
        epoch must have traversed.
        """
        if epoch is not None:
            if root_id is None:
                raise PlanError("epoch lookup requires a root_id")
            for record in self.epoch_history.get(root_id, ()):
                if record.epoch == epoch:
                    return set(record.fingerprints)
            raise PlanError(f"query {root_id} has no recorded epoch {epoch}")
        return {
            stage.node.fingerprint
            for stage in self.order
            if root_id is None or root_id in stage.subscribers
        }

    def current_epoch(self, root_id: int) -> int:
        """The query's live plan epoch (0 when it was never registered)."""
        return self.epoch_of.get(root_id, 0)

    # -- introspection -------------------------------------------------------------

    def render(self) -> str:
        """Human-readable DAG listing for EXPLAIN output."""
        lines = [
            f"shared plan DAG: {self.stages_total} stages "
            f"({self.stages_shared} shared), sources: {', '.join(self.source_ids) or '-'}"
        ]
        if self.epoch_of:
            epochs = ", ".join(
                f"q{rid}@e{ep}" for rid, ep in sorted(self.epoch_of.items())
            )
            lines.append(f"  epochs: {epochs}")
        labels = {id(stage): f"s{i}" for i, stage in enumerate(self.order)}

        def edge_text(edge: Edge) -> str:
            if edge.stage is not None:
                side = f".{edge.side}" if edge.side else ""
                return f"{labels[id(edge.stage)]}{side}"
            roots = ",".join(str(r) for r in sorted(edge.roots))
            return f"sink[q{roots}]"

        for stream_id in self.source_ids:
            targets = ", ".join(edge_text(e) for e in self.taps[stream_id])
            lines.append(f"  source {stream_id} -> {targets}")
        for stage in self.order:
            subs = ",".join(
                f"{r}@e{stage.epochs[r]}" if r in stage.epochs else str(r)
                for r in sorted(stage.subscribers)
            )
            targets = ", ".join(edge_text(e) for e in stage.outputs) or "-"
            lines.append(
                f"  {labels[id(stage)]}: {stage.node.describe()}"
                f"  #{stage.node.fingerprint}"
                f"  subscribers=[{subs}] -> {targets}"
            )
        return "\n".join(lines)
