"""Exception hierarchy for the GeoStreams reproduction.

All library errors derive from :class:`GeoStreamsError` so applications can
catch one base class. Subclasses are grouped by subsystem; operators and the
query layer raise the most specific class that applies.
"""

from __future__ import annotations

__all__ = [
    "GeoStreamsError",
    "CRSError",
    "CRSMismatchError",
    "ProjectionError",
    "ProjectionDomainError",
    "LatticeError",
    "LatticeAlignmentError",
    "RegionError",
    "ValueSetError",
    "StreamError",
    "OperatorError",
    "BlockingHazardError",
    "CompositionError",
    "QueryError",
    "QuerySyntaxError",
    "PlanError",
    "QueryAnalysisError",
    "IndexError_",
    "ServerError",
    "ProtocolError",
    "CodecError",
    "FaultError",
    "SourceDisconnected",
    "RecoveryExhausted",
]


class GeoStreamsError(Exception):
    """Base class for every error raised by this library."""


class CRSError(GeoStreamsError):
    """A coordinate reference system is invalid or unusable."""


class CRSMismatchError(CRSError):
    """Two streams/lattices/regions use incompatible coordinate systems.

    The paper (Section 2) makes a shared coordinate system a precondition
    for binary operations on image data; violating it raises this error.
    """


class ProjectionError(CRSError):
    """A map projection computation failed."""


class ProjectionDomainError(ProjectionError):
    """Coordinates fall outside the projection's valid domain.

    For example, a point on the far side of the Earth is not visible from
    a geostationary satellite and has no image under that projection.
    """


class LatticeError(GeoStreamsError):
    """A point lattice is malformed (non-positive size, zero resolution...)."""


class LatticeAlignmentError(LatticeError):
    """Two lattices that must share a grid do not align."""


class RegionError(GeoStreamsError):
    """A spatial region specification is invalid."""


class ValueSetError(GeoStreamsError):
    """A value does not belong to the declared value set, or two value
    sets are incompatible for an operation."""


class StreamError(GeoStreamsError):
    """A stream is malformed or used inconsistently."""


class OperatorError(GeoStreamsError):
    """An operator received input it cannot process."""


class BlockingHazardError(OperatorError):
    """An operator would block indefinitely.

    Section 3.2 of the paper notes that a spatial transform "could
    potentially block forever" without scan-sector metadata; operators
    raise this instead of silently buffering without bound.
    """


class CompositionError(OperatorError):
    """Two streams cannot be composed (Def. 10 preconditions violated)."""


class QueryError(GeoStreamsError):
    """A query is invalid."""


class QuerySyntaxError(QueryError):
    """The textual query language failed to parse."""


class PlanError(QueryError):
    """A logical query could not be planned into a physical pipeline."""


class QueryAnalysisError(QueryError):
    """Static analysis rejected a query at strict registration.

    Carries the full :class:`~repro.analysis.diagnostics.DiagnosticReport`
    as ``report`` so callers can render spans, codes, and fix hints.
    """

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class IndexError_(GeoStreamsError):
    """A spatial index was misused (shadowing builtin avoided via suffix)."""


class ServerError(GeoStreamsError):
    """DSMS server failure."""


class ProtocolError(ServerError):
    """A client request could not be parsed."""


class CodecError(GeoStreamsError):
    """Image encoding or decoding (e.g. PNG) failed."""


class FaultError(GeoStreamsError):
    """A fault-injection spec is invalid or the injector was misused."""


class SourceDisconnected(StreamError):
    """A source stream dropped its connection mid-scan.

    Raised by the fault injector (and, in a real deployment, by a downlink
    receiver); :func:`repro.faults.resilient_stream` catches it and
    reconnects with exponential backoff.
    """


class RecoveryExhausted(StreamError):
    """Retries/backoff deadline exceeded while reconnecting a source."""
