"""Resampling kernels for spatial transforms (Def. 9).

Section 3.2 describes re-projection as choosing, for every output point,
either "the nearest point in the original point lattice" or "a function
applied to a neighborhood of pixels" — "linear interpolations or
higher-order fitting routines". These are those functions: nearest,
bilinear, and bicubic (Catmull-Rom) sampling at fractional grid
coordinates, plus block reduction for resolution decreases.

All kernels take fractional (row, col) coordinates, handle out-of-range
samples with a fill value, and propagate NaN coordinates to fill.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import OperatorError

__all__ = [
    "sample_nearest",
    "sample_bilinear",
    "sample_bicubic",
    "sample",
    "block_reduce",
    "KERNEL_FOOTPRINT",
]

# Half-width of each kernel's neighborhood, in pixels. Used by operators
# to size their row buffers: bilinear needs the 2x2 surrounding block,
# bicubic the 4x4 block.
KERNEL_FOOTPRINT = {"nearest": 0, "bilinear": 1, "bicubic": 2}


def _prepare(
    values: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    values = np.asarray(values)
    if values.ndim != 2:
        raise OperatorError(f"interpolation expects a 2-D array, got shape {values.shape}")
    rows = np.asarray(rows, dtype=float)
    cols = np.asarray(cols, dtype=float)
    bad = ~(np.isfinite(rows) & np.isfinite(cols))
    return values, rows, cols, bad


def sample_nearest(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Nearest-neighbour sample at fractional (row, col) positions."""
    values, rows, cols, bad = _prepare(values, rows, cols)
    h, w = values.shape
    r = np.rint(np.where(bad, 0.0, rows)).astype(np.int64)
    c = np.rint(np.where(bad, 0.0, cols)).astype(np.int64)
    outside = bad | (r < 0) | (r >= h) | (c < 0) | (c >= w)
    r = np.clip(r, 0, h - 1)
    c = np.clip(c, 0, w - 1)
    out = values[r, c].astype(np.float64)
    out[outside] = fill
    return out


def sample_bilinear(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Bilinear sample; positions needing pixels outside the array get fill."""
    values, rows, cols, bad = _prepare(values, rows, cols)
    h, w = values.shape
    rows = np.where(bad, 0.0, rows)
    cols = np.where(bad, 0.0, cols)
    r0 = np.floor(rows).astype(np.int64)
    c0 = np.floor(cols).astype(np.int64)
    fr = rows - r0
    fc = cols - c0
    # Positions exactly on the last row/column are valid (weight 0 on the
    # out-of-range neighbour); the clamped second index handles them.
    outside = bad | (rows < 0) | (rows > h - 1) | (cols < 0) | (cols > w - 1)
    r0 = np.clip(r0, 0, h - 1)
    c0 = np.clip(c0, 0, w - 1)
    r1 = np.clip(r0 + 1, 0, h - 1)
    c1 = np.clip(c0 + 1, 0, w - 1)
    v = values.astype(np.float64)
    top = v[r0, c0] * (1.0 - fc) + v[r0, c1] * fc
    bot = v[r1, c0] * (1.0 - fc) + v[r1, c1] * fc
    out = top * (1.0 - fr) + bot * fr
    out[outside] = fill
    return out


def _cubic_weights(f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Catmull-Rom weights for the 4 taps around fractional offset f in [0,1)."""
    f2 = f * f
    f3 = f2 * f
    w0 = -0.5 * f3 + f2 - 0.5 * f
    w1 = 1.5 * f3 - 2.5 * f2 + 1.0
    w2 = -1.5 * f3 + 2.0 * f2 + 0.5 * f
    w3 = 0.5 * f3 - 0.5 * f2
    return w0, w1, w2, w3


def sample_bicubic(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Catmull-Rom bicubic sample over the surrounding 4x4 neighborhood."""
    values, rows, cols, bad = _prepare(values, rows, cols)
    h, w = values.shape
    rows_c = np.where(bad, 0.0, rows)
    cols_c = np.where(bad, 0.0, cols)
    r0 = np.floor(rows_c).astype(np.int64)
    c0 = np.floor(cols_c).astype(np.int64)
    fr = rows_c - r0
    fc = cols_c - c0
    outside = bad | (rows < 1) | (rows > h - 2) | (cols < 1) | (cols > w - 2)
    wr = _cubic_weights(fr)
    wc = _cubic_weights(fc)
    v = values.astype(np.float64)
    out = np.zeros(rows_c.shape, dtype=np.float64)
    for i in range(4):
        ri = np.clip(r0 - 1 + i, 0, h - 1)
        row_acc = np.zeros(rows_c.shape, dtype=np.float64)
        for j in range(4):
            cj = np.clip(c0 - 1 + j, 0, w - 1)
            row_acc += wc[j] * v[ri, cj]
        out += wr[i] * row_acc
    out[outside] = fill
    return out


_SAMPLERS: dict[str, Callable[..., np.ndarray]] = {
    "nearest": sample_nearest,
    "bilinear": sample_bilinear,
    "bicubic": sample_bicubic,
}


def sample(
    method: str,
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    fill: float = np.nan,
) -> np.ndarray:
    """Dispatch to a sampler by name ('nearest' | 'bilinear' | 'bicubic')."""
    try:
        fn = _SAMPLERS[method]
    except KeyError:
        raise OperatorError(
            f"unknown interpolation method {method!r}; expected one of "
            f"{sorted(_SAMPLERS)}"
        ) from None
    return fn(values, rows, cols, fill=fill)


def block_reduce(
    values: np.ndarray, k: int, func: Callable[..., np.ndarray] = np.mean
) -> np.ndarray:
    """Reduce k x k blocks with ``func`` (resolution decrease, Fig. 2a).

    Trailing rows/columns that do not fill a complete block are dropped,
    matching :meth:`GridLattice.coarsened`.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise OperatorError(f"block_reduce expects a 2-D array, got shape {values.shape}")
    if k < 1:
        raise OperatorError(f"block factor must be >= 1, got {k}")
    h, w = values.shape
    if h < k or w < k:
        raise OperatorError(f"cannot reduce a {h}x{w} array by {k}")
    hh, ww = h // k, w // k
    trimmed = values[: hh * k, : ww * k]
    blocks = trimmed.reshape(hh, k, ww, k)
    return func(blocks, axis=(1, 3))
