"""Streaming statistics for value transforms.

Section 3.2: "in order to perform a respective value transform on a point,
information about previous point values needs to be maintained, in
particular the minimum and maximum point values seen so far". These
trackers are that state; stretch operators reset them at frame boundaries
because the paper applies stretches "on individual frames of the stream G,
and not the complete stream".
"""

from __future__ import annotations

import numpy as np

from ..errors import OperatorError

__all__ = ["StreamingMinMax", "StreamingHistogram"]


class StreamingMinMax:
    """Running minimum/maximum over arrays, ignoring NaN."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._min = np.inf
        self._max = -np.inf
        self._count = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        self._min = min(self._min, float(np.min(finite)))
        self._max = max(self._max, float(np.max(finite)))
        self._count += int(finite.size)

    @property
    def count(self) -> int:
        return self._count

    @property
    def min(self) -> float:
        if self._count == 0:
            raise OperatorError("no finite values observed yet")
        return self._min

    @property
    def max(self) -> float:
        if self._count == 0:
            raise OperatorError("no finite values observed yet")
        return self._max

    @property
    def range(self) -> float:
        return self.max - self.min


class StreamingHistogram:
    """Fixed-bin histogram accumulated incrementally over a value range.

    The bin range must be declared up front (streams cannot be re-read);
    for satellite imagery the instrument's digitization range is known
    (e.g. 10-bit GVAR counts), so this matches practice.
    """

    def __init__(self, lo: float, hi: float, bins: int = 256) -> None:
        if not np.isfinite(lo) or not np.isfinite(hi) or lo >= hi:
            raise OperatorError(f"invalid histogram range [{lo}, {hi}]")
        if bins < 2:
            raise OperatorError(f"need at least 2 bins, got {bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = np.zeros(bins, dtype=np.int64)

    def reset(self) -> None:
        self.counts[:] = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        clipped = np.clip(finite, self.lo, self.hi)
        idx = np.minimum(
            ((clipped - self.lo) / (self.hi - self.lo) * self.bins).astype(np.int64),
            self.bins - 1,
        )
        self.counts += np.bincount(idx, minlength=self.bins)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over bins, normalized to [0, 1]."""
        total = self.total
        if total == 0:
            raise OperatorError("histogram is empty")
        return np.cumsum(self.counts) / total

    def bin_edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.bins + 1)

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bin index of each value (clipped into range)."""
        values = np.asarray(values, dtype=float)
        clipped = np.clip(values, self.lo, self.hi)
        return np.minimum(
            ((clipped - self.lo) / (self.hi - self.lo) * self.bins).astype(np.int64),
            self.bins - 1,
        )
