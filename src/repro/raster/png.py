"""Minimal PNG codec (stdlib ``zlib`` + ``struct`` only).

The paper's delivery operator "ships stream results back to clients using
the PNG image format" (Section 4). This module provides that capability
without external imaging libraries:

* encoder for grayscale 8-bit, grayscale 16-bit, and RGB 8-bit images,
  with the five standard scanline filters and an adaptive per-scanline
  filter chooser;
* decoder for the same color types, accepting any mix of filters
  (non-interlaced only — satellite products are not Adam7-interlaced).

Only the subset needed for image delivery is implemented; palettes, alpha,
ancillary chunks and interlacing are out of scope and rejected loudly.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..errors import CodecError

__all__ = ["encode_png", "decode_png", "encode_image", "FILTER_NAMES"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"

FILTER_NAMES = {"none": 0, "sub": 1, "up": 2, "average": 3, "paeth": 4}


def _chunk(tag: bytes, data: bytes) -> bytes:
    return (
        struct.pack(">I", len(data))
        + tag
        + data
        + struct.pack(">I", zlib.crc32(tag + data) & 0xFFFFFFFF)
    )


def _paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorized Paeth predictor over int16 arrays."""
    p = a.astype(np.int16) + b.astype(np.int16) - c.astype(np.int16)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


def _filter_scanline(
    raw: np.ndarray, prev: np.ndarray, bpp: int, strategy: str
) -> tuple[int, np.ndarray]:
    """Filter one scanline, returning (filter_type, filtered_bytes)."""
    left = np.zeros_like(raw)
    left[bpp:] = raw[:-bpp]
    up = prev
    upleft = np.zeros_like(prev)
    upleft[bpp:] = prev[:-bpp]

    candidates: dict[str, np.ndarray] = {"none": raw}
    candidates["sub"] = (raw.astype(np.int16) - left).astype(np.uint8)
    candidates["up"] = (raw.astype(np.int16) - up).astype(np.uint8)
    candidates["average"] = (
        raw.astype(np.int16) - ((left.astype(np.int16) + up.astype(np.int16)) // 2)
    ).astype(np.uint8)
    candidates["paeth"] = (
        raw.astype(np.int16) - _paeth_predictor(left, up, upleft)
    ).astype(np.uint8)

    if strategy != "adaptive":
        return FILTER_NAMES[strategy], candidates[strategy]
    # Minimum-sum-of-absolute-differences heuristic from the PNG spec.
    best_name, best_cost = "none", None
    for name, data in candidates.items():
        signed = data.astype(np.int16)
        cost = int(np.abs(np.where(signed > 127, signed - 256, signed)).sum())
        if best_cost is None or cost < best_cost:
            best_name, best_cost = name, cost
    return FILTER_NAMES[best_name], candidates[best_name]


def _classify(values: np.ndarray) -> tuple[int, int, int]:
    """(color_type, bit_depth, channels) for an array, or raise."""
    if values.ndim == 2:
        if values.dtype == np.uint8:
            return 0, 8, 1
        if values.dtype == np.uint16:
            return 0, 16, 1
        raise CodecError(
            f"grayscale PNG needs uint8 or uint16 values, got {values.dtype}; "
            "scale float data first (see encode_image)"
        )
    if values.ndim == 3 and values.shape[2] == 3:
        if values.dtype == np.uint8:
            return 2, 8, 3
        raise CodecError(f"RGB PNG needs uint8 values, got {values.dtype}")
    raise CodecError(
        f"unsupported image shape {values.shape}; expected (h, w) or (h, w, 3)"
    )


def encode_png(
    values: np.ndarray,
    filter_strategy: str = "adaptive",
    compress_level: int = 6,
) -> bytes:
    """Encode a uint8/uint16 grayscale or uint8 RGB array as PNG bytes."""
    values = np.ascontiguousarray(values)
    if filter_strategy != "adaptive" and filter_strategy not in FILTER_NAMES:
        raise CodecError(
            f"unknown filter strategy {filter_strategy!r}; expected 'adaptive' "
            f"or one of {sorted(FILTER_NAMES)}"
        )
    color_type, bit_depth, channels = _classify(values)
    h, w = values.shape[:2]
    if h < 1 or w < 1:
        raise CodecError("cannot encode an empty image")

    if bit_depth == 16:
        payload = values.astype(">u2").tobytes()
    else:
        payload = values.tobytes()
    bpp = channels * (bit_depth // 8)
    stride = w * bpp
    raw = np.frombuffer(payload, dtype=np.uint8).reshape(h, stride)

    prev = np.zeros(stride, dtype=np.uint8)
    lines = bytearray()
    for r in range(h):
        ftype, filtered = _filter_scanline(raw[r], prev, bpp, filter_strategy)
        lines.append(ftype)
        lines.extend(filtered.tobytes())
        prev = raw[r]

    ihdr = struct.pack(">IIBBBBB", w, h, bit_depth, color_type, 0, 0, 0)
    idat = zlib.compress(bytes(lines), compress_level)
    return _SIGNATURE + _chunk(b"IHDR", ihdr) + _chunk(b"IDAT", idat) + _chunk(b"IEND", b"")


def encode_image(values: np.ndarray, auto_scale: bool = True) -> bytes:
    """Encode an arbitrary raster, auto-scaling floats to 8-bit grayscale.

    Integer arrays are encoded directly; float arrays (the usual case for
    derived products like NDVI) are min-max scaled to uint8 with NaN
    rendered as 0 when ``auto_scale`` is set.
    """
    values = np.asarray(values)
    if np.issubdtype(values.dtype, np.floating):
        if not auto_scale:
            raise CodecError("float images require auto_scale=True or manual scaling")
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            scaled = np.zeros(values.shape, dtype=np.uint8)
        else:
            lo, hi = float(finite.min()), float(finite.max())
            span = (hi - lo) if hi > lo else 1.0
            scaled = np.clip((values - lo) / span * 255.0, 0.0, 255.0)
            scaled = np.where(np.isfinite(values), scaled, 0.0).astype(np.uint8)
        return encode_png(scaled)
    if values.dtype in (np.dtype(np.uint8), np.dtype(np.uint16)):
        return encode_png(values)
    if np.issubdtype(values.dtype, np.integer):
        info_lo, info_hi = int(values.min()), int(values.max())
        if 0 <= info_lo and info_hi <= 255:
            return encode_png(values.astype(np.uint8))
        if 0 <= info_lo and info_hi <= 65535:
            return encode_png(values.astype(np.uint16))
        raise CodecError(
            f"integer image values in [{info_lo}, {info_hi}] do not fit PNG "
            "grayscale; rescale first"
        )
    raise CodecError(f"cannot encode dtype {values.dtype}")


def _unfilter_scanline(
    ftype: int, line: np.ndarray, prev: np.ndarray, bpp: int
) -> np.ndarray:
    """Reverse one scanline filter in place-safe fashion."""
    out = line.astype(np.int32)
    if ftype == 0:
        pass
    elif ftype == 2:  # up — fully vectorizable
        out = (out + prev) & 0xFF
    elif ftype in (1, 3, 4):
        prev32 = prev.astype(np.int32)
        res = np.zeros_like(out)
        for i in range(out.shape[0]):
            left = res[i - bpp] if i >= bpp else 0
            up = prev32[i]
            if ftype == 1:
                pred = left
            elif ftype == 3:
                pred = (left + up) // 2
            else:
                upleft = prev32[i - bpp] if i >= bpp else 0
                p = left + up - upleft
                pa, pb, pc = abs(p - left), abs(p - up), abs(p - upleft)
                pred = left if pa <= pb and pa <= pc else (up if pb <= pc else upleft)
            res[i] = (out[i] + pred) & 0xFF
        out = res
    else:
        raise CodecError(f"unknown PNG filter type {ftype}")
    return out.astype(np.uint8)


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNG bytes into a numpy array (inverse of :func:`encode_png`)."""
    if not data.startswith(_SIGNATURE):
        raise CodecError("not a PNG: bad signature")
    pos = len(_SIGNATURE)
    ihdr: bytes | None = None
    idat = bytearray()
    seen_end = False
    while pos < len(data):
        if pos + 8 > len(data):
            raise CodecError("truncated PNG chunk header")
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        body = data[pos + 8 : pos + 8 + length]
        if len(body) != length:
            raise CodecError(f"truncated PNG chunk {tag!r}")
        crc_expected = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        if zlib.crc32(tag + body) & 0xFFFFFFFF != crc_expected:
            raise CodecError(f"CRC mismatch in chunk {tag!r}")
        if tag == b"IHDR":
            ihdr = body
        elif tag == b"IDAT":
            idat.extend(body)
        elif tag == b"IEND":
            seen_end = True
            break
        # Ancillary chunks are skipped.
        pos += 12 + length
    if ihdr is None or not seen_end:
        raise CodecError("PNG missing IHDR or IEND")
    w, h, bit_depth, color_type, comp, filt, interlace = struct.unpack(">IIBBBBB", ihdr)
    if comp != 0 or filt != 0:
        raise CodecError("unsupported PNG compression/filter method")
    if interlace != 0:
        raise CodecError("interlaced PNGs are not supported")
    if color_type == 0 and bit_depth in (8, 16):
        channels = 1
    elif color_type == 2 and bit_depth == 8:
        channels = 3
    else:
        raise CodecError(
            f"unsupported color type/bit depth combination ({color_type}, {bit_depth})"
        )
    bpp = channels * (bit_depth // 8)
    stride = w * bpp
    raw = zlib.decompress(bytes(idat))
    if len(raw) != h * (stride + 1):
        raise CodecError(
            f"decompressed size {len(raw)} does not match {h} scanlines of "
            f"{stride + 1} bytes"
        )
    flat = np.frombuffer(raw, dtype=np.uint8).reshape(h, stride + 1)
    prev = np.zeros(stride, dtype=np.uint8)
    rows = np.empty((h, stride), dtype=np.uint8)
    for r in range(h):
        prev = _unfilter_scanline(int(flat[r, 0]), flat[r, 1:], prev, bpp)
        rows[r] = prev
    if bit_depth == 16:
        out = rows.reshape(h, w, 2).astype(np.uint16)
        values = (out[:, :, 0].astype(np.uint16) << 8) | out[:, :, 1]
        return values
    if channels == 3:
        return rows.reshape(h, w, 3)
    return rows.reshape(h, w)
