"""Contrast-scaling value transforms (Section 3.2).

The paper names three typical approaches for scaling point values "in
order to fully utilize the complete range of values in V": linear contrast
stretch, histogram equalization, and Gaussian stretch (citing Mather's
*Computer Processing of Remotely-Sensed Images*). These are the array-level
implementations; :mod:`repro.operators.value_transform` wraps them as
frame-buffered stream operators.

Everything is numpy-only; the inverse error function needed by the
Gaussian stretch is implemented here (Winitzki's approximation refined by
Newton steps on a vectorized erf).
"""

from __future__ import annotations

import numpy as np

from ..errors import OperatorError

__all__ = [
    "linear_stretch",
    "percentile_stretch",
    "histogram_equalize",
    "gaussian_stretch",
    "erf",
    "erfinv",
]


def linear_stretch(
    values: np.ndarray,
    in_lo: float,
    in_hi: float,
    out_lo: float = 0.0,
    out_hi: float = 255.0,
) -> np.ndarray:
    """Affine map of [in_lo, in_hi] onto [out_lo, out_hi], clipping outside."""
    values = np.asarray(values, dtype=float)
    if in_hi <= in_lo:
        # A constant frame stretches to the middle of the output range.
        return np.full(values.shape, (out_lo + out_hi) / 2.0)
    scaled = (values - in_lo) / (in_hi - in_lo)
    return out_lo + np.clip(scaled, 0.0, 1.0) * (out_hi - out_lo)


def percentile_stretch(
    values: np.ndarray,
    lo_pct: float = 2.0,
    hi_pct: float = 98.0,
    out_lo: float = 0.0,
    out_hi: float = 255.0,
) -> np.ndarray:
    """Linear stretch between the given percentiles (robust to outliers)."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise OperatorError("cannot stretch an all-NaN array")
    in_lo, in_hi = np.percentile(finite, [lo_pct, hi_pct])
    return linear_stretch(values, float(in_lo), float(in_hi), out_lo, out_hi)


def histogram_equalize(
    values: np.ndarray,
    bins: int = 256,
    out_lo: float = 0.0,
    out_hi: float = 255.0,
) -> np.ndarray:
    """Map values through their empirical CDF so the output is ~uniform."""
    values = np.asarray(values, dtype=float)
    finite_mask = np.isfinite(values)
    finite = values[finite_mask]
    if finite.size == 0:
        raise OperatorError("cannot equalize an all-NaN array")
    lo, hi = float(np.min(finite)), float(np.max(finite))
    if hi <= lo:
        return np.full(values.shape, (out_lo + out_hi) / 2.0)
    counts, edges = np.histogram(finite, bins=bins, range=(lo, hi))
    cdf = np.cumsum(counts).astype(float)
    cdf /= cdf[-1]
    safe = np.where(finite_mask, values, lo)
    idx = np.clip(((safe - lo) / (hi - lo) * bins).astype(np.int64), 0, bins - 1)
    out = out_lo + cdf[idx] * (out_hi - out_lo)
    out[~finite_mask] = np.nan
    return out


def erf(x: np.ndarray | float) -> np.ndarray:
    """Vectorized error function (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7)."""
    x = np.asarray(x, dtype=float)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def erfinv(y: np.ndarray | float) -> np.ndarray:
    """Vectorized inverse error function on (-1, 1).

    Winitzki's initial approximation refined with two Newton iterations
    against :func:`erf`; accurate to ~1e-7 over (-0.9999, 0.9999).
    """
    y = np.asarray(y, dtype=float)
    if np.any(np.abs(y[np.isfinite(y)]) >= 1.0):
        raise OperatorError("erfinv domain is the open interval (-1, 1)")
    a = 0.147
    ln1my2 = np.log(np.maximum(1.0 - y * y, 1e-300))
    term = 2.0 / (np.pi * a) + ln1my2 / 2.0
    x = np.sign(y) * np.sqrt(np.maximum(np.sqrt(term * term - ln1my2 / a) - term, 0.0))
    # Newton refinement: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) * exp(-x^2).
    two_over_sqrt_pi = 2.0 / np.sqrt(np.pi)
    for _ in range(2):
        err = erf(x) - y
        x = x - err / (two_over_sqrt_pi * np.exp(-x * x))
    return x


def gaussian_stretch(
    values: np.ndarray,
    out_lo: float = 0.0,
    out_hi: float = 255.0,
    clip_sigma: float = 3.0,
) -> np.ndarray:
    """Rank-map values so the output histogram is approximately Gaussian.

    Each value's empirical quantile q is sent to the normal quantile
    ``sqrt(2) * erfinv(2q - 1)``, then the +/- ``clip_sigma`` range is
    scaled onto [out_lo, out_hi].
    """
    values = np.asarray(values, dtype=float)
    finite_mask = np.isfinite(values)
    finite = values[finite_mask]
    if finite.size == 0:
        raise OperatorError("cannot stretch an all-NaN array")
    order = np.argsort(finite, kind="stable")
    ranks = np.empty(finite.size, dtype=float)
    ranks[order] = np.arange(1, finite.size + 1)
    q = ranks / (finite.size + 1.0)  # strictly inside (0, 1)
    z = np.sqrt(2.0) * erfinv(2.0 * q - 1.0)
    z = np.clip(z, -clip_sigma, clip_sigma)
    scaled = out_lo + (z + clip_sigma) / (2.0 * clip_sigma) * (out_hi - out_lo)
    out = np.full(values.shape, np.nan)
    out[finite_mask] = scaled
    return out
