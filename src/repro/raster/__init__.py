"""Raster utilities: interpolation, streaming stats, stretches, PNG codec."""

from .histogram import StreamingHistogram, StreamingMinMax
from .interpolate import (
    KERNEL_FOOTPRINT,
    block_reduce,
    sample,
    sample_bicubic,
    sample_bilinear,
    sample_nearest,
)
from .png import decode_png, encode_image, encode_png
from .stretch import (
    erf,
    erfinv,
    gaussian_stretch,
    histogram_equalize,
    linear_stretch,
    percentile_stretch,
)

__all__ = [
    "StreamingHistogram",
    "StreamingMinMax",
    "KERNEL_FOOTPRINT",
    "block_reduce",
    "sample",
    "sample_nearest",
    "sample_bilinear",
    "sample_bicubic",
    "decode_png",
    "encode_png",
    "encode_image",
    "linear_stretch",
    "percentile_stretch",
    "histogram_equalize",
    "gaussian_stretch",
    "erf",
    "erfinv",
]
