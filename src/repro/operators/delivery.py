"""Stream delivery (Section 4).

"This spatial restriction operator then streams the point data to a
specialized stream delivery operator that ships stream results back to
clients using the PNG image format." :class:`Delivery` assembles frames
from its input, encodes each completed frame as PNG, and hands the bytes
to a sink — while passing the chunks through unchanged so delivery can
sit anywhere in a pipeline without breaking closure.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.chunk import Chunk, PointChunk
from ..core.image import RasterImage
from ..core.provenance import Provenance
from ..errors import OperatorError
from ..obs.trace import current_frame_tracer
from .aggregate import _FrameCollector
from .base import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.trace import FrameTrace, TraceContext

__all__ = ["Delivery", "DeliveredFrame", "CollectingSink"]


class DeliveredFrame:
    """One frame shipped to a client: PNG bytes plus its georeferencing.

    ``provenance`` (when the run recorded lineage) is the merged tag of
    every chunk that contributed to the frame: which raw scans and which
    plan stages produced these pixels.  ``trace`` (when the run had a
    frame tracer installed and the frame's chunks were sampled) is the
    frame's end-to-end :class:`~repro.obs.trace.FrameTrace`.

    ``seq`` is the delivery sequence number, assigned contiguously per
    delivery operator (0, 1, 2, …) — it survives plan-epoch hot swaps,
    so a gap or repeat proves a frame was dropped or duplicated across a
    cutover. ``epoch`` is the plan epoch whose stage set produced the
    frame (0 outside a DSMS session).
    """

    __slots__ = ("png", "image", "provenance", "trace", "seq", "epoch")

    def __init__(
        self,
        png: bytes,
        image: RasterImage,
        provenance: Provenance | None = None,
        trace: "FrameTrace | None" = None,
        seq: int = 0,
        epoch: int = 0,
    ) -> None:
        self.png = png
        self.image = image
        self.provenance = provenance
        self.trace = trace
        self.seq = seq
        self.epoch = epoch

    def __repr__(self) -> str:
        return (
            f"DeliveredFrame(#{self.seq}, {len(self.png)} bytes, {self.image.shape[0]}x"
            f"{self.image.shape[1]} {self.image.band!r} @t={self.image.t:g})"
        )


class CollectingSink:
    """Default sink: keep every delivered frame in memory."""

    def __init__(self) -> None:
        self.frames: list[DeliveredFrame] = []

    def __call__(self, frame: DeliveredFrame) -> None:
        self.frames.append(frame)

    def __len__(self) -> int:
        return len(self.frames)


class Delivery(Operator):
    """Encode completed frames as PNG and push them to a client sink."""

    name = "delivery"

    def __init__(
        self,
        sink: Callable[[DeliveredFrame], None] | None = None,
        encode: bool = True,
    ) -> None:
        super().__init__()
        self.sink = sink if sink is not None else CollectingSink()
        self.encode = encode
        self._collector = _FrameCollector(self)
        self._pending_prov: Provenance | None = None
        # Trace contexts of the chunks assembling the current frame; the
        # server session sets trace_query (its registration id) so frame
        # traces land in the right flight-recorder ring.
        self._pending_trace: "list[TraceContext]" = []
        self.trace_query: object | None = None
        # Delivery sequence numbers are contiguous per operator and the
        # plan epoch is stamped on each frame; both survive hot swaps
        # (the delivery operator lives in the session, not the DAG).
        self._seq = 0
        self.epoch = 0

    def _reset_state(self) -> None:
        self._collector = _FrameCollector(self)
        self._pending_prov = None
        self._pending_trace = []
        self._seq = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _ship(self, image: RasterImage) -> None:
        ftracer = current_frame_tracer() if self._pending_trace else None
        if ftracer is None:
            png = image.to_png_bytes() if self.encode else b""
            self.sink(
                DeliveredFrame(
                    png,
                    image,
                    provenance=self._pending_prov,
                    seq=self._next_seq(),
                    epoch=self.epoch,
                )
            )
            self._pending_prov = None
            self._pending_trace = []
            return
        t0 = perf_counter()
        png = image.to_png_bytes() if self.encode else b""
        t1 = perf_counter()
        if self.epoch:
            for ctx in self._pending_trace:
                ftracer.annotate(ctx, f"epoch={self.epoch}")
                break  # one annotation per frame is enough
        trace = ftracer.finalize_frame(
            self.trace_query,
            self._pending_trace,
            frame_t=float(image.t),
            band=image.band,
            shape=image.shape,
            t0=t0,
            t1=t1,
        )
        self.sink(
            DeliveredFrame(
                png,
                image,
                provenance=self._pending_prov,
                trace=trace,
                seq=self._next_seq(),
                epoch=self.epoch,
            )
        )
        self._pending_prov = None
        self._pending_trace = []

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError(
                "PNG delivery is defined on raster streams; aggregate point "
                "results are shipped by the server session layer instead"
            )
        if chunk.provenance is not None:
            self._pending_prov = (
                chunk.provenance
                if self._pending_prov is None
                else self._pending_prov.merge(chunk.provenance)
            )
        if chunk.trace is not None:
            self._pending_trace.append(chunk.trace)
        image = self._collector.add(chunk)
        if image is not None:
            self._ship(image)
        yield chunk

    def _flush(self) -> Iterable[Chunk]:
        image = self._collector.finish()
        if image is not None:
            self._ship(image)
        return ()

    def __repr__(self) -> str:
        return f"Delivery(encode={self.encode})"
