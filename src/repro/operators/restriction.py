"""Stream restrictions (Section 3.1, Defs. 6-7 plus value restriction).

"All three restriction operators can process incoming image data on a
point-by-point basis and thus can be evaluated without storage for any
intermediate point data ... non-blocking and constant cost per point,
independent of the size of the input stream." The implementations below
hold no state between chunks; experiment E1 verifies their
``stats.max_buffered_points == 0``.

Representation note: on grid chunks a non-rectangular region (polygon,
constraint, enumeration) cannot be expressed by cropping alone, so
excluded pixels are masked to NaN after promoting integer values to
float32 — the NaN-as-absent convention used throughout the library. A
plain :class:`~repro.geo.region.BoundingBox` restriction stays a pure
crop and preserves the input value set exactly.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk, fast_grid_replace, fast_replace_values
from ..core.columnar import coordinate_columns
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import StreamMetadata
from ..core.timeset import TimeSet
from ..core.valueset import ValueSet
from ..errors import CRSMismatchError, OperatorError
from ..geo.region import BoundingBox, Region
from .base import Operator

__all__ = ["SpatialRestriction", "TemporalRestriction", "ValueRestriction"]


def _mask_grid_values(values: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Promote to float and set excluded pixels to NaN."""
    out = values.astype(np.float32) if values.dtype.kind in "iu" else values.astype(values.dtype, copy=True)
    if out.ndim == 3:
        out[~keep, :] = np.nan
    else:
        out[~keep] = np.nan
    return out


class SpatialRestriction(Operator):
    """Keep only points whose spatial location lies in a region (Def. 6)."""

    name = "spatial-restriction"

    def __init__(self, region: Region) -> None:
        super().__init__()
        self.region = region
        self._is_box = isinstance(region, BoundingBox)
        # Columnar geometry caches, keyed by (frozen, content-compared)
        # lattices. Row-by-row streams repeat the same row lattice every
        # frame, so the crop window, narrowed frame, and region mask are
        # computed once per distinct geometry instead of once per chunk.
        # Deliberately NOT cleared in _reset_state: the entries are pure
        # functions of (region, lattice), so reuse across stream re-opens
        # is sound and is part of the columnar speedup.
        self._window_cache: dict[GridLattice, tuple[int, int, int, int, GridLattice] | None] = {}
        self._frame_cache: dict[GridLattice, tuple[GridLattice, int, int, int] | None] = {}
        self._mask_cache: dict[GridLattice, tuple[np.ndarray, bool]] = {}

    def _check_crs(self, chunk_crs: object) -> None:
        if self.region.crs != chunk_crs:
            raise CRSMismatchError(
                "spatial restriction region is in a different coordinate system "
                "than the stream; transform the region first (the optimizer "
                "does this when pushing restrictions through re-projections)"
            )

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            self._check_crs(chunk.crs)
            keep = self.region.mask(chunk.x, chunk.y)
            if np.any(keep):
                yield chunk.select(keep)
            return

        self._check_crs(chunk.lattice.crs)
        window = chunk.lattice.intersect_window(self.region.bounding_box)
        if window is None:
            return
        row0, col0, nrows, ncols = window
        cropped = chunk.subwindow(row0, col0, nrows, ncols)
        cropped = self._narrow_frame(cropped)
        if self._is_box:
            yield cropped
            return
        x, y = cropped.coords()
        keep = self.region.mask(x, y)
        if not np.any(keep):
            return
        yield cropped.with_values(_mask_grid_values(cropped.values, keep))

    def _narrow_frame(self, chunk: GridChunk) -> GridChunk:
        """Restrict the scan-sector metadata to the region as well.

        The restriction narrows not just the data but the *spatial extent
        currently scanned*: downstream frame-buffered operators (stretch,
        re-projection, warps) then size their buffers and output lattices
        to the restricted sector — which is precisely why pushing spatial
        restrictions inward yields "the most significant space and time
        gains" (Section 3.4).
        """
        frame = chunk.frame
        if frame is None:
            return chunk
        fw = frame.lattice.intersect_window(self.region.bounding_box)
        if fw is None:
            return chunk
        f_row0, f_col0, f_nrows, f_ncols = fw
        if (f_row0, f_col0, f_nrows, f_ncols) == (0, 0, frame.lattice.height, frame.lattice.width):
            return chunk
        narrowed = FrameInfo(frame.frame_id, frame.lattice.window(f_row0, f_col0, f_nrows, f_ncols))
        new_row0 = chunk.row0 - f_row0
        new_col0 = chunk.col0 - f_col0
        last = chunk.last_in_frame or (new_row0 + chunk.lattice.height == f_nrows)
        return dc_replace(
            chunk, frame=narrowed, row0=new_row0, col0=new_col0, last_in_frame=last
        )

    # -- columnar kernel ---------------------------------------------------------

    def _crop_window(self, lattice: GridLattice) -> tuple[int, int, int, int, GridLattice] | None:
        entry = self._window_cache.get(lattice, False)
        if entry is False:
            window = lattice.intersect_window(self.region.bounding_box)
            if window is None:
                entry = None
            else:
                row0, col0, nrows, ncols = window
                entry = (row0, col0, nrows, ncols, lattice.window(row0, col0, nrows, ncols))
            self._window_cache[lattice] = entry
        return entry

    def _narrowed_frame(self, lattice: GridLattice) -> tuple[GridLattice, int, int, int] | None:
        """Narrowed frame lattice and offsets, or None when unchanged."""
        entry = self._frame_cache.get(lattice, False)
        if entry is False:
            fw = lattice.intersect_window(self.region.bounding_box)
            if fw is None:
                entry = None
            else:
                f_row0, f_col0, f_nrows, f_ncols = fw
                if (f_row0, f_col0, f_nrows, f_ncols) == (0, 0, lattice.height, lattice.width):
                    entry = None
                else:
                    entry = (lattice.window(f_row0, f_col0, f_nrows, f_ncols), f_row0, f_col0, f_nrows)
            self._frame_cache[lattice] = entry
        return entry

    def _region_keep(self, lattice: GridLattice) -> tuple[np.ndarray, bool]:
        entry = self._mask_cache.get(lattice)
        if entry is None:
            x, y = coordinate_columns(lattice)
            keep = self.region.mask(x, y)
            entry = (keep, bool(np.any(keep)))
            self._mask_cache[lattice] = entry
        return entry

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            yield from self._process(chunk)
            return
        self._check_crs(chunk.lattice.crs)
        crop = self._crop_window(chunk.lattice)
        if crop is None:
            return
        row0, col0, nrows, ncols, cropped_lattice = crop
        values = chunk.values[row0 : row0 + nrows, col0 : col0 + ncols]
        new_row0 = chunk.row0 + row0
        new_col0 = chunk.col0 + col0
        frame = chunk.frame
        last = chunk.last_in_frame
        if frame is not None:
            narrowed = self._narrowed_frame(frame.lattice)
            if narrowed is not None:
                frame_lattice, f_row0, f_col0, f_nrows = narrowed
                frame = FrameInfo(frame.frame_id, frame_lattice)
                new_row0 -= f_row0
                new_col0 -= f_col0
                last = last or (new_row0 + nrows == f_nrows)
        if not self._is_box:
            keep, any_keep = self._region_keep(cropped_lattice)
            if not any_keep:
                return
            values = _mask_grid_values(values, keep)
        yield fast_grid_replace(
            chunk,
            values=values,
            lattice=cropped_lattice,
            row0=new_row0,
            col0=new_col0,
            frame=frame,
            last_in_frame=last,
        )

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        if self._is_box:
            return metadata
        return dc_replace(metadata, value_set=_masked_value_set(metadata.value_set))


def _masked_value_set(value_set: ValueSet) -> ValueSet:
    """Value set after NaN masking (floats pass through, integers widen)."""
    if value_set.is_integer:
        return ValueSet(
            f"{value_set.name}?",
            np.float32,
            channels=value_set.channels,
        )
    return value_set


class TemporalRestriction(Operator):
    """Keep only points whose timestamp lies in a time set (Def. 7).

    Grid chunks share one timestamp, so the test is a single O(1) check
    per chunk; point chunks are filtered per point. When ``on_sector`` is
    set, the restriction applies to scan-sector identifiers instead of
    measured times (the paper's timestamps may be either, Section 2).
    """

    name = "temporal-restriction"

    def __init__(self, timeset: TimeSet, on_sector: bool = False) -> None:
        super().__init__()
        self.timeset = timeset
        self.on_sector = on_sector

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, GridChunk):
            key = chunk.sector if self.on_sector else chunk.t
            if key is None:
                raise OperatorError(
                    "sector-based temporal restriction on a stream without "
                    "scan-sector identifiers"
                )
            if self.timeset.contains_scalar(float(key)):
                yield chunk
            return
        if self.on_sector:
            if chunk.sector is None:
                raise OperatorError(
                    "sector-based temporal restriction on a point stream "
                    "without scan-sector identifiers"
                )
            if self.timeset.contains_scalar(float(chunk.sector)):
                yield chunk
            return
        keep = self.timeset.contains(chunk.t)
        if np.any(keep):
            yield chunk.select(keep)


class ValueRestriction(Operator):
    """Keep only points whose value satisfies a predicate (Section 3.1).

    The member set V can be given as an inclusive (lo, hi) range (either
    bound None for open) or as a vectorized predicate on the value array.
    """

    name = "value-restriction"

    def __init__(
        self,
        lo: float | None = None,
        hi: float | None = None,
        predicate: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        super().__init__()
        if predicate is None and lo is None and hi is None:
            raise OperatorError("value restriction needs bounds or a predicate")
        if predicate is not None and (lo is not None or hi is not None):
            raise OperatorError("give either bounds or a predicate, not both")
        self.lo = lo
        self.hi = hi
        self.predicate = predicate

    def _keep(self, values: np.ndarray) -> np.ndarray:
        if self.predicate is not None:
            keep = np.asarray(self.predicate(values))
            if keep.shape != values.shape[: keep.ndim] and keep.shape != values.shape:
                # Vector values may be reduced by the predicate; accept
                # per-point masks for (n, c) arrays.
                pass
            return keep.astype(bool)
        values = values.astype(float, copy=False)
        keep = np.ones(values.shape, dtype=bool)
        if self.lo is not None:
            keep &= values >= self.lo
        if self.hi is not None:
            keep &= values <= self.hi
        return keep

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        keep = self._keep(chunk.values)
        if isinstance(chunk, PointChunk):
            if keep.ndim == 2:
                keep = keep.all(axis=1)
            if np.any(keep):
                yield chunk.select(keep)
            return
        if keep.ndim == 3:
            keep = keep.all(axis=2)
        if not np.any(keep):
            return
        yield chunk.with_values(_mask_grid_values(chunk.values, keep))

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        # The keep mask is already one vectorized batch; columnar mode only
        # removes the re-validating with_values on the output chunk.
        if isinstance(chunk, PointChunk):
            yield from self._process(chunk)
            return
        keep = self._keep(chunk.values)
        if keep.ndim == 3:
            keep = keep.all(axis=2)
        if not np.any(keep):
            return
        yield fast_replace_values(chunk, _mask_grid_values(chunk.values, keep))

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=_masked_value_set(metadata.value_set))
