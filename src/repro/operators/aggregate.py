"""Spatio-temporal aggregates over raster streams.

The paper's outlook (Section 6) plans "the full integration of a
spatio-temporal aggregate operator for streaming image data", citing
Zhang, Gertz & Aksoy (ACM-GIS 2004, ref [27]). This module implements the
two aggregate shapes that work describes:

* :class:`TemporalAggregate` — per-pixel reductions over a window of the
  last N frames (sliding or tumbling): "max NDVI per pixel over the last
  k scans". State is N frames of pixels, so ``stats.max_buffered_points``
  is ~N x frame size (experiment X1).
* :class:`RegionAggregate` — per-region scalar reductions per frame
  ("mean reflectance over the watch region each scan"). Only O(#regions)
  running accumulators are held, never point data, so the operator is
  non-blocking in the paper's sense; results are emitted as a point
  stream (one point per region at its bounding-box center), keeping the
  algebra closed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace as dc_replace
from typing import Deque, Iterable, Mapping

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..core.image import RasterImage, assemble_frames
from ..core.metadata import FrameInfo
from ..core.stream import Organization, StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import OperatorError
from ..geo.region import Region
from .base import Operator

__all__ = ["TemporalAggregate", "RegionAggregate", "AGGREGATE_FUNCS"]

AGGREGATE_FUNCS = ("mean", "min", "max", "sum", "count")


def _reduce_stack(stack: np.ndarray, func: str) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        if func == "mean":
            return np.nanmean(stack, axis=0)
        if func == "min":
            return np.nanmin(stack, axis=0)
        if func == "max":
            return np.nanmax(stack, axis=0)
        if func == "sum":
            return np.nansum(stack, axis=0)
        if func == "count":
            return np.isfinite(stack).sum(axis=0).astype(np.float64)
    raise OperatorError(f"unknown aggregate {func!r}; expected one of {AGGREGATE_FUNCS}")


class _FrameCollector:
    """Accumulate a frame's chunks, yielding the image when it completes."""

    def __init__(self, owner: Operator) -> None:
        self.owner = owner
        self.pending: list[GridChunk] = []
        self.frame_id: int | None = None

    def add(self, chunk: GridChunk) -> RasterImage | None:
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        completed: RasterImage | None = None
        if self.pending and frame_id != self.frame_id:
            completed = self.finish()
        self.pending.append(chunk)
        self.frame_id = frame_id
        self.owner.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            finished = self.finish()
            # `completed` only coexists with a new one-chunk frame ending
            # immediately; callers treat a frame boundary and a completed
            # frame in the same step by preferring the newest.
            return finished if completed is None else completed
        return completed

    def finish(self) -> RasterImage | None:
        if not self.pending:
            return None
        images = list(assemble_frames(self.pending))
        for c in self.pending:
            self.owner.stats.buffer_remove_chunk(c)
        self.pending = []
        self.frame_id = None
        # assemble_frames may split on malformed inputs; keep the last.
        return images[-1] if images else None


class TemporalAggregate(Operator):
    """Per-pixel aggregate over a window of the last N frames (ref [27])."""

    name = "temporal-aggregate"

    def __init__(self, window: int, func: str = "mean", mode: str = "sliding") -> None:
        super().__init__()
        if window < 1:
            raise OperatorError(f"window must be >= 1 frame, got {window}")
        if func not in AGGREGATE_FUNCS:
            raise OperatorError(f"unknown aggregate {func!r}; expected one of {AGGREGATE_FUNCS}")
        if mode not in ("sliding", "tumbling"):
            raise OperatorError(f"mode must be 'sliding' or 'tumbling', got {mode!r}")
        self.window = window
        self.func = func
        self.mode = mode
        self._collector = _FrameCollector(self)
        self._frames: Deque[RasterImage] = deque()
        self._out_frame_id = 0

    def _reset_state(self) -> None:
        self._collector = _FrameCollector(self)
        self._frames = deque()
        self._out_frame_id = 0

    def _window_points(self, image: RasterImage) -> int:
        return image.n_points

    def _push_frame(self, image: RasterImage) -> Iterable[Chunk]:
        if self._frames and not self._frames[0].lattice.aligned_with(image.lattice):
            raise OperatorError(
                "temporal aggregation requires frames over a consistent lattice"
            )
        self._frames.append(image)
        self.stats.buffer_add(image.n_points, image.values.nbytes)
        if len(self._frames) < self.window:
            return
        stack = np.stack([f.values.astype(np.float64) for f in self._frames])
        reduced = _reduce_stack(stack, self.func).astype(np.float32)
        last = self._frames[-1]
        out = GridChunk(
            values=reduced,
            lattice=last.lattice,
            band=f"{self.func}{self.window}({last.band})",
            t=last.t,
            sector=last.sector,
            frame=FrameInfo(self._out_frame_id, last.lattice),
            row0=0,
            col0=0,
            last_in_frame=True,
        )
        self._out_frame_id += 1
        if self.mode == "tumbling":
            while self._frames:
                old = self._frames.popleft()
                self.stats.buffer_remove(old.n_points, old.values.nbytes)
        else:
            old = self._frames.popleft()
            self.stats.buffer_remove(old.n_points, old.values.nbytes)
        yield out

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("temporal aggregation is defined on raster streams")
        image = self._collector.add(chunk)
        if image is not None:
            yield from self._push_frame(image)

    def _flush(self) -> Iterable[Chunk]:
        image = self._collector.finish()
        if image is not None:
            yield from self._push_frame(image)
        while self._frames:
            old = self._frames.popleft()
            self.stats.buffer_remove(old.n_points, old.values.nbytes)

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(
            metadata,
            band=f"{self.func}{self.window}({metadata.band})",
            value_set=FLOAT32,
            organization=Organization.IMAGE_BY_IMAGE,
        )

    def __repr__(self) -> str:
        return f"TemporalAggregate({self.func!r}, window={self.window}, {self.mode})"


class RegionAggregate(Operator):
    """Per-region scalar aggregates per frame, emitted as a point stream."""

    name = "region-aggregate"

    def __init__(self, regions: Mapping[str, Region], func: str = "mean") -> None:
        super().__init__()
        if not regions:
            raise OperatorError("region aggregation needs at least one region")
        if func not in AGGREGATE_FUNCS:
            raise OperatorError(f"unknown aggregate {func!r}; expected one of {AGGREGATE_FUNCS}")
        self.regions = dict(regions)
        self.func = func
        # name -> (sum, count, min, max); enough to derive any AGGREGATE_FUNC.
        self._acc: dict[str, list[float]] = {}
        self._frame_id: int | None = None
        self._frame_t = 0.0
        self._sector: int | None = None
        self._band = ""
        self._crs = None

    def _reset_state(self) -> None:
        self._acc = {}
        self._frame_id = None

    def _ensure(self, name: str) -> list[float]:
        acc = self._acc.get(name)
        if acc is None:
            acc = [0.0, 0.0, np.inf, -np.inf]
            self._acc[name] = acc
        return acc

    def _accumulate(self, name: str, values: np.ndarray) -> None:
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        acc = self._ensure(name)
        acc[0] += float(finite.sum())
        acc[1] += float(finite.size)
        acc[2] = min(acc[2], float(finite.min()))
        acc[3] = max(acc[3], float(finite.max()))

    def _result(self, acc: list[float]) -> float:
        total, count, vmin, vmax = acc
        if count == 0:
            return float("nan")
        if self.func == "mean":
            return total / count
        if self.func == "sum":
            return total
        if self.func == "count":
            return count
        if self.func == "min":
            return vmin
        return vmax

    def _emit_frame(self) -> Iterable[Chunk]:
        if not self._acc and self._frame_id is None:
            return
        names = sorted(self.regions)
        xs, ys, vals = [], [], []
        for name in names:
            region = self.regions[name]
            cx, cy = region.bounding_box.center
            xs.append(cx)
            ys.append(cy)
            acc = self._acc.get(name)
            vals.append(self._result(acc) if acc is not None else float("nan"))
        yield PointChunk(
            x=np.asarray(xs),
            y=np.asarray(ys),
            values=np.asarray(vals, dtype=np.float32),
            band=f"{self.func}({self._band})",
            t=np.full(len(names), self._frame_t),
            crs=self._crs,
            sector=self._sector,
        )
        self._acc = {}
        self._frame_id = None

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            x, y, values = chunk.x, chunk.y, np.asarray(chunk.values, dtype=float)
            crs = chunk.crs
            frame_id = chunk.sector
            t = float(chunk.t[-1]) if chunk.t.size else 0.0
            last = False
        else:
            x, y = chunk.flat_coords()
            values = chunk.values.astype(float).ravel()
            crs = chunk.lattice.crs
            frame_id = chunk.frame.frame_id if chunk.frame is not None else None
            t = chunk.t
            last = chunk.last_in_frame
        for region in self.regions.values():
            region.crs.require_same(crs, "region aggregation")
        if self._frame_id is not None and frame_id != self._frame_id and self._acc:
            yield from self._emit_frame()
        self._frame_id = frame_id
        self._frame_t = t
        self._sector = chunk.sector
        self._band = chunk.band
        self._crs = crs
        for name, region in self.regions.items():
            mask = region.mask(x, y)
            if np.any(mask):
                self._accumulate(name, values[mask])
        if last:
            yield from self._emit_frame()

    def _flush(self) -> Iterable[Chunk]:
        if self._acc:
            yield from self._emit_frame()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(
            metadata,
            band=f"{self.func}({metadata.band})",
            value_set=FLOAT32,
            organization=Organization.POINT_BY_POINT,
        )

    def __repr__(self) -> str:
        return f"RegionAggregate({self.func!r}, regions={sorted(self.regions)})"
