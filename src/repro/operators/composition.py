"""Stream composition (Def. 10) — combining spectral bands.

γ ∈ {+, −, ×, ÷, sup, inf} (or any binary ufunc) is applied to pairs of
points that "match in the spatial dimension and in the timestamp". Two
consequences from Section 3.3 are reproduced faithfully:

* **Timestamping matters.** Under the ``measured`` policy, bands scanned
  sequentially never produce matching timestamps, so the operator never
  emits — the paper's motivating pathology (experiment E6). Under the
  ``sector`` policy, matching uses scan-sector identifiers and works.
* **Buffering follows the point organization.** Chunks wait in a
  per-side buffer until the partner chunk (same key, same lattice window)
  arrives. With row-by-row streams whose bands interleave per sweep, at
  most ~a row waits; with image-by-image streams a whole image waits
  (experiment E5). The operator does not decide this — the stream
  organization does, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk, TimestampPolicy, fast_grid_replace
from ..core.lattice import GridLattice
from ..core.stream import StreamMetadata
from ..core.valueset import ValueSet, promote
from ..errors import CompositionError
from .base import BinaryOperator

__all__ = ["StreamComposition", "GAMMA_OPERATORS", "normalized_difference", "nan_supremum"]


def _safe_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = a / b
    return np.where(np.isfinite(out), out, np.nan)


def nan_supremum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pointwise maximum that treats NaN as "no data" rather than poison.

    The mosaic kernel: where only one stream covers a point (the other is
    NaN — e.g. beyond a satellite's visible disk), the covered value wins;
    where both cover it, the larger value does. Composing two re-projected
    satellite views with this gamma yields a coverage mosaic.
    """
    with np.errstate(invalid="ignore"):
        return np.where(
            np.isnan(a), b, np.where(np.isnan(b), a, np.maximum(a, b))
        )


GAMMA_OPERATORS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": _safe_divide,
    "sup": np.maximum,
    "inf": np.minimum,
    "mosaic": nan_supremum,
}


def normalized_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(a - b) / (a + b), the NDVI kernel, NaN-safe at a + b == 0."""
    return _safe_divide(a - b, a + b)


class StreamComposition(BinaryOperator):
    """Pointwise binary operator over two GeoStreams (Def. 10).

    Parameters
    ----------
    gamma:
        One of ``'+', '-', '*', '/', 'sup', 'inf'``, or any vectorized
        binary function of two float arrays.
    timestamp_policy:
        ``'sector'`` matches chunks by scan-sector id, ``'measured'`` by
        measured time (with ``time_tolerance``).
    band:
        Name of the output band; defaults to ``"(left γ right)"``.
    """

    name = "composition"

    def __init__(
        self,
        gamma: str | Callable[[np.ndarray, np.ndarray], np.ndarray],
        timestamp_policy: TimestampPolicy = "sector",
        time_tolerance: float = 0.0,
        band: str | None = None,
        output_value_set: ValueSet | None = None,
    ) -> None:
        super().__init__()
        if isinstance(gamma, str):
            if gamma not in GAMMA_OPERATORS:
                raise CompositionError(
                    f"unknown composition operator {gamma!r}; expected one of "
                    f"{sorted(GAMMA_OPERATORS)} or a callable"
                )
            self.gamma = GAMMA_OPERATORS[gamma]
            self.gamma_symbol = gamma
        else:
            self.gamma = gamma
            self.gamma_symbol = getattr(gamma, "__name__", "gamma")
        self.timestamp_policy = timestamp_policy
        self.time_tolerance = float(time_tolerance)
        self.band = band
        self.out_value_set = output_value_set
        # Per-side buffers: match key -> waiting chunk.
        self._waiting: dict[str, dict[tuple, GridChunk]] = {"left": {}, "right": {}}
        # Columnar caches: match-key lattice components and pairwise
        # alignment verdicts are pure functions of the (frozen) lattices,
        # so they survive resets and are computed once per geometry.
        self._latkey_cache: dict[GridLattice, tuple] = {}
        self._align_cache: dict[tuple[GridLattice, GridLattice], str] = {}

    def _reset_state(self) -> None:
        self._waiting = {"left": {}, "right": {}}

    # -- matching ---------------------------------------------------------------

    def _match_key(self, chunk: GridChunk) -> tuple:
        """Chunks compose when their key is identical: same timestamp (per
        policy) and the same lattice window."""
        tkey = chunk.timestamp_key(self.timestamp_policy)
        if self.timestamp_policy == "measured" and self.time_tolerance > 0:
            tkey = round(tkey / self.time_tolerance)
        lat = chunk.lattice
        return (
            tkey,
            chunk.row0,
            chunk.col0,
            lat.height,
            lat.width,
            round(lat.x0, 9),
            round(lat.y0, 9),
        )

    def _compose(self, left: GridChunk, right: GridChunk) -> GridChunk:
        if left.lattice.crs != right.lattice.crs:
            raise CompositionError(
                "composition requires both streams in the same coordinate "
                f"system, got {left.lattice.crs.name!r} and "
                f"{right.lattice.crs.name!r}"
            )
        if not left.lattice.aligned_with(right.lattice):
            raise CompositionError(
                "composition requires both streams over the same point lattice"
            )
        values = self.gamma(
            left.values.astype(np.float64), right.values.astype(np.float64)
        )
        if self.out_value_set is not None:
            values = self.out_value_set.coerce(values)
        else:
            values = values.astype(np.float32)
        band = self.band or f"({left.band}{self.gamma_symbol}{right.band})"
        return dc_replace(
            left,
            values=values,
            band=band,
            t=max(left.t, right.t),
            last_in_frame=left.last_in_frame and right.last_in_frame,
        )

    def _process_side(self, side: str, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise CompositionError(
                "composition of point-by-point streams is not supported; "
                "rasterize them first"
            )
        other_side = "right" if side == "left" else "left"
        key = self._match_key(chunk)
        partner = self._waiting[other_side].pop(key, None)
        if partner is not None:
            self.stats.buffer_remove_chunk(partner)
            # The partner sat in the buffer from its own measured time until
            # this chunk arrived: that span is stream-time latency induced
            # purely by the scan organization (Section 3.3).
            self.stats.note_wait(abs(chunk.t - partner.t))
            left, right = (chunk, partner) if side == "left" else (partner, chunk)
            yield self._compose(left, right)
            return
        replaced = self._waiting[side].get(key)
        if replaced is not None:
            # A duplicate key on the same side replaces the stale chunk.
            self.stats.buffer_remove_chunk(replaced)
        self._waiting[side][key] = chunk
        self.stats.buffer_add_chunk(chunk)

    # -- columnar kernel ---------------------------------------------------------
    #
    # Matching is already chunk-at-a-time; the columnar win is caching the
    # per-lattice key components and the O(lattice) alignment check, and
    # deriving the output chunk without re-validation. The gamma itself is
    # byte-for-byte the oracle's expression.

    def _lattice_key(self, lattice: GridLattice) -> tuple:
        key = self._latkey_cache.get(lattice)
        if key is None:
            key = (lattice.height, lattice.width, round(lattice.x0, 9), round(lattice.y0, 9))
            self._latkey_cache[lattice] = key
        return key

    def _match_key_columnar(self, chunk: GridChunk) -> tuple:
        tkey = chunk.timestamp_key(self.timestamp_policy)
        if self.timestamp_policy == "measured" and self.time_tolerance > 0:
            tkey = round(tkey / self.time_tolerance)
        height, width, x0, y0 = self._lattice_key(chunk.lattice)
        return (tkey, chunk.row0, chunk.col0, height, width, x0, y0)

    def _pair_verdict(self, left: GridLattice, right: GridLattice) -> str:
        verdict = self._align_cache.get((left, right))
        if verdict is None:
            if left.crs != right.crs:
                verdict = "crs"
            elif not left.aligned_with(right):
                verdict = "misaligned"
            else:
                verdict = "ok"
            self._align_cache[(left, right)] = verdict
        return verdict

    def _compose_columnar(self, left: GridChunk, right: GridChunk) -> GridChunk:
        verdict = self._pair_verdict(left.lattice, right.lattice)
        if verdict == "crs":
            raise CompositionError(
                "composition requires both streams in the same coordinate "
                f"system, got {left.lattice.crs.name!r} and "
                f"{right.lattice.crs.name!r}"
            )
        if verdict == "misaligned":
            raise CompositionError(
                "composition requires both streams over the same point lattice"
            )
        values = self.gamma(
            left.values.astype(np.float64), right.values.astype(np.float64)
        )
        if self.out_value_set is not None:
            values = self.out_value_set.coerce(values)
        else:
            values = values.astype(np.float32)
        band = self.band or f"({left.band}{self.gamma_symbol}{right.band})"
        return fast_grid_replace(
            left,
            values=values,
            band=band,
            t=max(left.t, right.t),
            last_in_frame=left.last_in_frame and right.last_in_frame,
        )

    def _process_side_columnar(self, side: str, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise CompositionError(
                "composition of point-by-point streams is not supported; "
                "rasterize them first"
            )
        other_side = "right" if side == "left" else "left"
        key = self._match_key_columnar(chunk)
        partner = self._waiting[other_side].pop(key, None)
        if partner is not None:
            self.stats.buffer_remove_chunk(partner)
            self.stats.note_wait(abs(chunk.t - partner.t))
            left, right = (chunk, partner) if side == "left" else (partner, chunk)
            yield self._compose_columnar(left, right)
            return
        replaced = self._waiting[side].get(key)
        if replaced is not None:
            self.stats.buffer_remove_chunk(replaced)
        self._waiting[side][key] = chunk
        self.stats.buffer_add_chunk(chunk)

    def _flush(self) -> Iterable[Chunk]:
        # Unmatched points never find a partner (Def. 10 yields no output
        # for them); drop and release their buffer accounting.
        for side in self.SIDES:
            for chunk in self._waiting[side].values():
                self.stats.buffer_remove_chunk(chunk)
            self._waiting[side].clear()
        return ()

    @property
    def unmatched_counts(self) -> tuple[int, int]:
        """(left, right) chunks currently waiting for a partner."""
        return (len(self._waiting["left"]), len(self._waiting["right"]))

    def output_metadata(
        self, left: StreamMetadata, right: StreamMetadata
    ) -> StreamMetadata:
        if left.crs != right.crs:
            raise CompositionError(
                "composition requires both streams in the same coordinate system"
            )
        value_set = (
            self.out_value_set
            if self.out_value_set is not None
            else promote(left.value_set, right.value_set)
        )
        band = self.band or f"({left.band}{self.gamma_symbol}{right.band})"
        return dc_replace(
            left,
            stream_id=f"({left.stream_id}{self.gamma_symbol}{right.stream_id})",
            band=band,
            value_set=value_set,
        )

    def __repr__(self) -> str:
        return f"StreamComposition({self.gamma_symbol!r}, policy={self.timestamp_policy!r})"
