"""The query model's operator classes (Section 3).

Restrictions (3.1), transforms (3.2), compositions (3.3), plus the
spatio-temporal aggregate extension (Section 6 / ref [27]), delivery
(Section 4), and macro operators for common data products.
"""

from .aggregate import AGGREGATE_FUNCS, RegionAggregate, TemporalAggregate
from .base import BinaryOperator, Operator, OperatorStats
from .composition import GAMMA_OPERATORS, StreamComposition, normalized_difference
from .delivery import CollectingSink, DeliveredFrame, Delivery
from .macros import (
    band_difference,
    band_ratio,
    evi2,
    ndvi,
    reflectance,
    spatio_temporal_aggregate,
)
from .reprojection import Reproject
from .restriction import SpatialRestriction, TemporalRestriction, ValueRestriction
from .shedding import AdaptiveLoadShedder, FrameSubsampler
from .spatial_transform import AffineTransform, AffineWarp, Coarsen, Magnify, Rotate
from .value_transform import (
    ColorToGray,
    CountsToReflectance,
    FrameStretch,
    PointwiseTransform,
    Rescale,
)

__all__ = [
    "Operator",
    "BinaryOperator",
    "OperatorStats",
    "SpatialRestriction",
    "TemporalRestriction",
    "ValueRestriction",
    "PointwiseTransform",
    "Rescale",
    "CountsToReflectance",
    "ColorToGray",
    "FrameStretch",
    "Magnify",
    "Coarsen",
    "AffineTransform",
    "AffineWarp",
    "Rotate",
    "Reproject",
    "StreamComposition",
    "GAMMA_OPERATORS",
    "normalized_difference",
    "TemporalAggregate",
    "RegionAggregate",
    "AGGREGATE_FUNCS",
    "Delivery",
    "DeliveredFrame",
    "CollectingSink",
    "ndvi",
    "evi2",
    "reflectance",
    "band_difference",
    "band_ratio",
    "spatio_temporal_aggregate",
    "FrameSubsampler",
    "AdaptiveLoadShedder",
]
