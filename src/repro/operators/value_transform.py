"""Value transforms (Def. 8).

Two families, with very different costs (Section 3.2):

* **Pointwise** transforms (``f_val`` applied per point) — color to
  grayscale, radiometric calibration, gamma, arbitrary ufuncs. These
  "allow for processing on a point-by-point basis": no buffering.
* **Frame-scaling** transforms — linear contrast stretch, histogram
  equalization, Gaussian stretch — need the whole frame's value
  distribution before any point can be emitted, so "the cost of a stretch
  transform operator is determined by the size of the largest frame that
  can occur in G". :class:`FrameStretch` buffers the current frame's
  chunks and re-emits them transformed when the frame ends; its
  ``stats.max_buffered_points`` equals the frame size (experiment E2).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32, GRAY8, ValueSet
from ..errors import OperatorError
from ..raster.stretch import gaussian_stretch, histogram_equalize, linear_stretch
from .base import Operator

__all__ = [
    "PointwiseTransform",
    "Rescale",
    "CountsToReflectance",
    "ColorToGray",
    "FrameStretch",
]


class PointwiseTransform(Operator):
    """Apply a vectorized function to every point value (non-blocking)."""

    name = "value-transform"

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        output_value_set: ValueSet | None = None,
        band: str | None = None,
        label: str = "f_val",
    ) -> None:
        super().__init__()
        self.fn = fn
        self.out_value_set = output_value_set
        self.band = band
        self.label = label

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        out = np.asarray(self.fn(chunk.values))
        if self.out_value_set is not None:
            out = self.out_value_set.coerce(out)
        # Point-count compatibility is enforced by the chunk constructor.
        yield chunk.with_values(out, band=self.band)

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        changes: dict[str, object] = {}
        if self.out_value_set is not None:
            changes["value_set"] = self.out_value_set
        if self.band is not None:
            changes["band"] = self.band
        return dc_replace(metadata, **changes) if changes else metadata

    def __repr__(self) -> str:
        return f"PointwiseTransform({self.label})"


class Rescale(PointwiseTransform):
    """Affine value map ``gain * v + offset`` (radiometric calibration)."""

    def __init__(
        self,
        gain: float,
        offset: float = 0.0,
        output_value_set: ValueSet | None = None,
    ) -> None:
        super().__init__(
            lambda v: gain * v.astype(np.float32) + offset,
            output_value_set=output_value_set,
            label=f"{gain:g}*v+{offset:g}",
        )
        self.gain = gain
        self.offset = offset


class CountsToReflectance(Rescale):
    """Instrument counts -> reflectance in [0, 1] given the bit depth."""

    def __init__(self, bits: int = 10) -> None:
        from ..core.valueset import REFLECTANCE

        full_scale = float((1 << bits) - 1)
        super().__init__(1.0 / full_scale, 0.0, output_value_set=REFLECTANCE)
        self.bits = bits


class ColorToGray(PointwiseTransform):
    """Z^3 -> Z luminance transform (the paper's simple f_val example)."""

    def __init__(self, weights: tuple[float, float, float] = (0.299, 0.587, 0.114)) -> None:
        w = np.asarray(weights, dtype=np.float32)

        def to_gray(values: np.ndarray) -> np.ndarray:
            if values.ndim < 2 or values.shape[-1] != 3:
                raise OperatorError(
                    f"color-to-gray expects 3-channel values, got shape {values.shape}"
                )
            return values.astype(np.float32) @ w

        super().__init__(to_gray, output_value_set=None, label="rgb->gray")

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=FLOAT32)


_STRETCHES = ("linear", "equalize", "gaussian")


class FrameStretch(Operator):
    """Frame-buffered contrast scaling (linear / equalize / gaussian).

    Buffers every chunk of the current frame; when the frame's last chunk
    arrives (or the stream flushes), computes the scaling over the frame's
    complete value distribution and re-emits each buffered chunk with
    transformed values. Frames are delimited by ``last_in_frame`` /
    frame-id changes; a whole-frame chunk passes through with only its own
    transient buffering.
    """

    name = "frame-stretch"

    def __init__(
        self,
        kind: str = "linear",
        out_lo: float = 0.0,
        out_hi: float = 255.0,
        bins: int = 256,
        clip_sigma: float = 3.0,
        output_value_set: ValueSet | None = None,
    ) -> None:
        super().__init__()
        if kind not in _STRETCHES:
            raise OperatorError(f"unknown stretch {kind!r}; expected one of {_STRETCHES}")
        self.kind = kind
        self.out_lo = out_lo
        self.out_hi = out_hi
        self.bins = bins
        self.clip_sigma = clip_sigma
        self.out_value_set = output_value_set if output_value_set is not None else GRAY8
        self._pending: list[GridChunk] = []
        self._frame_id: int | None = None

    def _reset_state(self) -> None:
        self._pending = []
        self._frame_id = None

    # -- frame machinery ---------------------------------------------------------

    def _emit_frame(self) -> Iterable[Chunk]:
        if not self._pending:
            return
        frame_values = np.concatenate(
            [c.values.astype(np.float64).ravel() for c in self._pending]
        )
        if self.kind == "linear":
            finite = frame_values[np.isfinite(frame_values)]
            if finite.size == 0:
                lo = hi = 0.0
            else:
                lo, hi = float(finite.min()), float(finite.max())

            def scale(v: np.ndarray) -> np.ndarray:
                return linear_stretch(v, lo, hi, self.out_lo, self.out_hi)

        elif self.kind == "equalize":
            # Equalization and the Gaussian stretch are distribution maps;
            # compute them on the whole frame at once, then split back.
            transformed = histogram_equalize(
                frame_values, bins=self.bins, out_lo=self.out_lo, out_hi=self.out_hi
            )
            yield from self._emit_split(transformed)
            return
        else:
            transformed = gaussian_stretch(
                frame_values,
                out_lo=self.out_lo,
                out_hi=self.out_hi,
                clip_sigma=self.clip_sigma,
            )
            yield from self._emit_split(transformed)
            return

        for chunk in self._pending:
            self.stats.buffer_remove_chunk(chunk)
            yield chunk.with_values(self.out_value_set.coerce(scale(chunk.values)))
        self._pending = []
        self._frame_id = None

    def _emit_split(self, transformed: np.ndarray) -> Iterable[Chunk]:
        offset = 0
        for chunk in self._pending:
            size = chunk.values.size
            block = transformed[offset : offset + size].reshape(chunk.values.shape)
            offset += size
            self.stats.buffer_remove_chunk(chunk)
            yield chunk.with_values(self.out_value_set.coerce(block))
        self._pending = []
        self._frame_id = None

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError(
                "frame stretches are defined on raster streams; point streams "
                "have no frames to scale over"
            )
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._pending and frame_id != self._frame_id:
            # A new frame started without a last_in_frame marker.
            yield from self._emit_frame()
        self._pending.append(chunk)
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit_frame()

    def _flush(self) -> Iterable[Chunk]:
        yield from self._emit_frame()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=self.out_value_set)

    def __repr__(self) -> str:
        return f"FrameStretch({self.kind!r})"
