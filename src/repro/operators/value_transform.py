"""Value transforms (Def. 8).

Two families, with very different costs (Section 3.2):

* **Pointwise** transforms (``f_val`` applied per point) — color to
  grayscale, radiometric calibration, gamma, arbitrary ufuncs. These
  "allow for processing on a point-by-point basis": no buffering.
* **Frame-scaling** transforms — linear contrast stretch, histogram
  equalization, Gaussian stretch — need the whole frame's value
  distribution before any point can be emitted, so "the cost of a stretch
  transform operator is determined by the size of the largest frame that
  can occur in G". :class:`FrameStretch` buffers the current frame's
  chunks and re-emits them transformed when the frame ends; its
  ``stats.max_buffered_points`` equals the frame size (experiment E2).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk, fast_replace_values
from ..core.columnar import FrameAccumulator
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32, GRAY8, ValueSet
from ..errors import OperatorError
from ..raster.stretch import gaussian_stretch, histogram_equalize, linear_stretch
from .base import Operator

__all__ = [
    "PointwiseTransform",
    "Rescale",
    "CountsToReflectance",
    "ColorToGray",
    "FrameStretch",
]


class PointwiseTransform(Operator):
    """Apply a vectorized function to every point value (non-blocking)."""

    name = "value-transform"

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        output_value_set: ValueSet | None = None,
        band: str | None = None,
        label: str = "f_val",
        elementwise: bool = False,
    ) -> None:
        super().__init__()
        self.fn = fn
        self.out_value_set = output_value_set
        self.band = band
        self.label = label
        # ``elementwise=True`` declares that ``fn`` maps element i of its
        # input to element i of its output independent of array shape
        # (e.g. an affine rescale, but not a channel reduction). Only such
        # transforms may be applied across chunk boundaries in one call.
        self.elementwise = elementwise

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        out = np.asarray(self.fn(chunk.values))
        if self.out_value_set is not None:
            out = self.out_value_set.coerce(out)
        # Point-count compatibility is enforced by the chunk constructor.
        yield chunk.with_values(out, band=self.band)

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        # Same fn and coercion as the oracle; only the chunk derivation is
        # fast-pathed (with_values re-validates shape on every row chunk).
        if isinstance(chunk, PointChunk):
            yield from self._process(chunk)
            return
        out = np.asarray(self.fn(chunk.values))
        if self.out_value_set is not None:
            out = self.out_value_set.coerce(out)
        yield fast_replace_values(chunk, out, band=self.band)

    def process_many(self, chunks: list[Chunk]) -> list[Chunk]:
        """Batch elementwise transforms across chunk boundaries.

        Runs of same-dtype 2-D grid chunks are flattened into one array,
        transformed and coerced with a single call each, then split back
        into per-chunk views. Both ``fn`` (declared elementwise) and scalar
        coercion (astype/clip/rint, all elementwise) are shape-independent,
        so the split-out bits equal the per-chunk oracle's exactly.
        """
        out_set = self.out_value_set
        if not (
            self.columnar
            and self.elementwise
            and (out_set is None or not out_set.is_vector)
        ):
            return super().process_many(chunks)
        stats = self.stats
        band = self.band
        outs: list[Chunk] = []
        i, n = 0, len(chunks)
        while i < n:
            first = chunks[i]
            if not isinstance(first, GridChunk) or first.values.ndim != 2:
                stats.note_in(first)
                for out in self._process_columnar(first):
                    stats.note_out(out)
                    outs.append(out)
                i += 1
                continue
            # Maximal run of same-dtype 2-D chunks (mixed dtypes would
            # promote under concatenation and change bits).
            dtype = first.values.dtype
            j = i + 1
            while j < n:
                nxt = chunks[j]
                if (
                    not isinstance(nxt, GridChunk)
                    or nxt.values.ndim != 2
                    or nxt.values.dtype != dtype
                ):
                    break
                j += 1
            run = chunks[i:j]
            i = j
            flat = (
                run[0].values.ravel()
                if len(run) == 1
                else np.concatenate([c.values.ravel() for c in run])
            )
            out_flat = np.asarray(self.fn(flat))
            if out_set is not None:
                out_flat = out_set.coerce(out_flat)
            offset = 0
            for c in run:
                size = c.values.size
                vals = out_flat[offset : offset + size].reshape(c.values.shape)
                offset += size
                outs.append(fast_replace_values(c, vals, band=band))
            # For 2-D grid chunks n_points == values.size, so bulk counter
            # updates equal the per-chunk note_in/note_out sums.
            stats.chunks_in += len(run)
            stats.chunks_out += len(run)
            stats.points_in += flat.size
            stats.points_out += flat.size
        return outs

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        changes: dict[str, object] = {}
        if self.out_value_set is not None:
            changes["value_set"] = self.out_value_set
        if self.band is not None:
            changes["band"] = self.band
        return dc_replace(metadata, **changes) if changes else metadata

    def __repr__(self) -> str:
        return f"PointwiseTransform({self.label})"


class Rescale(PointwiseTransform):
    """Affine value map ``gain * v + offset`` (radiometric calibration)."""

    def __init__(
        self,
        gain: float,
        offset: float = 0.0,
        output_value_set: ValueSet | None = None,
    ) -> None:
        super().__init__(
            lambda v: gain * v.astype(np.float32) + offset,
            output_value_set=output_value_set,
            label=f"{gain:g}*v+{offset:g}",
            elementwise=True,
        )
        self.gain = gain
        self.offset = offset


class CountsToReflectance(Rescale):
    """Instrument counts -> reflectance in [0, 1] given the bit depth."""

    def __init__(self, bits: int = 10) -> None:
        from ..core.valueset import REFLECTANCE

        full_scale = float((1 << bits) - 1)
        super().__init__(1.0 / full_scale, 0.0, output_value_set=REFLECTANCE)
        self.bits = bits


class ColorToGray(PointwiseTransform):
    """Z^3 -> Z luminance transform (the paper's simple f_val example)."""

    def __init__(self, weights: tuple[float, float, float] = (0.299, 0.587, 0.114)) -> None:
        w = np.asarray(weights, dtype=np.float32)

        def to_gray(values: np.ndarray) -> np.ndarray:
            if values.ndim < 2 or values.shape[-1] != 3:
                raise OperatorError(
                    f"color-to-gray expects 3-channel values, got shape {values.shape}"
                )
            return values.astype(np.float32) @ w

        super().__init__(to_gray, output_value_set=None, label="rgb->gray")

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=FLOAT32)


_STRETCHES = ("linear", "equalize", "gaussian")


class FrameStretch(Operator):
    """Frame-buffered contrast scaling (linear / equalize / gaussian).

    Buffers every chunk of the current frame; when the frame's last chunk
    arrives (or the stream flushes), computes the scaling over the frame's
    complete value distribution and re-emits each buffered chunk with
    transformed values. Frames are delimited by ``last_in_frame`` /
    frame-id changes; a whole-frame chunk passes through with only its own
    transient buffering.
    """

    name = "frame-stretch"

    def __init__(
        self,
        kind: str = "linear",
        out_lo: float = 0.0,
        out_hi: float = 255.0,
        bins: int = 256,
        clip_sigma: float = 3.0,
        output_value_set: ValueSet | None = None,
    ) -> None:
        super().__init__()
        if kind not in _STRETCHES:
            raise OperatorError(f"unknown stretch {kind!r}; expected one of {_STRETCHES}")
        self.kind = kind
        self.out_lo = out_lo
        self.out_hi = out_hi
        self.bins = bins
        self.clip_sigma = clip_sigma
        self.out_value_set = output_value_set if output_value_set is not None else GRAY8
        self._pending: list[GridChunk] = []
        self._frame_id: int | None = None
        # Columnar state: one contiguous float64 frame accumulator plus the
        # (chunk, offset, size) table that splits results back into chunks.
        self._acc = FrameAccumulator()
        self._col_pending: list[tuple[GridChunk, int, int]] = []

    def _reset_state(self) -> None:
        self._pending = []
        self._frame_id = None
        self._acc.clear()
        self._col_pending = []

    # -- frame machinery ---------------------------------------------------------

    def _emit_frame(self) -> Iterable[Chunk]:
        if not self._pending:
            return
        frame_values = np.concatenate(
            [c.values.astype(np.float64).ravel() for c in self._pending]
        )
        if self.kind == "linear":
            finite = frame_values[np.isfinite(frame_values)]
            if finite.size == 0:
                lo = hi = 0.0
            else:
                lo, hi = float(finite.min()), float(finite.max())

            def scale(v: np.ndarray) -> np.ndarray:
                return linear_stretch(v, lo, hi, self.out_lo, self.out_hi)

        elif self.kind == "equalize":
            # Equalization and the Gaussian stretch are distribution maps;
            # compute them on the whole frame at once, then split back.
            transformed = histogram_equalize(
                frame_values, bins=self.bins, out_lo=self.out_lo, out_hi=self.out_hi
            )
            yield from self._emit_split(transformed)
            return
        else:
            transformed = gaussian_stretch(
                frame_values,
                out_lo=self.out_lo,
                out_hi=self.out_hi,
                clip_sigma=self.clip_sigma,
            )
            yield from self._emit_split(transformed)
            return

        for chunk in self._pending:
            self.stats.buffer_remove_chunk(chunk)
            yield chunk.with_values(self.out_value_set.coerce(scale(chunk.values)))
        self._pending = []
        self._frame_id = None

    def _emit_split(self, transformed: np.ndarray) -> Iterable[Chunk]:
        offset = 0
        for chunk in self._pending:
            size = chunk.values.size
            block = transformed[offset : offset + size].reshape(chunk.values.shape)
            offset += size
            self.stats.buffer_remove_chunk(chunk)
            yield chunk.with_values(self.out_value_set.coerce(block))
        self._pending = []
        self._frame_id = None

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError(
                "frame stretches are defined on raster streams; point streams "
                "have no frames to scale over"
            )
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._pending and frame_id != self._frame_id:
            # A new frame started without a last_in_frame marker.
            yield from self._emit_frame()
        self._pending.append(chunk)
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit_frame()

    def _flush(self) -> Iterable[Chunk]:
        yield from self._emit_frame()

    # -- columnar kernel ---------------------------------------------------------
    #
    # The oracle casts every buffered chunk to float64 and concatenates at
    # frame end; the columnar kernel performs that cast once per chunk *on
    # arrival* by assignment into a contiguous float64 accumulator (bitwise
    # the same cast), then runs one whole-frame transform. Scalar value
    # sets are coerced once over the whole frame — coercion is purely
    # elementwise (astype/clip/rint), so splitting before or after cannot
    # change bits. Vector-valued sets keep per-chunk coercion for its
    # trailing-channel shape check.

    def _emit_frame_columnar(self) -> Iterable[Chunk]:
        if not self._col_pending:
            return
        frame_values = self._acc.values()
        if self.kind == "linear":
            finite = frame_values[np.isfinite(frame_values)]
            if finite.size == 0:
                lo = hi = 0.0
            else:
                lo, hi = float(finite.min()), float(finite.max())
            transformed = linear_stretch(frame_values, lo, hi, self.out_lo, self.out_hi)
        elif self.kind == "equalize":
            transformed = histogram_equalize(
                frame_values, bins=self.bins, out_lo=self.out_lo, out_hi=self.out_hi
            )
        else:
            transformed = gaussian_stretch(
                frame_values,
                out_lo=self.out_lo,
                out_hi=self.out_hi,
                clip_sigma=self.clip_sigma,
            )
        out_set = self.out_value_set
        if not out_set.is_vector:
            coerced = out_set.coerce(transformed)
            for chunk, offset, size in self._col_pending:
                self.stats.buffer_remove_chunk(chunk)
                yield fast_replace_values(
                    chunk, coerced[offset : offset + size].reshape(chunk.values.shape)
                )
        else:
            for chunk, offset, size in self._col_pending:
                self.stats.buffer_remove_chunk(chunk)
                block = transformed[offset : offset + size].reshape(chunk.values.shape)
                yield fast_replace_values(chunk, out_set.coerce(block))
        self._col_pending = []
        self._acc.clear()
        self._frame_id = None

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError(
                "frame stretches are defined on raster streams; point streams "
                "have no frames to scale over"
            )
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._col_pending and frame_id != self._frame_id:
            yield from self._emit_frame_columnar()
        offset, size = self._acc.append(chunk.values)
        self._col_pending.append((chunk, offset, size))
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit_frame_columnar()

    def _flush_columnar(self) -> Iterable[Chunk]:
        yield from self._emit_frame_columnar()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=self.out_value_set)

    def __repr__(self) -> str:
        return f"FrameStretch({self.kind!r})"
