"""Load shedding for overload conditions.

The paper's introduction situates GeoStreams within DSMS research whose
techniques include "adaptive query processing, operator scheduling, and
load shedding". For image streams, shedding whole *frames* (scan sectors)
is the natural unit — dropping arbitrary points would corrupt the lattice
invariants every downstream operator relies on. Two policies:

* :class:`FrameSubsampler` — static policy: keep every k-th frame
  (temporal decimation of the product's refresh rate).
* :class:`AdaptiveLoadShedder` — dynamic policy: a token bucket of
  downstream *point* budget per frame period; when arrears build up
  (processing is slower than the downlink), whole frames are dropped
  until the budget recovers. Every shed frame is counted, so benches can
  trade output completeness against sustained throughput explicitly.

Both are non-blocking (0 buffered points): shedding is a gate, not a
buffer.
"""

from __future__ import annotations

from typing import Iterable

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..errors import OperatorError
from ..obs.registry import get_registry, metrics_enabled
from ..obs.timeline import current_journal
from .base import Operator

__all__ = ["FrameSubsampler", "AdaptiveLoadShedder"]


def _publish_shed_metrics(op: "Operator", shed: bool, credit: float | None = None) -> None:
    """Registry publication shared by both shedding policies.

    Called only behind a ``metrics_enabled()`` check, so the disabled hot
    path never touches the registry.
    """
    registry = get_registry()
    registry.counter("shed_frames_seen_total", policy=op.name).inc()
    if shed:
        registry.counter("shed_frames_dropped_total", policy=op.name).inc()
    if credit is not None:
        registry.gauge("shed_credit_points", policy=op.name).set(credit)


class FrameSubsampler(Operator):
    """Keep one frame in every ``keep_every`` (drop the rest entirely)."""

    name = "frame-subsampler"

    def __init__(self, keep_every: int, phase: int = 0) -> None:
        super().__init__()
        if keep_every < 1:
            raise OperatorError(f"keep_every must be >= 1, got {keep_every}")
        self.keep_every = keep_every
        self.phase = phase % keep_every
        self.frames_seen = 0
        self.frames_shed = 0
        self._current: int | None = None
        self._keep_current = True

    def _reset_state(self) -> None:
        self.frames_seen = 0
        self.frames_shed = 0
        self._current = None
        self._keep_current = True

    def _frame_key(self, chunk: Chunk) -> int | None:
        if isinstance(chunk, GridChunk) and chunk.frame is not None:
            return chunk.frame.frame_id
        if isinstance(chunk, GridChunk):
            return chunk.sector
        return None

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            # Point streams have no frames; subsampling keeps every chunk.
            yield chunk
            return
        key = self._frame_key(chunk)
        if key != self._current:
            self._current = key
            self._keep_current = (self.frames_seen % self.keep_every) == self.phase
            self.frames_seen += 1
            if not self._keep_current:
                self.frames_shed += 1
            if metrics_enabled():
                _publish_shed_metrics(self, shed=not self._keep_current)
        if self._keep_current:
            yield chunk

    def __repr__(self) -> str:
        return f"FrameSubsampler(keep_every={self.keep_every})"


class AdaptiveLoadShedder(Operator):
    """Token-bucket frame shedding driven by a downstream point budget.

    Parameters
    ----------
    points_per_frame_budget:
        How many points downstream processing can absorb per frame period.
        The budget accrues when a frame starts; frames whose points would
        overdraw the bucket are shed whole.
    max_credit:
        Cap on saved-up budget (prevents unbounded burst after idle gaps).
    """

    name = "adaptive-load-shedder"

    def __init__(
        self,
        points_per_frame_budget: float,
        max_credit: float | None = None,
    ) -> None:
        super().__init__()
        if points_per_frame_budget <= 0:
            raise OperatorError("budget must be positive")
        self.budget = float(points_per_frame_budget)
        self.max_credit = (
            float(max_credit) if max_credit is not None else 2.0 * self.budget
        )
        # Start empty: the first frame period's refill is the first income,
        # so the long-run keep fraction is exactly budget / frame-size.
        self._credit = 0.0
        self._current: int | None = None
        self._keep_current = True
        self.frames_seen = 0
        self.frames_shed = 0
        self.points_shed = 0
        # Pressure divides the per-frame refill; the DSMS escalates it
        # under sustained source stalls (graceful degradation: shed more,
        # stay live) and relaxes it once the feed recovers.
        self._pressure = 1.0
        self.escalations = 0
        # When an adaptive re-planner manages the shed rate, the blind
        # reflexive signals (stall detector, SLO breach edges) are
        # superseded: pressure is pinned to the value the planner derived
        # from the current epoch's calibrated cost.
        self.managed = False

    def _reset_state(self) -> None:
        self._credit = 0.0
        self._current = None
        self._keep_current = True
        self.frames_seen = 0
        self.frames_shed = 0
        self.points_shed = 0
        self._pressure = 1.0
        self.escalations = 0
        self.managed = False

    # -- overload response (driven by the DSMS under sustained stall) --------

    @property
    def pressure(self) -> float:
        return self._pressure

    def escalate(self, factor: float = 2.0) -> None:
        """Cut the effective refill budget (bounded so it can recover)."""
        if factor <= 1.0:
            raise OperatorError(f"escalation factor must be > 1, got {factor}")
        if self.managed:
            return  # the re-planner owns the shed rate (open loop superseded)
        self._pressure = min(self._pressure * factor, 64.0)
        self.escalations += 1
        if metrics_enabled():
            get_registry().counter(
                "repro_faults_shed_escalations_total", policy=self.name
            ).inc()
        journal = current_journal()
        if journal is not None:
            journal.append(
                "shed-escalate",
                reason=f"policy={self.name} pressure={self._pressure:g}",
            )

    def relax(self) -> None:
        """Undo escalation once the feed looks healthy again."""
        if self.managed:
            return
        if self._pressure > 1.0:
            journal = current_journal()
            if journal is not None:
                journal.append(
                    "shed-relax",
                    reason=f"policy={self.name} pressure={self._pressure:g}->1",
                )
        self._pressure = 1.0

    def set_managed(self, pressure: float) -> None:
        """Pin the shed rate to a planner-derived value (see AdaptivePolicy).

        An epoch transition that changes the shed rate calls this with
        the pressure the *new* plan's calibrated cost supports; from then
        on the reflexive escalate/relax valves are no-ops until
        :meth:`release_managed`.
        """
        if pressure <= 0:
            raise OperatorError(f"managed pressure must be positive, got {pressure}")
        self._pressure = min(pressure, 64.0)
        self.managed = True
        journal = current_journal()
        if journal is not None:
            journal.append(
                "shed-managed",
                reason=f"policy={self.name} pressure={self._pressure:g}",
            )

    def release_managed(self) -> None:
        """Return the shed rate to reflexive stall/SLO control."""
        self.managed = False

    def _frame_points_estimate(self, chunk: GridChunk) -> int:
        if chunk.frame is not None:
            return chunk.frame.lattice.n_points
        return chunk.n_points

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            yield chunk
            return
        key = chunk.frame.frame_id if chunk.frame is not None else chunk.sector
        if key != self._current:
            self._current = key
            self.frames_seen += 1
            self._credit = min(self._credit + self.budget / self._pressure, self.max_credit)
            # Deficit accounting: a frame is admitted whenever the bucket
            # is positive and may drive it into debt, which future frame
            # periods repay. The long-run keep fraction then converges to
            # budget / frame-size regardless of how the cap relates to the
            # frame size.
            if self._credit > 0:
                self._keep_current = True
                self._credit -= self._frame_points_estimate(chunk)
            else:
                self._keep_current = False
                self.frames_shed += 1
            if metrics_enabled():
                _publish_shed_metrics(
                    self, shed=not self._keep_current, credit=self._credit
                )
        if self._keep_current:
            yield chunk
        else:
            self.points_shed += chunk.n_points
            if metrics_enabled():
                get_registry().counter(
                    "shed_points_dropped_total", policy=self.name
                ).inc(chunk.n_points)

    @property
    def shed_fraction(self) -> float:
        return self.frames_shed / self.frames_seen if self.frames_seen else 0.0

    def __repr__(self) -> str:
        return f"AdaptiveLoadShedder(budget={self.budget:g})"
