"""Operator protocol and cost accounting.

Section 3 of the paper analyses each operator class by how much
intermediate point data it must store (non-blocking restrictions vs
frame-buffering stretches vs organization-dependent compositions). To make
those claims *measurable* rather than inferred from timing, every operator
here tracks:

* points/chunks in and out,
* the current and high-water number of buffered points and bytes.

Benchmarks read ``operator.stats`` directly; the paper's complexity table
then falls out of high-water marks instead of noisy wall clocks.

Unary operators implement ``_process`` (and optionally ``_flush``);
binary operators implement ``_process_side``. State must be (re)created in
``reset`` so a piped stream can be re-opened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.chunk import Chunk
from ..core.stream import StreamMetadata
from ..errors import OperatorError

__all__ = ["OperatorStats", "Operator", "BinaryOperator"]


@dataclass
class OperatorStats:
    """Throughput and buffering counters for one operator instance."""

    chunks_in: int = 0
    chunks_out: int = 0
    points_in: int = 0
    points_out: int = 0
    buffered_points: int = 0
    buffered_bytes: int = 0
    max_buffered_points: int = 0
    max_buffered_bytes: int = 0
    flushes: int = 0
    # Stream-time waiting: how long buffered data sat before being usable
    # (e.g. a composition partner waiting for the other band's scan).
    wait_time_total: float = 0.0
    wait_time_max: float = 0.0
    waits: int = 0
    # Buffer-accounting violations (release exceeded additions). The error
    # still raises, but counters are clamped first so a trace snapshot
    # taken in the exception handler reads sanely post-mortem.
    accounting_errors: int = 0

    def note_in(self, chunk: Chunk) -> None:
        self.chunks_in += 1
        self.points_in += chunk.n_points

    def note_out(self, chunk: Chunk) -> None:
        self.chunks_out += 1
        self.points_out += chunk.n_points

    def buffer_add(self, points: int, nbytes: int) -> None:
        self.buffered_points += points
        self.buffered_bytes += nbytes
        self.max_buffered_points = max(self.max_buffered_points, self.buffered_points)
        self.max_buffered_bytes = max(self.max_buffered_bytes, self.buffered_bytes)

    def buffer_remove(self, points: int, nbytes: int) -> None:
        self.buffered_points -= points
        self.buffered_bytes -= nbytes
        if self.buffered_points < 0 or self.buffered_bytes < 0:
            self.accounting_errors += 1
            self.buffered_points = max(self.buffered_points, 0)
            self.buffered_bytes = max(self.buffered_bytes, 0)
            raise OperatorError(
                "buffer accounting went negative — operator released more than "
                "it added"
            )

    def note_wait(self, seconds: float) -> None:
        """Record that buffered data waited ``seconds`` of stream time."""
        self.waits += 1
        self.wait_time_total += seconds
        self.wait_time_max = max(self.wait_time_max, seconds)

    @property
    def mean_wait_time(self) -> float:
        return self.wait_time_total / self.waits if self.waits else 0.0

    def buffer_add_chunk(self, chunk: Chunk) -> None:
        self.buffer_add(chunk.n_points, chunk.nbytes)

    def buffer_remove_chunk(self, chunk: Chunk) -> None:
        self.buffer_remove(chunk.n_points, chunk.nbytes)

    @property
    def is_nonblocking(self) -> bool:
        """True when the operator never held any point data."""
        return self.max_buffered_points == 0


class Operator:
    """A unary stream operator: chunks in, chunks out, closed over GeoStreams."""

    name = "operator"

    # Plan identity stamped by the lowering layer so obs ledgers can key
    # pull-path work by subplan fingerprint (see repro.plan.lower._stamp).
    plan_fingerprint: str | None = None
    plan_label: str | None = None
    plan_kind: str | None = None

    # Execution mode. Per-point (False) is the reference implementation —
    # the correctness oracle. Columnar (True) routes through the batch
    # kernels, which must produce bit-identical chunks and stats (enforced
    # by tests/test_columnar_differential.py). Operators without a batch
    # kernel silently fall back to the oracle.
    columnar: bool = False

    def __init__(self) -> None:
        self.stats = OperatorStats()

    def set_execution_mode(self, columnar: bool) -> None:
        """Select per-point oracle (False) or columnar batch kernels (True)."""
        self.columnar = bool(columnar)

    # -- hooks for subclasses ------------------------------------------------

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        raise NotImplementedError

    def _flush(self) -> Iterable[Chunk]:
        return ()

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        """Batch kernel; defaults to the per-point oracle."""
        return self._process(chunk)

    def _flush_columnar(self) -> Iterable[Chunk]:
        return self._flush()

    def _reset_state(self) -> None:
        """Drop any internal buffers (subclasses with state override)."""

    # -- public driving API (used by the engine) ---------------------------------

    def process(self, chunk: Chunk) -> Iterator[Chunk]:
        """Feed one chunk; yield zero or more output chunks."""
        self.stats.note_in(chunk)
        step = self._process_columnar if self.columnar else self._process
        for out in step(chunk):
            self.stats.note_out(out)
            yield out

    def process_many(self, chunks: list[Chunk]) -> list[Chunk]:
        """Feed a block of chunks; return every output chunk, in order.

        Equivalent to concatenating :meth:`process` over the block — same
        outputs, same stats — but driven as one call so the columnar
        executor skips per-chunk generator setup. Operators may override
        this to vectorize *across* chunk boundaries; overrides must keep
        the equivalence bit-exact (tests/test_columnar_differential.py).
        """
        stats = self.stats
        step = self._process_columnar if self.columnar else self._process
        outs: list[Chunk] = []
        append = outs.append
        note_out = stats.note_out
        for chunk in chunks:
            stats.note_in(chunk)
            for out in step(chunk):
                note_out(out)
                append(out)
        return outs

    def flush(self) -> Iterator[Chunk]:
        """Signal end of stream; yield any held output."""
        self.stats.flushes += 1
        step = self._flush_columnar if self.columnar else self._flush
        for out in step():
            self.stats.note_out(out)
            yield out

    def reset(self) -> None:
        """Fresh stats and state, so the owning stream can be re-opened.

        The execution mode survives a reset: mode is pipeline wiring, not
        stream state.
        """
        self.stats = OperatorStats()
        self._reset_state()

    # -- metadata propagation ----------------------------------------------------

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        """Metadata of the operator's output stream (default: unchanged)."""
        return metadata

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BinaryOperator:
    """A two-input stream operator (stream composition, Def. 10)."""

    name = "binary-operator"
    SIDES = ("left", "right")

    plan_fingerprint: str | None = None
    plan_label: str | None = None
    plan_kind: str | None = None

    columnar: bool = False

    def __init__(self) -> None:
        self.stats = OperatorStats()

    def set_execution_mode(self, columnar: bool) -> None:
        self.columnar = bool(columnar)

    def _process_side(self, side: str, chunk: Chunk) -> Iterable[Chunk]:
        raise NotImplementedError

    def _flush(self) -> Iterable[Chunk]:
        return ()

    def _process_side_columnar(self, side: str, chunk: Chunk) -> Iterable[Chunk]:
        """Batch kernel; defaults to the per-point oracle."""
        return self._process_side(side, chunk)

    def _flush_columnar(self) -> Iterable[Chunk]:
        return self._flush()

    def _reset_state(self) -> None:
        pass

    def process_side(self, side: str, chunk: Chunk) -> Iterator[Chunk]:
        if side not in self.SIDES:
            raise OperatorError(f"unknown input side {side!r}; expected one of {self.SIDES}")
        self.stats.note_in(chunk)
        step = self._process_side_columnar if self.columnar else self._process_side
        for out in step(side, chunk):
            self.stats.note_out(out)
            yield out

    def flush(self) -> Iterator[Chunk]:
        self.stats.flushes += 1
        step = self._flush_columnar if self.columnar else self._flush
        for out in step():
            self.stats.note_out(out)
            yield out

    def reset(self) -> None:
        self.stats = OperatorStats()
        self._reset_state()

    def output_metadata(
        self, left: StreamMetadata, right: StreamMetadata
    ) -> StreamMetadata:
        return left

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
