"""Macro operators for common data products (Section 4).

"Other operators that are currently being implemented ... include
specialized macro operators that compute specific data products, such as
NDVI. Such data products can be directly selected in the user interface,
without the need to compose otherwise complex queries."

Each macro is a function from GeoStreams to a GeoStream, expanded in
terms of the primitive algebra (compositions and value transforms), so
macros stay inside the closed query model.
"""

from __future__ import annotations

import numpy as np

from ..core.stream import GeoStream
from ..core.valueset import NDVI_VALUES, ValueSet
from .composition import StreamComposition, normalized_difference
from .value_transform import CountsToReflectance


def _compose_streams(left: GeoStream, right: GeoStream, op: StreamComposition) -> GeoStream:
    # Imported lazily: repro.engine.pipeline imports the operator base
    # classes, so a module-level import here would be circular.
    from ..engine.pipeline import compose_streams

    return compose_streams(left, right, op)

__all__ = [
    "reflectance",
    "ndvi",
    "evi2",
    "band_difference",
    "band_ratio",
    "spatio_temporal_aggregate",
]


def reflectance(stream: GeoStream, bits: int = 10) -> GeoStream:
    """Radiometric calibration: instrument counts -> reflectance [0, 1]."""
    return stream.pipe(CountsToReflectance(bits=bits))


def ndvi(
    nir: GeoStream,
    vis: GeoStream,
    timestamp_policy: str | None = None,
) -> GeoStream:
    """Normalized difference vegetation index: (NIR - VIS) / (NIR + VIS).

    The paper's running example (Section 3.4) expressed in the algebra as
    the stream composition ``(G1 - G2) / (G2 + G1)`` with G1 = NIR,
    G2 = VIS. Inputs should already be calibrated (see :func:`reflectance`).
    """
    policy = timestamp_policy or nir.metadata.timestamp_policy
    op = StreamComposition(
        normalized_difference,
        timestamp_policy=policy,
        band="ndvi",
        output_value_set=NDVI_VALUES,
    )
    return _compose_streams(nir, vis, op)


def evi2(
    nir: GeoStream,
    vis: GeoStream,
    timestamp_policy: str | None = None,
) -> GeoStream:
    """Two-band enhanced vegetation index: 2.5 (N - R) / (N + 2.4 R + 1)."""

    def kernel(n: np.ndarray, r: np.ndarray) -> np.ndarray:
        denom = n + 2.4 * r + 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            out = 2.5 * (n - r) / denom
        return np.where(np.isfinite(out), out, np.nan)

    policy = timestamp_policy or nir.metadata.timestamp_policy
    op = StreamComposition(
        kernel,
        timestamp_policy=policy,
        band="evi2",
        output_value_set=ValueSet("evi2", np.float32, lo=-2.5, hi=2.5),
    )
    return _compose_streams(nir, vis, op)


def band_difference(
    a: GeoStream, b: GeoStream, timestamp_policy: str | None = None
) -> GeoStream:
    """Plain band difference a - b (e.g. split-window moisture proxies)."""
    policy = timestamp_policy or a.metadata.timestamp_policy
    return _compose_streams(a, b, StreamComposition("-", timestamp_policy=policy))


def spatio_temporal_aggregate(
    stream: GeoStream,
    spatial_k: int,
    window: int,
    func: str = "mean",
    mode: str = "sliding",
) -> GeoStream:
    """The spatio-temporal aggregate of Zhang, Gertz & Aksoy (ref [27]).

    Aggregates over a spatio-temporal window: each output pixel covers a
    ``spatial_k`` x ``spatial_k`` block of input pixels aggregated over the
    last ``window`` frames — e.g. "mean NDVI per 4 km cell over the last
    three scans". Expressed inside the closed algebra as a resolution
    decrease followed by a per-pixel temporal window aggregate.
    """
    from .aggregate import TemporalAggregate
    from .spatial_transform import Coarsen

    return stream.pipe(Coarsen(spatial_k), TemporalAggregate(window, func, mode))


def band_ratio(
    a: GeoStream, b: GeoStream, timestamp_policy: str | None = None
) -> GeoStream:
    """Band ratio a / b (NaN where b vanishes)."""
    policy = timestamp_policy or a.metadata.timestamp_policy
    return _compose_streams(a, b, StreamComposition("/", timestamp_policy=policy))
