"""Re-projection to a new coordinate system (Section 3.2, Fig. 2b).

"From a query processing point of view ... such types of spatial
transform operators may block for a considerable amount of time, as the
computation of the value of a point y in Y may require any number of
points from X. An implementation ... can be tailored by utilizing
metadata about the spatial extent of the current scan sector and the
spatial resolution associated with X and Y."

:class:`Reproject` implements exactly that tailoring:

* When the first chunk of a frame arrives, the scan-sector metadata
  (:class:`~repro.core.metadata.FrameInfo`) gives the full source extent,
  from which the output lattice is derived ("a regular lattice
  corresponding in size and aspect to the lattice of the original point
  set X is overlayed over the spatial extent of the new point lattice").
* For every output row, the operator precomputes which band of source
  rows it needs (inverse-projected coordinates plus the interpolation
  kernel footprint). Output rows are emitted *as soon as* their band is
  complete, and source rows no longer needed by any pending output row
  are evicted — so the buffer high-water mark is the worst-case row band,
  not the whole frame, for row-aligned projections (experiment E4).
* At frame end, remaining output rows are emitted using boundary
  interpolation over whatever source rows exist, the paper's remedy for
  the operator that "could potentially block forever".
* A stream with **no** frame metadata and no user-supplied output lattice
  raises :class:`~repro.errors.BlockingHazardError` — the very hazard the
  paper warns about.

Point streams re-project point-by-point with no buffering at all.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace
from typing import Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import BlockingHazardError, OperatorError, RegionError
from ..geo.crs import CRS, transform_points
from ..raster.interpolate import KERNEL_FOOTPRINT, sample
from .base import Operator

__all__ = ["Reproject"]


class _FrameReprojection:
    """Per-frame navigation state: where each output row reads from."""

    def __init__(
        self,
        src_lattice: GridLattice,
        dst_lattice: GridLattice,
        footprint: int,
    ) -> None:
        self.src_lattice = src_lattice
        self.dst_lattice = dst_lattice
        ox, oy = dst_lattice.meshgrid()
        sx, sy = transform_points(dst_lattice.crs, src_lattice.crs, ox, oy)
        self.rows = src_lattice.fractional_row(sy)
        self.cols = src_lattice.fractional_col(sx)
        h_out = dst_lattice.height
        self.row_min = np.full(h_out, 0, dtype=np.int64)
        self.row_max = np.full(h_out, -1, dtype=np.int64)
        for j in range(h_out):
            finite = self.rows[j][np.isfinite(self.rows[j])]
            if finite.size == 0:
                continue  # row entirely outside the source: emit as fill
            self.row_min[j] = max(0, int(math.floor(finite.min())) - footprint)
            self.row_max[j] = min(
                src_lattice.height - 1, int(math.ceil(finite.max())) + footprint
            )
        self.next_out = 0

    def needed_floor(self) -> int:
        """Lowest source row any not-yet-emitted output row still needs."""
        if self.next_out >= self.dst_lattice.height:
            return self.src_lattice.height
        pending = self.row_min[self.next_out :]
        return int(pending.min()) if pending.size else self.src_lattice.height


class Reproject(Operator):
    """Resample a stream onto a lattice in a different coordinate system."""

    name = "reproject"

    def __init__(
        self,
        dst_crs: CRS,
        dst_lattice: GridLattice | None = None,
        resolution: tuple[float, float] | None = None,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__()
        if method not in KERNEL_FOOTPRINT:
            raise OperatorError(
                f"unknown interpolation method {method!r}; expected one of "
                f"{sorted(KERNEL_FOOTPRINT)}"
            )
        if dst_lattice is not None and dst_lattice.crs != dst_crs:
            raise OperatorError("dst_lattice must live in dst_crs")
        self.dst_crs = dst_crs
        self.dst_lattice = dst_lattice
        self.resolution = resolution
        self.method = method
        self.fill = fill
        self._footprint = KERNEL_FOOTPRINT[method]
        self._nav: _FrameReprojection | None = None
        self._frame_id: int | None = None
        self._src_rows: dict[int, GridChunk] = {}
        self._meta: tuple[str, float, int | None] = ("", 0.0, None)

    def _reset_state(self) -> None:
        self._nav = None
        self._frame_id = None
        self._src_rows = {}

    # -- output lattice derivation --------------------------------------------

    def _derive_dst_lattice(self, src_lattice: GridLattice) -> GridLattice:
        if self.dst_lattice is not None:
            return self.dst_lattice
        try:
            dst_bbox = src_lattice.bbox.transformed(self.dst_crs)
        except RegionError as exc:
            raise OperatorError(
                f"source frame extent has no image in {self.dst_crs.name}: {exc}"
            ) from exc
        if self.resolution is not None:
            dx, dy = self.resolution
        else:
            dx = dst_bbox.width / src_lattice.width
            dy = dst_bbox.height / src_lattice.height
        return GridLattice.from_bbox(dst_bbox, dx, dy, self.dst_crs)

    # -- frame lifecycle ---------------------------------------------------------

    def _begin_frame(self, chunk: GridChunk) -> None:
        if chunk.frame is not None:
            src_lattice = chunk.frame.lattice
            self._frame_id = chunk.frame.frame_id
        elif chunk.last_in_frame and chunk.row0 == 0:
            src_lattice = chunk.lattice
            self._frame_id = None
        else:
            raise BlockingHazardError(
                "re-projection needs scan-sector metadata (FrameInfo) or an "
                "explicit output lattice; without knowing the frame extent the "
                "operator could block forever (Section 3.2)"
            )
        self._nav = _FrameReprojection(
            src_lattice, self._derive_dst_lattice(src_lattice), self._footprint
        )

    def _store_rows(self, chunk: GridChunk) -> None:
        for local_row in range(chunk.lattice.height):
            row = chunk.subwindow(local_row, 0, 1, chunk.lattice.width)
            abs_row = row.row0
            if abs_row in self._src_rows:
                self.stats.buffer_remove_chunk(self._src_rows[abs_row])
            self._src_rows[abs_row] = row
            self.stats.buffer_add_chunk(row)

    def _highest_contiguous_row(self) -> int:
        """Highest source row r such that all rows 0..r have been seen or
        evicted (evicted rows were already consumed)."""
        # Rows are delivered in order by our instruments; the max stored
        # row is the watermark. Out-of-order delivery would need a gap set;
        # the ordered-stream model of the paper makes this sufficient.
        return max(self._src_rows, default=-1)

    def _emit_ready(self, force: bool) -> Iterable[GridChunk]:
        nav = self._nav
        assert nav is not None
        watermark = self._highest_contiguous_row()
        h_out = nav.dst_lattice.height
        while nav.next_out < h_out:
            j = nav.next_out
            if not force and nav.row_max[j] > watermark:
                break
            yield self._emit_row(j)
            nav.next_out += 1
            # Evict source rows nothing pending needs anymore.
            floor = nav.needed_floor()
            for r in [r for r in self._src_rows if r < floor]:
                self.stats.buffer_remove_chunk(self._src_rows.pop(r))
        if force:
            for r in list(self._src_rows):
                self.stats.buffer_remove_chunk(self._src_rows.pop(r))
            self._nav = None
            self._frame_id = None

    def _emit_row(self, j: int) -> GridChunk:
        nav = self._nav
        assert nav is not None
        band, t, sector = self._meta
        r_lo, r_hi = int(nav.row_min[j]), int(nav.row_max[j])
        if r_hi < r_lo:
            out = np.full((1, nav.dst_lattice.width), self.fill, dtype=np.float64)
        else:
            stack = np.full(
                (r_hi - r_lo + 1, nav.src_lattice.width), np.nan, dtype=np.float64
            )
            for r in range(r_lo, r_hi + 1):
                row = self._src_rows.get(r)
                if row is not None:
                    # Rows may be partial windows of the frame (e.g. after
                    # a spatial restriction): paste at the column offset.
                    c0 = row.col0
                    stack[r - r_lo, c0 : c0 + row.lattice.width] = row.values[0].astype(
                        np.float64
                    )
            out = sample(
                self.method,
                stack,
                nav.rows[j] - r_lo,
                nav.cols[j],
                fill=self.fill,
            ).reshape(1, -1)
        frame_id = self._frame_id if self._frame_id is not None else 0
        return GridChunk(
            values=out.astype(np.float32),
            lattice=nav.dst_lattice.row_lattice(j),
            band=band,
            t=t,
            sector=sector,
            frame=FrameInfo(frame_id, nav.dst_lattice),
            row0=j,
            col0=0,
            last_in_frame=(j == nav.dst_lattice.height - 1),
        )

    # -- operator hooks -----------------------------------------------------------

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            # Point streams re-project pointwise: no buffering at all.
            nx, ny = transform_points(chunk.crs, self.dst_crs, chunk.x, chunk.y)
            keep = np.isfinite(nx) & np.isfinite(ny)
            moved = PointChunk(
                x=nx[keep],
                y=ny[keep],
                values=np.asarray(chunk.values)[keep],
                band=chunk.band,
                t=chunk.t[keep],
                crs=self.dst_crs,
                sector=chunk.sector,
            )
            if moved.n_points:
                yield moved
            return

        if chunk.values.ndim != 2:
            raise OperatorError("re-projection of vector-valued streams is not supported")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._nav is not None and frame_id != self._frame_id:
            yield from self._emit_ready(force=True)
        if self._nav is None:
            self._begin_frame(chunk)
        self._meta = (chunk.band, chunk.t, chunk.sector)
        self._store_rows(chunk)
        yield from self._emit_ready(force=chunk.last_in_frame)

    def _flush(self) -> Iterable[Chunk]:
        if self._nav is not None:
            yield from self._emit_ready(force=True)

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(
            metadata,
            crs=self.dst_crs,
            value_set=FLOAT32 if not metadata.value_set.is_vector else metadata.value_set,
        )

    def __repr__(self) -> str:
        return f"Reproject(to={self.dst_crs.name!r}, method={self.method!r})"
